//! Fault-tolerant fleet campaigns, end to end: journal, crash, resume,
//! shards, quarantine.
//!
//! Runs the same tiny fleet grid several ways and proves the
//! crash-consistency contract by byte-comparing the serialized reports:
//!
//! 1. an uninterrupted **reference** run;
//! 2. a run **killed** mid-flight with a torn final journal record, then
//!    **resumed** — the resumed report must be bit-identical to (1);
//! 3. three **shards** run against independent journals, merged with
//!    [`dismem::sched::merge_shard_journals`], then resumed warm (zero
//!    re-runs) — again bit-identical to (1);
//! 4. a run with one permanently **poisoned** cell, which is retried up to
//!    the spec's attempt bound and then quarantined into `failed_cells`
//!    instead of aborting the campaign.
//!
//! Any mismatch makes the example exit non-zero, so CI can run it as a
//! smoke test. Journals and the final report land in `DISMEM_RESULTS_DIR`
//! (default `target/`).
//!
//! ```sh
//! cargo run --release --example resumable_campaign                # full tiny grid
//! DISMEM_QUICK=1 cargo run --release --example resumable_campaign # CI smoke
//! ```

use dismem::sched::{
    merge_shard_journals, resume_campaign, run_fleet_campaign, CampaignError, CampaignReport,
    FaultPlan, FleetSpec, Shard, SimCellRunner,
};
use dismem::sim::MachineConfig;
use std::path::{Path, PathBuf};

/// A journal path inside the results directory, cleared of any previous run
/// (fresh campaigns refuse non-empty journals by design).
fn fresh_journal(dir: &Path, name: &str) -> PathBuf {
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn report_json(report: &CampaignReport) -> String {
    serde_json::to_string(report).expect("campaign report serializes")
}

/// Serialized report with the resume diagnostics cleared: a resume over a
/// torn tail reports the drop (`dropped_torn_tail`), so the bit-identity
/// comparison against the clean reference normalizes the diagnostic fields
/// and checks them explicitly instead.
fn report_json_normalized(report: &CampaignReport) -> String {
    let mut normalized = report.clone();
    normalized.rejected_records = 0;
    normalized.dropped_torn_tail = false;
    report_json(&normalized)
}

fn main() {
    let quick = std::env::var("DISMEM_QUICK").is_ok();
    let config = MachineConfig::scaled_testbed();
    let spec = if quick {
        FleetSpec {
            workloads: vec!["BFS".into(), "XSBench".into()],
            capacities_permille: vec![250, 750],
            ..FleetSpec::tiny_grid(&config)
        }
    } else {
        FleetSpec::tiny_grid(&config)
    };
    let runner = if quick {
        SimCellRunner::quick(config)
    } else {
        SimCellRunner::new(config)
    };

    let dir =
        PathBuf::from(std::env::var("DISMEM_RESULTS_DIR").unwrap_or_else(|_| "target".to_string()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create results dir {}: {e}", dir.display());
        std::process::exit(1);
    }
    let cells = spec.cells();
    println!(
        "fleet grid: {} cells ({} workloads x {} policies x {} capacities), spec digest {}",
        cells.len(),
        spec.workloads.len(),
        spec.policies.len(),
        spec.capacities_permille.len(),
        spec.digest_hex(),
    );
    let mut failures: Vec<String> = Vec::new();

    // 1. The uninterrupted reference.
    let reference_path = fresh_journal(&dir, "FLEET_reference.jsonl");
    let reference =
        match run_fleet_campaign(&spec, &runner, &reference_path, None, &FaultPlan::none()) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("reference run failed: {e}");
                std::process::exit(1);
            }
        };
    let reference_json = report_json(&reference);
    println!(
        "reference:   {} cells completed, {} quarantined",
        reference.completed.len(),
        reference.failed_cells.len()
    );

    // 2. Crash mid-campaign (with the final record torn, as an unclean
    //    filesystem would leave it), then resume.
    let crash_path = fresh_journal(&dir, "FLEET_crash.jsonl");
    let kill_after = (cells.len() as u64 / 3).max(1);
    let crash_fault = FaultPlan::kill_after(kill_after).with_torn_final_record();
    match run_fleet_campaign(&spec, &runner, &crash_path, None, &crash_fault) {
        Err(CampaignError::Interrupted { cells_journaled }) => {
            println!(
                "crash run:   killed after {cells_journaled} journaled cells (final record torn)"
            );
        }
        Ok(_) => failures.push("crash run unexpectedly completed".into()),
        Err(e) => failures.push(format!("crash run failed in an unexpected way: {e}")),
    }
    match resume_campaign(&spec, &runner, &crash_path, None, &FaultPlan::none()) {
        Ok((resumed, stats)) => {
            println!(
                "resume:      replayed {}, re-ran {} (torn tail dropped: {})",
                stats.replayed, stats.reran, stats.torn_tail
            );
            if !resumed.dropped_torn_tail {
                failures.push("resumed report does not surface the torn tail".into());
            }
            if resumed.rejected_records != 0 {
                failures.push(format!(
                    "resume rejected {} records from its own journal",
                    resumed.rejected_records
                ));
            }
            if report_json_normalized(&resumed) != reference_json {
                failures.push("resumed report differs from the reference".into());
            }
        }
        Err(e) => failures.push(format!("resume failed: {e}")),
    }

    // 3. Three shards in three journals, merged, then resumed warm.
    const SHARDS: u32 = 3;
    let shard_paths: Vec<PathBuf> = (0..SHARDS)
        .map(|i| fresh_journal(&dir, &format!("FLEET_shard{i}.jsonl")))
        .collect();
    for (i, path) in shard_paths.iter().enumerate() {
        let shard = Shard::new(i as u32, SHARDS);
        if let Err(e) = run_fleet_campaign(&spec, &runner, path, Some(shard), &FaultPlan::none()) {
            failures.push(format!("shard {i}/{SHARDS} failed: {e}"));
        }
    }
    let merged_path = fresh_journal(&dir, "FLEET_merged.jsonl");
    match merge_shard_journals(&shard_paths, &merged_path, &spec.digest_hex()) {
        Ok(merged_records) => {
            println!("shards:      {SHARDS} shards merged into {merged_records} records");
            match resume_campaign(&spec, &runner, &merged_path, None, &FaultPlan::none()) {
                Ok((merged, stats)) => {
                    if stats.reran != 0 {
                        failures.push(format!(
                            "merged journal was not warm: {} cells re-ran",
                            stats.reran
                        ));
                    }
                    if report_json(&merged) != reference_json {
                        failures.push("merged-shard report differs from the reference".into());
                    }
                }
                Err(e) => failures.push(format!("resume over merged journal failed: {e}")),
            }
        }
        Err(e) => failures.push(format!("shard merge failed: {e}")),
    }

    // 4. Quarantine: one cell panics on every attempt; the campaign still
    //    completes and reports the gap.
    let poison_path = fresh_journal(&dir, "FLEET_poison.jsonl");
    let poisoned_id = cells[cells.len() / 2].id();
    let poison_fault = FaultPlan::none().with_poison_forever(&poisoned_id);
    // The injected panics are caught and quarantined; keep the default hook
    // from spraying their backtraces over the demo output.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let poison_outcome = run_fleet_campaign(&spec, &runner, &poison_path, None, &poison_fault);
    std::panic::set_hook(default_hook);
    match poison_outcome {
        Ok(report) => {
            match report.failed_cells.as_slice() {
                [failed] if failed.key.id() == poisoned_id => {
                    println!(
                        "quarantine:  {} failed after {} attempts ({})",
                        failed.key.id(),
                        failed.attempts,
                        failed.error
                    );
                }
                other => failures.push(format!(
                    "expected exactly the poisoned cell in failed_cells, got {} entries: {other:?}",
                    other.len()
                )),
            }
            if report.completed.len() != cells.len() - 1 {
                failures.push(format!(
                    "poisoned run completed {} of {} healthy cells",
                    report.completed.len(),
                    cells.len() - 1
                ));
            }
        }
        Err(e) => failures.push(format!("poisoned run aborted instead of quarantining: {e}")),
    }

    // Persist the reference report next to the journals.
    let report_path = dir.join("FLEET_campaign.json");
    match serde_json::to_string_pretty(&reference) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&report_path, json) {
                eprintln!("warning: could not write {}: {e}", report_path.display());
            } else {
                println!("[reference report written to {}]", report_path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize report: {e}"),
    }

    if failures.is_empty() {
        println!(
            "\nAll {} cells agree across crash/resume and shard/merge: the journaled \
             campaign is bit-identical to the uninterrupted reference.",
            cells.len()
        );
    } else {
        eprintln!("\ncrash-consistency contract VIOLATED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
