//! Quickstart: run the full three-level quantitative study for one workload
//! on the emulated disaggregated-memory machine and print the guidance.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dismem::core::{DeploymentAdvice, PlacementPriority, QuantitativeStudy};
use dismem::sim::MachineConfig;
use dismem::workloads::WorkloadKind;

fn main() {
    // The emulated platform: node-local DDR (73 GB/s, 111 ns) plus a
    // rack-level memory pool (34 GB/s, 202 ns over an 85 GB/s raw link),
    // with caches scaled to the proxy workloads' footprints.
    let machine = MachineConfig::scaled_testbed();

    // Study Hypre — the paper's most interference-sensitive workload.
    let study = QuantitativeStudy::new(WorkloadKind::Hypre.instantiate_tiny(), machine);

    println!("== Level 1: general characteristics ==");
    let l1 = study.level1();
    println!(
        "  footprint: {:.1} MiB",
        l1.footprint_bytes as f64 / (1 << 20) as f64
    );
    for p in &l1.phases {
        println!(
            "  {:<12} AI = {:>6.3} flop/B, {:>7.2} Gflop/s, {:>6.1} GB/s",
            p.label, p.arithmetic_intensity, p.gflops, p.bandwidth_gbs
        );
    }
    println!(
        "  prefetching: accuracy {:.0}%, coverage {:.0}%, performance gain {:.0}%",
        100.0 * l1.prefetch.accuracy,
        100.0 * l1.prefetch.coverage,
        100.0 * l1.prefetch.performance_gain
    );

    println!("\n== Level 2: multi-tier memory access (50% of the footprint fits locally) ==");
    let l2 = study.level2(0.5);
    println!(
        "  remote capacity ratio {:.0}%, remote bandwidth ratio {:.0}%",
        100.0 * l2.remote_capacity_ratio,
        100.0 * l2.remote_bandwidth_ratio
    );
    for p in &l2.phases {
        println!(
            "  {:<12} remote access ratio {:.0}%",
            p.label,
            100.0 * p.remote_access_ratio
        );
    }

    println!("\n== Level 3: interference on the memory pool ==");
    let l3 = study.level3(0.5, &[0.0, 10.0, 20.0, 30.0, 40.0, 50.0]);
    for p in &l3.sensitivity {
        println!(
            "  LoI = {:>2.0}%  relative performance {:.3}",
            p.loi_percent, p.relative_performance
        );
    }

    println!("\n== Guidance ==");
    let guidance = dismem::core::derive_guidance(&l2, &l3);
    match &guidance.placement {
        PlacementPriority::LittleOpportunity => {
            println!("  placement: access ratios already match the tier design")
        }
        PlacementPriority::OptimizeDataPlacement {
            phases,
            hottest_remote_object,
        } => {
            println!("  placement: optimize phases {phases:?}");
            if let Some(obj) = hottest_remote_object {
                println!("             hottest pool-resident object: '{obj}'");
            }
        }
    }
    match guidance.deployment {
        DeploymentAdvice::LeveragePoolCapacity => {
            println!("  deployment: low sensitivity — take capacity from the pool, use fewer nodes")
        }
        DeploymentAdvice::BalancedWithInterferenceAwareScheduling => {
            println!("  deployment: moderate sensitivity — co-locate with interference awareness")
        }
        DeploymentAdvice::MinimisePoolExposure => {
            println!("  deployment: high sensitivity — minimise pool exposure (more nodes / pin data locally)")
        }
    }
    for note in &guidance.notes {
        println!("  note: {note}");
    }
}
