//! Case study 2 (paper Section 7.2): interference-aware job scheduling.
//!
//! Profiles each workload once on a 50%-pooled configuration, then runs a
//! Monte Carlo co-location campaign under a random baseline scheduler
//! (background LoI 0–50%) and an interference-aware one (0–20%).
//!
//! ```sh
//! cargo run --release --example interference_scheduling
//! ```

use dismem::profiler::{pooled_config, run_workload, RunOptions};
use dismem::sched::{campaign::compare_policies, CampaignConfig};
use dismem::sim::MachineConfig;
use dismem::workloads::WorkloadKind;

fn main() {
    let machine = MachineConfig::scaled_testbed();
    let campaign = CampaignConfig {
        runs: 50,
        epochs_per_run: 8,
        seed: 7,
    };

    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "workload", "baseline med", "aware med", "mean speedup", "p75 reduction"
    );
    for kind in WorkloadKind::all() {
        // Tiny inputs keep the example snappy; the figure-13 bench uses the
        // full proxy inputs.
        let w = kind.instantiate_tiny();
        let cfg = pooled_config(&machine, w.as_ref(), 0.5);
        let report = run_workload(w.as_ref(), &RunOptions::new(cfg));
        let cmp = compare_policies(kind.name(), &report, &campaign);
        println!(
            "{:<10} {:>11.3} ms {:>11.3} ms {:>13.2}% {:>13.2}%",
            kind.name(),
            cmp.baseline.summary.median * 1e3,
            cmp.aware.summary.median * 1e3,
            cmp.mean_speedup_percent(),
            cmp.p75_reduction_percent(),
        );
    }
    println!(
        "\nInterference-aware co-location improves both the mean runtime and the runtime \
         variability, and it matters most for the workloads the Level-3 analysis flags as \
         interference-sensitive (Hypre, NekRS)."
    );
}
