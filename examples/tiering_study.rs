//! Dynamic tiering for the six paper workloads, end to end.
//!
//! The PR-4 tiering campaign proved the mechanism on the synthetic
//! `PhaseShift` workload; this study turns it into the paper-shaped
//! conclusion layer. Every paper application (HPL, Hypre, NekRS, BFS,
//! SuperLU, XSBench) is re-simulated under the pooled configurations of the
//! paper's `setup_waste` step (75 / 50 / 25 % of the footprint locally) for
//! each tiering policy (static / hot-promote / periodic-rebalance), each
//! placement is priced under the Monte Carlo interference campaign, and the
//! measured phase-dwell (epochs a hot working set stays put before it moves)
//! feeds the migrate-vs-interleave guidance rule — so each workload's
//! [`dismem::core::Guidance`] answers not just *where* to place data but
//! whether to move it at runtime.
//!
//! Writes `CAMPAIGN_tiering_workloads.json` into the results directory (the
//! committed copy at the repository root is regenerated from this example).
//!
//! ```sh
//! cargo run --release --example tiering_study            # full X1 inputs
//! DISMEM_QUICK=1 cargo run --release --example tiering_study   # smoke
//! ```

use dismem::core::{derive_guidance, Guidance};
use dismem::sched::{default_specs, sweep_tiering_matrix, CampaignConfig, WorkloadTieringStudy};
use dismem::sim::{MachineConfig, TieringSpec};
use dismem::workloads::{InputScale, Workload, WorkloadKind};
use dismem_profiler::level2::level2_profile;
use dismem_profiler::level3::{level3_profile, PAPER_LOI_LEVELS};
use serde::Serialize;

/// The paper's `setup_waste` local-capacity points.
const LOCAL_FRACTIONS: [f64; 3] = [0.75, 0.5, 0.25];
/// The fraction guidance is derived at (the paper's mid pooling point).
const GUIDANCE_FRACTION: f64 = 0.5;

/// One workload's study: the policy × capacity matrix plus the combined
/// guidance (placement priority, deployment advice, migration advice).
#[derive(Serialize)]
struct WorkloadEntry {
    study: WorkloadTieringStudy,
    guidance: Guidance,
}

/// The committed campaign: all six paper workloads.
#[derive(Serialize)]
struct Campaign {
    scale: String,
    local_fractions: Vec<f64>,
    policies: Vec<String>,
    workloads: Vec<WorkloadEntry>,
}

/// Policy specs scaled to one workload: a hotness epoch is an eighth of a
/// full-footprint sweep (several epochs per compute phase on every proxy),
/// and the promotion threshold is a quarter page of traffic per epoch.
fn specs_for(workload: &dyn Workload) -> Vec<TieringSpec> {
    let footprint_lines = workload.expected_footprint_bytes() / 64;
    let epoch_lines = (footprint_lines / 8).max(2_048);
    default_specs(epoch_lines, 16.0)
}

fn main() {
    let quick = std::env::var("DISMEM_QUICK").is_ok();
    let scale = InputScale::X1;
    let config = MachineConfig::scaled_testbed();
    let campaign = CampaignConfig {
        runs: if quick { 10 } else { 30 },
        epochs_per_run: 8,
        seed: 7,
    };

    let suite: Vec<Box<dyn Workload>> = if quick {
        WorkloadKind::all()
            .into_iter()
            .map(|kind| kind.instantiate_tiny())
            .collect()
    } else {
        WorkloadKind::instantiate_all(scale)
    };

    let mut entries = Vec::new();
    for workload in &suite {
        let specs = specs_for(workload.as_ref());
        let study = sweep_tiering_matrix(
            workload.as_ref(),
            &config,
            &LOCAL_FRACTIONS,
            &specs,
            &campaign,
        );

        // Placement and deployment guidance from the paper's three-level
        // methodology at the mid pooling point, extended with the
        // dwell-derived migration advice measured by the dynamic policies.
        let level2 = level2_profile(workload.as_ref(), &config, GUIDANCE_FRACTION);
        let level3 = level3_profile(
            workload.as_ref(),
            &config,
            GUIDANCE_FRACTION,
            &PAPER_LOI_LEVELS,
        );
        let mut guidance = derive_guidance(&level2, &level3);
        if let Some(measured) = study.measured_at(GUIDANCE_FRACTION) {
            guidance = guidance.with_migration_advice(&measured.tiering);
        }

        print_study(&study, &guidance);
        entries.push(WorkloadEntry { study, guidance });
    }

    println!("\n== migrate-vs-interleave guidance (dwell-derived) ==");
    for e in &entries {
        let measured = e.study.measured_at(GUIDANCE_FRACTION);
        println!(
            "{:<10} advice: {:<12} (mean dwell {:>5.1} epochs, {} shifts, best dynamic speedup {:.2}x)",
            e.study.workload,
            e.guidance
                .migration
                .map_or("<unmeasured>".to_string(), |a| format!("{a:?}")),
            measured.map_or(0.0, |o| o.mean_dwell_epochs),
            measured.map_or(0, |o| o.tiering.hot_set_shifts),
            e.study.best_speedup_vs_static(),
        );
    }

    let campaign_out = Campaign {
        scale: if quick {
            "tiny".into()
        } else {
            scale.label().into()
        },
        local_fractions: LOCAL_FRACTIONS.to_vec(),
        policies: entries
            .first()
            .map(|e| {
                e.study.cells[0]
                    .sweep
                    .outcomes
                    .iter()
                    .map(|o| o.policy.clone())
                    .collect()
            })
            .unwrap_or_default(),
        workloads: entries,
    };
    let dir = std::env::var("DISMEM_RESULTS_DIR").unwrap_or_else(|_| "target".to_string());
    let path = std::path::Path::new(&dir).join("CAMPAIGN_tiering_workloads.json");
    match serde_json::to_string_pretty(&campaign_out) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize campaign: {e}"),
    }
}

fn print_study(study: &WorkloadTieringStudy, guidance: &Guidance) {
    println!(
        "\n== {} ({}, footprint {:.1} MiB) ==",
        study.workload,
        study.input,
        study.footprint_bytes as f64 / (1 << 20) as f64
    );
    println!(
        "{:<8} {:<20} {:>12} {:>9} {:>9} {:>9} {:>10} {:>8}",
        "local", "policy", "runtime", "speedup", "loaded", "remote%", "migrated", "dwell"
    );
    for cell in &study.cells {
        for o in &cell.sweep.outcomes {
            println!(
                "{:<8} {:<20} {:>9.3} ms {:>8.2}x {:>8.2}x {:>8.1}% {:>7.2} MiB {:>8.1}",
                format!("{:.0}%", cell.local_fraction * 100.0),
                o.policy,
                o.runtime_s * 1e3,
                o.speedup_vs_static,
                o.loaded_speedup_vs_static,
                o.remote_access_ratio * 100.0,
                o.tiering.migrated_bytes as f64 / (1 << 20) as f64,
                o.mean_dwell_epochs,
            );
        }
    }
    for note in &guidance.notes {
        println!("  note: {note}");
    }
}
