//! Warm-start fleet campaign: one snapshot per warm prefix, thousands of
//! cells restored from it, bit-identical to running every cell cold.
//!
//! The fleet grid deliberately dwarfs the committed tiering study: all six
//! paper workloads × two scheduling policies × three pool capacities × 150
//! seeds = 5400 cells, but only 18 distinct **warm prefixes**
//! (workload × scale × capacity × link). With a [`SnapshotCache`] attached,
//! the first cell of each prefix simulates the warm-up once and snapshots
//! the machine; the other 299 cells of that prefix restore it instead of
//! re-simulating. The example then proves the contract:
//!
//! 1. a **warm** campaign over a fresh cache — exactly 18 misses and
//!    5400 − 18 hits, zero fallbacks;
//! 2. a **cold** campaign with no cache at all — its report must be
//!    **byte-identical** to the warm one (modulo the snapshot stats block);
//! 3. a second warm campaign over the now-populated cache — all hits, and
//!    byte-identical again.
//!
//! Any divergence makes the example exit non-zero, so CI runs it as the
//! warm-vs-cold smoke (`DISMEM_QUICK=1` shrinks the grid). The warm report
//! is written to `CAMPAIGN_warm_fleet.json` in `DISMEM_RESULTS_DIR`
//! (default `target/`); the committed copy at the repo root is regenerated
//! by the full run.
//!
//! ```sh
//! cargo run --release --example warm_campaign                # full 5400-cell grid
//! DISMEM_QUICK=1 cargo run --release --example warm_campaign # CI smoke
//! ```

use dismem::sched::{
    run_fleet_campaign, CampaignReport, FaultPlan, FleetSpec, SimCellRunner, SnapshotCache,
    SnapshotStats,
};
use dismem::sim::MachineConfig;
use std::path::{Path, PathBuf};

/// A journal path inside the results directory, cleared of any previous run
/// (fresh campaigns refuse non-empty journals by design).
fn fresh_journal(dir: &Path, name: &str) -> PathBuf {
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

/// Serialized report with the snapshot stats cleared: warm and cold runs
/// legitimately differ there (that block *describes* the cache), so the
/// bit-identity comparison normalizes it and asserts the stats explicitly.
fn normalized_json(report: &CampaignReport) -> String {
    let mut normalized = report.clone();
    normalized.snapshot = SnapshotStats::default();
    serde_json::to_string(&normalized).expect("campaign report serializes")
}

fn main() {
    let quick = std::env::var("DISMEM_QUICK").is_ok();
    let config = MachineConfig::scaled_testbed();
    let base_seed = 0xD15C_u64;
    let spec = if quick {
        FleetSpec {
            workloads: vec!["BFS".into(), "XSBench".into()],
            capacities_permille: vec![250, 750],
            seeds: (0..3).map(|i| base_seed + i).collect(),
            ..FleetSpec::tiny_grid(&config)
        }
    } else {
        FleetSpec {
            seeds: (0..150).map(|i| base_seed + i).collect(),
            ..FleetSpec::tiny_grid(&config)
        }
    };
    let cells = spec.cells().len();
    let prefixes = spec.workloads.len()
        * spec.scales.len()
        * spec.capacities_permille.len()
        * spec.links.len();
    println!(
        "fleet grid: {cells} cells over {prefixes} warm prefixes, spec digest {}",
        spec.digest_hex()
    );

    let dir =
        PathBuf::from(std::env::var("DISMEM_RESULTS_DIR").unwrap_or_else(|_| "target".to_string()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("could not create results dir {}: {e}", dir.display());
        std::process::exit(1);
    }
    let cache_dir = dir.join("warm-snapshots");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = match SnapshotCache::new(&cache_dir) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!(
                "could not create snapshot cache {}: {e}",
                cache_dir.display()
            );
            std::process::exit(1);
        }
    };
    let mut failures: Vec<String> = Vec::new();

    // 1. Warm campaign over a fresh cache: one miss per prefix, the rest hits.
    let warm_runner = SimCellRunner::quick(config.clone()).with_snapshot_cache(cache);
    let warm_path = fresh_journal(&dir, "FLEET_warm.jsonl");
    let warm = match run_fleet_campaign(&spec, &warm_runner, &warm_path, None, &FaultPlan::none()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("warm campaign failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "warm run:    {} cells completed; snapshots {} misses / {} hits / {} fallbacks",
        warm.completed.len(),
        warm.snapshot.misses,
        warm.snapshot.hits,
        warm.snapshot.fallbacks
    );
    let expected = SnapshotStats {
        hits: (cells - prefixes) as u64,
        misses: prefixes as u64,
        fallbacks: 0,
    };
    if warm.snapshot != expected {
        failures.push(format!(
            "warm-run snapshot stats {:?} differ from expected {expected:?}",
            warm.snapshot
        ));
    }

    // 2. Cold campaign, no cache: the reports must agree byte for byte.
    let cold_runner = SimCellRunner::quick(config.clone());
    let cold_path = fresh_journal(&dir, "FLEET_cold.jsonl");
    match run_fleet_campaign(&spec, &cold_runner, &cold_path, None, &FaultPlan::none()) {
        Ok(cold) => {
            println!("cold run:    {} cells completed", cold.completed.len());
            if cold.snapshot != SnapshotStats::default() {
                failures.push(format!(
                    "cold run reported snapshot activity: {:?}",
                    cold.snapshot
                ));
            }
            if normalized_json(&cold) != normalized_json(&warm) {
                failures.push("cold report differs from the warm report".into());
            }
        }
        Err(e) => failures.push(format!("cold campaign failed: {e}")),
    }

    // 3. Re-warm over the populated cache: every prefix is already on disk.
    let rewarm_cache = match SnapshotCache::new(&cache_dir) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("could not reopen snapshot cache: {e}");
            std::process::exit(1);
        }
    };
    let rewarm_runner = SimCellRunner::quick(config).with_snapshot_cache(rewarm_cache);
    let rewarm_path = fresh_journal(&dir, "FLEET_rewarm.jsonl");
    match run_fleet_campaign(
        &spec,
        &rewarm_runner,
        &rewarm_path,
        None,
        &FaultPlan::none(),
    ) {
        Ok(rewarm) => {
            println!(
                "re-warm run: {} cells completed; snapshots {} misses / {} hits",
                rewarm.completed.len(),
                rewarm.snapshot.misses,
                rewarm.snapshot.hits
            );
            if rewarm.snapshot.misses != 0 || rewarm.snapshot.hits != cells as u64 {
                failures.push(format!(
                    "re-warm run was not all hits: {:?}",
                    rewarm.snapshot
                ));
            }
            if normalized_json(&rewarm) != normalized_json(&warm) {
                failures.push("re-warm report differs from the warm report".into());
            }
        }
        Err(e) => failures.push(format!("re-warm campaign failed: {e}")),
    }

    // Persist the warm report; the committed CAMPAIGN_warm_fleet.json is the
    // full run's copy of this file.
    let report_path = dir.join("CAMPAIGN_warm_fleet.json");
    match serde_json::to_string(&warm) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&report_path, json) {
                eprintln!("warning: could not write {}: {e}", report_path.display());
            } else {
                println!("[warm report written to {}]", report_path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize report: {e}"),
    }

    if failures.is_empty() {
        println!(
            "\nAll {cells} cells agree across warm, cold and re-warm runs: restoring \
             {prefixes} shared snapshots is bit-identical to simulating every warm-up."
        );
    } else {
        eprintln!("\nwarm-start contract VIOLATED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
