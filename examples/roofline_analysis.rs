//! Roofline and bandwidth-capacity analysis of a single workload
//! (paper Sections 3.4 and 4.1).
//!
//! ```sh
//! cargo run --release --example roofline_analysis
//! ```

use dismem::analysis::{MultiTierRoofline, Roofline};
use dismem::profiler::level1::level1_profile;
use dismem::sim::MachineConfig;
use dismem::workloads::WorkloadKind;

fn main() {
    let machine = MachineConfig::scaled_testbed();
    let roofline = Roofline::new(machine.peak_flops, machine.local.bandwidth_bps);
    let multi = MultiTierRoofline::new(
        machine.peak_flops,
        machine.local.bandwidth_bps,
        machine.pool.bandwidth_bps,
    );

    println!(
        "Machine roofline: {:.0} Gflop/s peak, {:.0} GB/s local memory, ridge point at {:.1} flop/B.",
        machine.peak_flops / 1e9,
        machine.local.bandwidth_bps / 1e9,
        roofline.ridge_point()
    );
    println!(
        "Adding the memory pool raises the aggregate bandwidth ceiling to {:.0} GB/s; the \
         balanced remote-access ratio (the paper's R_BW reference) is {:.0}%.\n",
        multi.aggregate().peak_bandwidth / 1e9,
        100.0 * multi.optimal_remote_access_ratio()
    );

    for kind in [WorkloadKind::Hpl, WorkloadKind::Bfs, WorkloadKind::XsBench] {
        let w = kind.instantiate_tiny();
        let report = level1_profile(w.as_ref(), &machine);
        println!("{} ({}):", kind.name(), w.input_description());
        for p in &report.phases {
            let regime = if roofline.is_memory_bound(p.arithmetic_intensity) {
                "memory-bound"
            } else {
                "compute-bound"
            };
            println!(
                "  {:<12} AI {:>7.3} flop/B  -> attainable {:>7.1} Gflop/s, achieved {:>7.2} Gflop/s ({regime})",
                p.label,
                p.arithmetic_intensity,
                roofline.attainable(p.arithmetic_intensity) / 1e9,
                p.gflops,
            );
        }
        // Bandwidth-capacity scaling curve summary (Figure 6).
        let f50 = report.footprint_for_access_share(0.5);
        let f90 = report.footprint_for_access_share(0.9);
        println!(
            "  access skew: 50% of accesses hit {:.0}% of the footprint, 90% hit {:.0}%\n",
            100.0 * f50,
            100.0 * f90
        );
    }
}
