//! Case study 1 (paper Section 7.1): guide BFS data-placement optimization
//! with the Level-2 analysis and verify the improvement.
//!
//! ```sh
//! cargo run --release --example bfs_placement
//! ```

use dismem::core::bfs_placement_study;
use dismem::sim::MachineConfig;
use dismem::workloads::{BfsOptimization, BfsParams};

fn main() {
    let machine = MachineConfig::scaled_testbed();
    // A small R-MAT instance so the example also runs quickly in debug builds;
    // use `cargo bench --bench fig12_bfs_optimization` for the full-size run.
    let params = BfsParams {
        log_vertices: 15,
        avg_degree: 8,
        sources: 1,
        optimization: BfsOptimization::Baseline,
        seed: 0xB55,
    };

    println!("Running BFS placement case study (3 variants x 2 pooling configurations)...\n");
    let study = bfs_placement_study(params, &machine, &[0.5, 0.75], &[0.0, 25.0, 50.0]);

    for v in &study.variants {
        println!(
            "{:>3.0}% pooled  {:<22}  runtime {:>8.3} ms   remote access {:>5.1}%   Parents remote {:>5.1}%",
            v.pooled_fraction * 100.0,
            v.optimization,
            v.runtime_s * 1e3,
            100.0 * v.remote_access_ratio,
            100.0 * v.parents_remote_ratio,
        );
    }

    for pooled in [0.5, 0.75] {
        println!(
            "\nAt {:.0}% pooled: the two source changes cut the remote access ratio by {:.0} \
             percentage points and speed BFS up by {:.1}% (paper: 99% -> 50% remote access and \
             ~13% speedup at 75% pooled).",
            pooled * 100.0,
            study.remote_access_reduction(pooled).unwrap_or(0.0),
            study.speedup_percent(pooled).unwrap_or(0.0),
        );
    }
}
