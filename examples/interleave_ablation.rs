//! Ablation: page-placement policies on a bandwidth-bound streaming kernel.
//!
//! Section 2.1 of the paper calls out a common misconception — that adding a
//! slower memory tier lowers the achievable bandwidth. In fact, spreading a
//! streaming working set over both tiers (e.g. with the non-uniform N:M
//! interleave mempolicy the paper cites) can use the *aggregate* bandwidth of
//! local memory and the pool. This example measures a STREAM-like kernel under
//! four placements:
//!
//! * everything in node-local memory,
//! * everything on the memory pool,
//! * first-touch with a local tier that only fits half the data (spill), and
//! * 2:1 interleaving across the tiers (matching the 73:34 GB/s bandwidth
//!   ratio of the paper's testbed).
//!
//! ```sh
//! cargo run --release --example interleave_ablation
//! ```

use dismem::sim::{Machine, MachineConfig};
use dismem::trace::{MemoryEngine, PlacementPolicy};

/// Streams `bytes` of data `sweeps` times under the given placement policy and
/// returns (runtime in ms, achieved DRAM bandwidth in GB/s, remote share).
fn run_stream(
    config: MachineConfig,
    policy: PlacementPolicy,
    bytes: u64,
    sweeps: u32,
) -> (f64, f64, f64) {
    let mut machine = Machine::new(config);
    let a = machine.alloc_with_policy("stream-array", "ablation", bytes, policy);
    machine.phase_start("stream");
    machine.touch(a, bytes);
    for _ in 0..sweeps {
        machine.read(a, 0, bytes);
    }
    machine.phase_end();
    let report = machine.finish();
    let line = report.config.cache.line_bytes;
    let bw = report.total.bytes_dram(line) as f64 / report.total_runtime_s / 1e9;
    (
        report.total_runtime_s * 1e3,
        bw,
        report.remote_access_ratio(),
    )
}

fn main() {
    let base = MachineConfig::scaled_testbed();
    let bytes: u64 = 32 << 20;
    let sweeps = 4;

    // The interleave ratio that matches the tiers' bandwidth ratio (73:34 is
    // roughly 2:1) — the paper's balanced-access reference point.
    let cases: Vec<(&str, MachineConfig, PlacementPolicy)> = vec![
        ("all local", base.clone(), PlacementPolicy::ForceLocal),
        ("all on pool", base.clone(), PlacementPolicy::ForceRemote),
        (
            "first-touch, local fits 50%",
            base.clone().with_local_capacity(bytes / 2),
            PlacementPolicy::FirstTouch,
        ),
        (
            "interleave 2:1 (local:pool)",
            base.clone(),
            PlacementPolicy::interleave(2, 1),
        ),
    ];

    println!(
        "{:<30} {:>12} {:>16} {:>14}",
        "placement", "runtime", "DRAM bandwidth", "remote share"
    );
    let mut results = Vec::new();
    for (label, config, policy) in cases {
        let (ms, bw, remote) = run_stream(config, policy, bytes, sweeps);
        println!(
            "{label:<30} {ms:>9.2} ms {bw:>12.1} GB/s {:>13.0}%",
            remote * 100.0
        );
        results.push((label, bw));
    }

    let local_bw = results[0].1;
    let interleave_bw = results[3].1;
    println!(
        "\nBalanced 2:1 interleaving reaches {:.0}% of the local-only bandwidth plus the pool's \
         contribution ({:+.0}% aggregate vs. local-only) — adding a tier increases the ceiling, \
         it does not lower it. First-touch spilling, by contrast, serializes on whichever tier \
         holds the overflowing pages.",
        100.0 * interleave_bw / local_bw.max(1e-9) / (107.0 / 73.0),
        100.0 * (interleave_bw / local_bw.max(1e-9) - 1.0),
    );
}
