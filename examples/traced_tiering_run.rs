//! Flight-recorded dynamic-tiering run: one workload, full observability.
//!
//! Runs the phase-shifting working-set workload under the hot-promotion
//! policy with a [`FlightRecorder`] attached, then:
//!
//! 1. proves the recorder is **read-only** by byte-comparing the recorded
//!    run's report against an unrecorded run of the same configuration;
//! 2. proves the trace itself is **deterministic** by recording the run
//!    twice and byte-comparing the JSONL exports;
//! 3. **self-validates** the JSONL stream against the committed schema
//!    (`docs/TRACE_SCHEMA.json`) with [`validate_jsonl`];
//! 4. writes both exporter outputs — `TRACE_tiering_run.jsonl` and
//!    `TRACE_tiering_run_chrome.json` (openable in Perfetto /
//!    `chrome://tracing`) — into `DISMEM_RESULTS_DIR` (default `target/`);
//! 5. prints the deterministic metrics snapshot.
//!
//! Any contract violation makes the example exit non-zero, so CI runs it as
//! a smoke test.
//!
//! ```sh
//! cargo run --release --example traced_tiering_run
//! ```

use dismem::sim::tiering::HotPromote;
use dismem::sim::{Machine, MachineConfig, RunReport, TieringSpec};
use dismem::trace::{
    to_chrome_trace, to_jsonl, validate_jsonl, FlightRecorder, MetricsSnapshot, TraceEvent,
    PAGE_SIZE,
};
use dismem::workloads::{InputScale, PhaseShift, PhaseShiftParams, Workload};

/// One run of the workload under the given configuration; records the trace
/// when `recorded` is set.
fn run(
    workload: &PhaseShift,
    config: &MachineConfig,
    spec: &TieringSpec,
    recorded: bool,
) -> (RunReport, Vec<TraceEvent>, Option<MetricsSnapshot>) {
    let mut machine = Machine::new(config.clone());
    machine.set_tiering_spec(spec);
    if recorded {
        machine.set_recorder(Box::new(FlightRecorder::new()));
    }
    workload.run(&mut machine);
    let report = machine.finish();
    let Some(recorder) = machine.take_recorder() else {
        return (report, Vec::new(), None);
    };
    let recorder = recorder
        .into_any()
        .downcast::<FlightRecorder>()
        .expect("the installed recorder is a FlightRecorder");
    let snapshot = recorder.metrics().snapshot();
    let (events, _) = recorder.into_parts();
    (report, events, Some(snapshot))
}

fn main() {
    let params = PhaseShiftParams::bench(InputScale::X1);
    let workload = PhaseShift::new(params);
    let arena_pages = params.arena_bytes / PAGE_SIZE;
    let config =
        MachineConfig::scaled_testbed().with_local_capacity((arena_pages / 2 + 16) * PAGE_SIZE);
    let spec = TieringSpec::HotPromote(HotPromote::new(65_536, 16.0));

    println!(
        "workload: {} ({}), policy: hot-promote",
        workload.name(),
        workload.input_description()
    );
    let mut failures: Vec<String> = Vec::new();

    // The unrecorded reference, then two recorded runs.
    let (reference, _, _) = run(&workload, &config, &spec, false);
    let (recorded, events, snapshot) = run(&workload, &config, &spec, true);
    let (_, events_again, _) = run(&workload, &config, &spec, true);

    // 1. Recording is read-only.
    if recorded != reference {
        failures.push("recorded run's report differs from the unrecorded run".into());
    }

    // 2. The trace is deterministic.
    let jsonl = to_jsonl(&events);
    if jsonl != to_jsonl(&events_again) {
        failures.push("repeat recording produced a different trace".into());
    }

    // 3. The stream validates against the committed schema.
    match validate_jsonl(&jsonl) {
        Ok(lines) => println!("trace:    {lines} events, schema-valid"),
        Err(e) => failures.push(format!("trace failed schema validation: {e}")),
    }
    if events.is_empty() {
        failures.push("the tiering run emitted no trace events".into());
    }

    // 4. Both exporter outputs land in the results directory.
    let dir = std::env::var("DISMEM_RESULTS_DIR").unwrap_or_else(|_| "target".to_string());
    let dir = std::path::Path::new(&dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("could not create results dir {}: {e}", dir.display());
        std::process::exit(1);
    }
    for (name, payload) in [
        ("TRACE_tiering_run.jsonl", &jsonl),
        ("TRACE_tiering_run_chrome.json", &to_chrome_trace(&events)),
    ] {
        let path = dir.join(name);
        if let Err(e) = std::fs::write(&path, payload) {
            failures.push(format!("could not write {}: {e}", path.display()));
        } else {
            println!("[trace written to {}]", path.display());
        }
    }

    // 5. The deterministic metrics snapshot.
    if let Some(snapshot) = snapshot {
        match serde_json::to_string_pretty(&snapshot) {
            Ok(json) => println!("\nmetrics snapshot:\n{json}"),
            Err(e) => failures.push(format!("could not serialize the snapshot: {e}")),
        }
    } else {
        failures.push("recorded run returned no metrics snapshot".into());
    }

    if failures.is_empty() {
        println!(
            "\nThe recorder observed {} events without changing a single report bit, \
             and both recordings exported byte-identically.",
            events.len()
        );
    } else {
        eprintln!("\nobservability contract VIOLATED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
