//! Dynamic-tiering policy campaign: static pinning vs hot-page promotion vs
//! periodic rebalancing on the phase-shifting working-set workload.
//!
//! The arena is interleaved 1:1 across the tiers (the static best-effort
//! placement when only half of the footprint fits locally) and the hot
//! region moves every phase. A dynamic policy pays page-sized migration
//! traffic on the pool link to keep the hot region in node-local DRAM;
//! static placement pays pool latency on every pass instead.
//!
//! Writes `CAMPAIGN_tiering.json` into the results directory (the committed
//! copy at the repository root is regenerated from this example).
//!
//! ```sh
//! cargo run --release --example dynamic_tiering
//! ```

use dismem::sched::{default_specs, sweep_tiering_policies, CampaignConfig};
use dismem::sim::MachineConfig;
use dismem::trace::PAGE_SIZE;
use dismem::workloads::{InputScale, PhaseShift, PhaseShiftParams, Workload};

fn main() {
    let params = PhaseShiftParams::bench(InputScale::X1);
    let workload = PhaseShift::new(params);
    // Local capacity = the interleaved half of the arena (plus slack for the
    // accumulator), so static placement is exactly the 1:1 interleave and a
    // promotion policy must demote cold pages to make room.
    let arena_pages = params.arena_bytes / PAGE_SIZE;
    let config =
        MachineConfig::scaled_testbed().with_local_capacity((arena_pages / 2 + 16) * PAGE_SIZE);
    // One hotness epoch per sweep pass (64 Ki lines), promotion threshold at
    // half a pass's per-page line count.
    let specs = default_specs(65_536, 16.0);
    let campaign = CampaignConfig {
        runs: 50,
        epochs_per_run: 8,
        seed: 7,
    };

    println!(
        "workload: {} ({})",
        workload.name(),
        workload.input_description()
    );
    println!(
        "{:<20} {:>12} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "policy", "runtime", "speedup", "loaded", "remote%", "promos", "demos", "migrated"
    );
    let sweep = sweep_tiering_policies(&workload, &config, &specs, &campaign);
    for o in &sweep.outcomes {
        println!(
            "{:<20} {:>9.3} ms {:>8.2}x {:>8.2}x {:>8.1}% {:>9} {:>11} {:>8.2} MiB",
            o.policy,
            o.runtime_s * 1e3,
            o.speedup_vs_static,
            o.loaded_speedup_vs_static,
            o.remote_access_ratio * 100.0,
            o.tiering.promotions,
            o.tiering.demotions,
            o.tiering.migrated_bytes as f64 / (1 << 20) as f64,
        );
    }
    println!(
        "\nHot-promotion pays {:.2} MiB of raw link traffic in migrations and in exchange \
         serves the moving working set from node-local DRAM; static interleave keeps paying \
         pool latency on every pass.",
        sweep
            .outcomes
            .iter()
            .map(|o| o.migration_link_raw_bytes)
            .max()
            .unwrap_or(0) as f64
            / (1 << 20) as f64
    );

    let dir = std::env::var("DISMEM_RESULTS_DIR").unwrap_or_else(|_| "target".to_string());
    let path = std::path::Path::new(&dir).join("CAMPAIGN_tiering.json");
    match serde_json::to_string_pretty(&sweep) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize sweep: {e}"),
    }
}
