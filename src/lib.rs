//! # dismem
//!
//! A quantitative methodology and simulation toolkit for adopting
//! disaggregated (pool-based) memory in HPC systems — a from-scratch Rust
//! reproduction of *"A Quantitative Approach for Adopting Disaggregated
//! Memory in HPC Systems"* (SC 2023).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`trace`] — memory-access events, allocation records, the
//!   [`trace::MemoryEngine`] trait workloads are written against;
//! * [`sim`] — the two-tier (node-local + memory pool) machine simulator that
//!   replaces the paper's dual-socket emulation platform;
//! * [`workloads`] — proxy implementations of HPL, Hypre, NekRS, BFS,
//!   SuperLU and XSBench;
//! * [`profiler`] — the three-level memory-centric profiler;
//! * [`lbench`] — the LBench interference benchmark and link-contention
//!   model;
//! * [`analysis`] — roofline models, statistics and the Top-500 memory/cost
//!   dataset;
//! * [`sched`] — the interference-aware job-scheduling study;
//! * [`core`] — the three-level quantitative study facade, guidance rules and
//!   the BFS placement case study.
//!
//! ## Quick start
//!
//! ```
//! use dismem::core::QuantitativeStudy;
//! use dismem::sim::MachineConfig;
//! use dismem::workloads::WorkloadKind;
//!
//! let study = QuantitativeStudy::new(
//!     WorkloadKind::Bfs.instantiate_tiny(),
//!     MachineConfig::test_config(),
//! );
//! let level2 = study.level2(0.25);
//! println!(
//!     "BFS sends {:.0}% of its accesses to the pool when only 25% of its footprint fits locally",
//!     100.0 * level2.remote_access_ratio
//! );
//! ```

#![forbid(unsafe_code)]

pub use dismem_analysis as analysis;
pub use dismem_core as core;
pub use dismem_lbench as lbench;
pub use dismem_profiler as profiler;
pub use dismem_sched as sched;
pub use dismem_sim as sim;
pub use dismem_trace as trace;
pub use dismem_workloads as workloads;

/// Version of the dismem workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
