//! Offline stand-in for `rayon`.
//!
//! `par_iter()` / `into_par_iter()` return the corresponding *sequential*
//! iterators, so every adaptor (`map`, `collect`, `unzip`, …) is the std one
//! and results are bit-identical to the parallel versions — the workspace
//! only uses order-preserving, side-effect-free pipelines. Swap in the real
//! rayon (same call sites) once the build environment has network access.

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// `into_par_iter()` for owned collections and ranges; sequential fallback.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` for `&self` iteration over slices and collections;
/// sequential fallback.
pub trait IntoParallelRefIterator<'data> {
    type Iter: Iterator;

    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Iter = <&'data C as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}
