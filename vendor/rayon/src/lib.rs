//! Offline multithreaded stand-in for `rayon`.
//!
//! Implements the small `par_iter()` / `into_par_iter()` surface the
//! workspace uses with a real chunked thread pool: `collect()` splits the
//! materialized items into one contiguous chunk per worker, runs the chunks
//! on `std::thread::scope` threads, and reassembles the results in order —
//! so outputs are bit-identical to the sequential pipeline while independent
//! items (simulated machine runs, campaign trials, re-timing sweeps) execute
//! concurrently.
//!
//! Worker count: `RAYON_NUM_THREADS` if set, else
//! `available_parallelism().max(2)` (at least two workers so parallel
//! execution is exercised even on single-core CI containers). Swap in the
//! real rayon (same call sites) once the build environment has network
//! access.

use std::sync::OnceLock;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads used by [`ParMap::collect`].
///
/// Honors `RAYON_NUM_THREADS` (like the real rayon); defaults to the
/// machine's available parallelism, with a floor of two workers.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .max(2)
            })
    })
}

/// A materialized parallel iterator: the items to fan out over the pool.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T> ParIter<T> {
    /// Maps every item through `f`; work happens at `collect()`.
    pub fn map<R, F: Fn(T) -> R>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, executed and gathered by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParMap<T, F> {
    /// Runs the map over the thread pool and gathers the results in input
    /// order. Panics in worker closures are propagated to the caller.
    ///
    /// No thread is spawned when the pool is configured for one worker
    /// (`RAYON_NUM_THREADS=1`) or the input reduces to a single chunk, and
    /// the first chunk always runs inline on the caller thread — a
    /// `collect` over `k` chunks spawns `k - 1` workers, which cuts the
    /// latency and scheduler noise of small campaigns on single-core CI.
    pub fn collect<R, C>(self) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let threads = current_num_threads();
        self.collect_with(threads)
    }

    fn collect_with<R, C>(self, threads: usize) -> C
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let threads = threads.min(n);
        if threads <= 1 {
            return self.items.into_iter().map(&self.f).collect();
        }
        let chunk_size = n.div_ceil(threads);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
        let mut it = self.items.into_iter();
        loop {
            let chunk: Vec<T> = it.by_ref().take(chunk_size).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let f = &self.f;
        let mut chunks = chunks.into_iter();
        let first = chunks.next().expect("n >= 2 yields at least one chunk");
        if chunks.len() == 0 {
            // Single chunk: run it inline, no pool at all.
            return first.into_iter().map(f).collect();
        }
        let per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            // The first chunk runs on the caller thread while the workers
            // process the rest.
            let head: Vec<R> = first.into_iter().map(f).collect();
            let mut gathered = vec![head];
            gathered.extend(handles.into_iter().map(|h| match h.join() {
                Ok(results) => results,
                Err(panic) => std::panic::resume_unwind(panic),
            }));
            gathered
        });
        per_chunk.into_iter().flatten().collect()
    }
}

/// `into_par_iter()` for owned collections and ranges.
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `par_iter()` for `&self` iteration over slices and collections.
pub trait IntoParallelRefIterator<'data> {
    type Item;

    fn par_iter(&'data self) -> ParIter<Self::Item>;
}

impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
{
    type Item = <&'data C as IntoIterator>::Item;

    fn par_iter(&'data self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn collect_preserves_order() {
        let squares: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 1000);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn par_iter_over_slice() {
        let data = vec![1, 2, 3, 4, 5];
        let doubled: Vec<i32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
    }

    #[test]
    fn work_runs_on_multiple_threads() {
        assert!(current_num_threads() >= 2, "pool must have >= 2 workers");
        let ids: HashSet<String> = (0..64)
            .into_par_iter()
            .map(|_| format!("{:?}", std::thread::current().id()))
            .collect();
        assert!(
            ids.len() > 1,
            "64 items across >=2 workers must use more than one thread"
        );
    }

    #[test]
    fn single_thread_pool_runs_inline_on_caller() {
        let caller = format!("{:?}", std::thread::current().id());
        let ids: HashSet<String> = (0..64)
            .into_par_iter()
            .map(|_| format!("{:?}", std::thread::current().id()))
            .collect_with(1);
        assert_eq!(
            ids,
            HashSet::from([caller]),
            "RAYON_NUM_THREADS=1 must not spawn workers"
        );
    }

    #[test]
    fn caller_thread_participates_in_the_pool() {
        let caller = format!("{:?}", std::thread::current().id());
        let ids: Vec<String> = (0..64)
            .into_par_iter()
            .map(|_| format!("{:?}", std::thread::current().id()))
            .collect_with(4);
        // The first chunk runs on the caller; order is preserved.
        assert_eq!(ids[0], caller);
        assert!(
            ids.iter().any(|id| *id != caller),
            "later chunks must run on workers"
        );
    }

    #[test]
    fn order_preserved_with_caller_participation() {
        let squares: Vec<u64> = (0u64..103).into_par_iter().map(|i| i * i).collect_with(5);
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let _: Vec<()> = (0..8)
            .into_par_iter()
            .map(|i| {
                if i == 3 {
                    panic!("worker boom");
                }
            })
            .collect();
    }
}
