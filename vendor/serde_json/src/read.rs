//! A small hand-rolled JSON reader.
//!
//! The stub serialization stack is write-only; the campaign journal
//! (`dismem-sched`) needs to read its own JSON-lines records back on resume,
//! so this module provides the minimal inverse: a recursive-descent parser
//! into a [`JsonValue`] tree plus typed accessors. Numbers keep their raw
//! text so u64 values above 2^53 (config digests, seeds) survive the round
//! trip exactly instead of being squeezed through f64.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text (see [`JsonValue::as_f64`] /
    /// [`JsonValue::as_u64`]).
    Number(String),
    /// A string literal (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => {
                members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number. Parsing goes through Rust's
    /// correctly-rounded `str::parse`, so a value serialized with the stub's
    /// shortest-round-trip writer comes back bit-identical.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer number. Parsed
    /// from the raw text, so the full u64 range round-trips.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure: a message plus the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
/// This is the JSON-lines entry point: one call per journal line.
pub fn parse_value(input: &str) -> Result<JsonValue, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters after value", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError {
        message: message.to_string(),
        offset,
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(&format!("expected `{lit}`"), *pos))
    }
}

fn parse_at(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'n') => expect(bytes, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err("unexpected character", *pos)),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit()
            || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(err("expected digits", *pos));
    }
    let raw = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| err("invalid utf-8 in number", start))?;
    // Validate: a number must parse as f64 (covers int/frac/exp grammar
    // closely enough for journal input, which this crate itself wrote).
    raw.parse::<f64>()
        .map_err(|_| err("malformed number", start))?;
    Ok(JsonValue::Number(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err(err("unterminated string", *pos));
        };
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(err("unterminated escape", *pos));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("malformed \\u escape", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not produced by the stub
                        // writer; reject rather than mis-decode.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| err("invalid \\u code point", *pos))?;
                        out.push(ch);
                    }
                    _ => return Err(err("unknown escape", *pos)),
                }
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unchanged).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err("invalid utf-8 in string", *pos))?;
                let Some(ch) = rest.chars().next() else {
                    return Err(err("unterminated string", *pos));
                };
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, ParseError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_at(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err("expected `,` or `]`", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, ParseError> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err("expected string key", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err("expected `:`", *pos));
        }
        *pos += 1;
        let value = parse_at(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(err("expected `,` or `}`", *pos)),
        }
    }
}
