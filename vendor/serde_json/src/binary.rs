//! Compact length-prefixed binary encoding of [`JsonValue`] trees.
//!
//! The JSON text path ([`crate::to_string`] / [`parse_value`]) is the
//! authoritative serialization format; this module is a byte-for-byte
//! reversible transport encoding for it. [`encode_value`] classifies every
//! `Number` by re-rendering its canonical text form, so decoding regenerates
//! the exact text the writer produced: full-range `u64` digests and seeds
//! survive (no `f64` round-trip), and `f64` payloads are carried as IEEE-754
//! bit patterns. All multi-byte integers are little-endian by definition —
//! the format is identical on every host.
//!
//! Wire grammar (one tag byte, then the payload):
//!
//! | tag  | value                                                    |
//! |------|----------------------------------------------------------|
//! | 0x00 | null                                                     |
//! | 0x01 | false                                                    |
//! | 0x02 | true                                                     |
//! | 0x03 | u64, 8 bytes LE                                          |
//! | 0x04 | i64, 8 bytes LE (negative integers only)                 |
//! | 0x05 | f64 bit pattern, 8 bytes LE                              |
//! | 0x06 | number as text: u32 LE byte length + UTF-8 bytes         |
//! | 0x07 | string: u32 LE byte length + UTF-8 bytes                 |
//! | 0x08 | array: u32 LE element count + elements                   |
//! | 0x09 | object: u32 LE entry count + (key string, value) pairs   |
//!
//! Tag 0x06 exists only as a fallback for numeric text this crate's writer
//! never produces (e.g. exponent notation from a foreign file); everything
//! the stub serializer emits classifies as 0x03/0x04/0x05.

use crate::read::JsonValue;
use std::fmt;

/// Decoding error: malformed or truncated binary input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset at which decoding failed.
    pub offset: usize,
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for BinaryError {}

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_U64: u8 = 0x03;
const TAG_I64: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_NUM_TEXT: u8 = 0x06;
const TAG_STRING: u8 = 0x07;
const TAG_ARRAY: u8 = 0x08;
const TAG_OBJECT: u8 = 0x09;

/// Maximum nesting depth accepted by [`decode_value`]; prevents unbounded
/// recursion on corrupt input.
const MAX_DEPTH: usize = 512;

/// Renders `v` exactly as the stub `serde::Serialize` impl for `f64` does,
/// so binary round-trips regenerate byte-identical JSON text.
pub fn render_f64(v: f64) -> String {
    if !v.is_finite() {
        "null".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{}", v)
    }
}

/// Renders a [`JsonValue`] back to compact JSON text, inverting
/// [`crate::parse_value`]. Strings are escaped with the same rules as the
/// stub serializer, so parse → render round-trips byte-identically on any
/// document this crate's writer produced.
pub fn render_value(value: &JsonValue) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &JsonValue, out: &mut String) {
    match value {
        JsonValue::Null => out.push_str("null"),
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        JsonValue::Number(raw) => out.push_str(raw),
        JsonValue::String(s) => serde::ser::write_str(out, s),
        JsonValue::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        JsonValue::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                serde::ser::write_str(out, key);
                out.push(':');
                render_into(item, out);
            }
            out.push('}');
        }
    }
}

/// Encodes a [`JsonValue`] tree as length-prefixed little-endian bytes.
pub fn encode_value(value: &JsonValue) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(value, &mut out);
    out
}

fn encode_into(value: &JsonValue, out: &mut Vec<u8>) {
    match value {
        JsonValue::Null => out.push(TAG_NULL),
        JsonValue::Bool(false) => out.push(TAG_FALSE),
        JsonValue::Bool(true) => out.push(TAG_TRUE),
        JsonValue::Number(raw) => encode_number(raw, out),
        JsonValue::String(s) => {
            out.push(TAG_STRING);
            encode_bytes(s.as_bytes(), out);
        }
        JsonValue::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_into(item, out);
            }
        }
        JsonValue::Object(entries) => {
            out.push(TAG_OBJECT);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (key, item) in entries {
                encode_bytes(key.as_bytes(), out);
                encode_into(item, out);
            }
        }
    }
}

fn encode_bytes(bytes: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Classifies raw numeric text into the narrowest lossless wire form. The
/// canonical-text comparison guarantees `decode` regenerates `raw` exactly;
/// anything that does not round-trip through a typed form falls back to the
/// text tag.
fn encode_number(raw: &str, out: &mut Vec<u8>) {
    let integral = !raw.contains(['.', 'e', 'E']);
    if integral {
        if let Some(stripped) = raw.strip_prefix('-') {
            if let Ok(v) = raw.parse::<i64>() {
                if stripped.parse::<u64>().is_ok() && v.to_string() == raw {
                    out.push(TAG_I64);
                    out.extend_from_slice(&v.to_le_bytes());
                    return;
                }
            }
        } else if let Ok(v) = raw.parse::<u64>() {
            if v.to_string() == raw {
                out.push(TAG_U64);
                out.extend_from_slice(&v.to_le_bytes());
                return;
            }
        }
    } else if let Ok(v) = raw.parse::<f64>() {
        if v.is_finite() && render_f64(v) == raw {
            out.push(TAG_F64);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
            return;
        }
    }
    out.push(TAG_NUM_TEXT);
    encode_bytes(raw.as_bytes(), out);
}

/// Decodes bytes produced by [`encode_value`] back into a [`JsonValue`].
/// The full input must be consumed; trailing bytes are an error.
pub fn decode_value(bytes: &[u8]) -> Result<JsonValue, BinaryError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let value = cursor.decode(0)?;
    if cursor.pos != bytes.len() {
        return Err(BinaryError {
            message: format!("{} trailing bytes after value", bytes.len() - cursor.pos),
            offset: cursor.pos,
        });
    }
    Ok(value)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn fail<T>(&self, message: impl Into<String>) -> Result<T, BinaryError> {
        Err(BinaryError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinaryError> {
        if self.bytes.len() - self.pos < n {
            return self.fail(format!(
                "truncated input: need {} bytes, have {}",
                n,
                self.bytes.len() - self.pos
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn take_u32(&mut self) -> Result<u32, BinaryError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take_u64(&mut self) -> Result<u64, BinaryError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn take_string(&mut self) -> Result<String, BinaryError> {
        let len = self.take_u32()? as usize;
        let start = self.pos;
        let raw = self.take(len)?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(BinaryError {
                message: "invalid UTF-8 in string payload".to_string(),
                offset: start,
            }),
        }
    }

    fn decode(&mut self, depth: usize) -> Result<JsonValue, BinaryError> {
        if depth > MAX_DEPTH {
            return self.fail("nesting depth limit exceeded");
        }
        let tag = self.take(1)?[0];
        match tag {
            TAG_NULL => Ok(JsonValue::Null),
            TAG_FALSE => Ok(JsonValue::Bool(false)),
            TAG_TRUE => Ok(JsonValue::Bool(true)),
            TAG_U64 => {
                let v = self.take_u64()?;
                Ok(JsonValue::Number(v.to_string()))
            }
            TAG_I64 => {
                let v = self.take_u64()? as i64;
                Ok(JsonValue::Number(v.to_string()))
            }
            TAG_F64 => {
                let v = f64::from_bits(self.take_u64()?);
                Ok(JsonValue::Number(render_f64(v)))
            }
            TAG_NUM_TEXT => {
                let raw = self.take_string()?;
                Ok(JsonValue::Number(raw))
            }
            TAG_STRING => Ok(JsonValue::String(self.take_string()?)),
            TAG_ARRAY => {
                let count = self.take_u32()? as usize;
                let mut items = Vec::new();
                for _ in 0..count {
                    items.push(self.decode(depth + 1)?);
                }
                Ok(JsonValue::Array(items))
            }
            TAG_OBJECT => {
                let count = self.take_u32()? as usize;
                let mut entries = Vec::new();
                for _ in 0..count {
                    let key = self.take_string()?;
                    let value = self.decode(depth + 1)?;
                    entries.push((key, value));
                }
                Ok(JsonValue::Object(entries))
            }
            other => self.fail(format!("unknown tag byte 0x{:02x}", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_value;

    fn roundtrip(text: &str) {
        let value = parse_value(text).expect("valid JSON");
        let bytes = encode_value(&value);
        let back = decode_value(&bytes).expect("valid binary");
        assert_eq!(back, value, "value mismatch for {text}");
        assert_eq!(render_value(&back), text, "text mismatch for {text}");
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip("null");
        roundtrip("true");
        roundtrip("false");
        roundtrip("0");
        roundtrip("-1");
        roundtrip("18446744073709551615");
        roundtrip("-9223372036854775808");
        roundtrip("0.5");
        roundtrip("1.0");
        roundtrip("-123456.78125");
        roundtrip("\"hello \\\"world\\\"\\n\"");
    }

    #[test]
    fn u64_above_2_53_is_lossless() {
        let digest = 0xdead_beef_dead_beefu64;
        let value = JsonValue::Number(digest.to_string());
        let bytes = encode_value(&value);
        assert_eq!(bytes[0], 0x03, "must take the u64 path, not f64");
        let back = decode_value(&bytes).expect("valid binary");
        assert_eq!(back.as_u64(), Some(digest));
    }

    #[test]
    fn containers_round_trip() {
        roundtrip("[]");
        roundtrip("{}");
        roundtrip("[1,2,3]");
        roundtrip("{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}");
    }

    #[test]
    fn endianness_is_pinned() {
        let bytes = encode_value(&JsonValue::Number("258".to_string()));
        assert_eq!(bytes, vec![0x03, 0x02, 0x01, 0, 0, 0, 0, 0, 0]);
        let s = encode_value(&JsonValue::String("ab".to_string()));
        assert_eq!(s, vec![0x07, 0x02, 0x00, 0x00, 0x00, b'a', b'b']);
    }

    #[test]
    fn exotic_number_text_falls_back() {
        let value = JsonValue::Number("1e3".to_string());
        let bytes = encode_value(&value);
        assert_eq!(bytes[0], TAG_NUM_TEXT);
        assert_eq!(decode_value(&bytes).expect("valid"), value);
    }

    #[test]
    fn truncated_input_is_an_error() {
        let bytes = encode_value(&parse_value("{\"a\":[1,2,3]}").unwrap());
        for cut in 0..bytes.len() {
            assert!(
                decode_value(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_an_error() {
        let mut bytes = encode_value(&JsonValue::Null);
        bytes.push(0);
        assert!(decode_value(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_is_an_error() {
        assert!(decode_value(&[0x7f]).is_err());
    }
}
