//! Offline stand-in for `serde_json`.
//!
//! The stub `serde::Serialize` trait already writes JSON, so this crate is a
//! thin veneer: [`to_string`] collects the output, [`to_string_pretty`]
//! re-indents it. Serialization in the stub model is infallible, so [`Error`]
//! is never constructed — it exists to keep `Result`-shaped call sites
//! compiling unchanged.
//!
//! The [`read`] module is the minimal inverse: a hand-rolled JSON parser for
//! consumers (the campaign journal) that must read back what this crate
//! wrote.

pub mod binary;
pub mod read;

pub use binary::{decode_value, encode_value, render_value, BinaryError};
pub use read::{parse_value, JsonValue, ParseError};

use std::fmt;

/// Serialization error. Never produced by the stub, present for API parity.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub error (unreachable)")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    value.serialize_json(&mut out);
    Ok(out)
}

/// Serialize `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let compact = to_string(value)?;
    Ok(pretty(&compact))
}

fn pretty(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_string {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(close);
                    chars.next();
                } else {
                    indent += 1;
                    newline(&mut out, indent);
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                newline(&mut out, indent);
                out.push(c);
            }
            ',' => {
                out.push(c);
                newline(&mut out, indent);
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

fn newline(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}
