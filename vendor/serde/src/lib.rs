//! Offline stand-in for `serde`.
//!
//! The dismem container has no network access to crates.io, so this crate
//! provides the subset of the serde surface the workspace actually uses:
//! the [`Serialize`] / [`Deserialize`] traits, the derive macros (re-exported
//! from the sibling `serde_derive` stub), and a JSON writer that
//! `serde_json::to_string` delegates to. The data model is collapsed: instead
//! of the full serializer/visitor machinery, [`Serialize`] writes JSON
//! directly, which is the only format the workspace serializes to.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types that can write themselves as JSON.
///
/// The real serde `Serialize` is format-agnostic; this stub hard-wires the
/// one format the workspace uses. Derived impls emit an object with one
/// member per field, matching serde's default behaviour (externally tagged
/// enums, field names as keys).
pub trait Serialize {
    fn serialize_json(&self, out: &mut String);
}

/// Marker trait mirroring serde's `Deserialize`.
///
/// Nothing in the workspace deserializes, so the derive emits an empty impl
/// and no parsing machinery exists.
pub trait Deserialize<'de>: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_json(&self, out: &mut String) {
        (**self).serialize_json(out);
    }
}

macro_rules! int_impl {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 40], *self as i128));
            }
        }
    )*};
}

int_impl!(i8 i16 i32 i64 isize u8 u16 u32 u64 usize);

impl Serialize for u128 {
    fn serialize_json(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(out, "{self}");
    }
}

impl Serialize for i128 {
    fn serialize_json(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(out, "{self}");
    }
}

fn itoa_buf(buf: &mut [u8; 40], mut v: i128) -> &str {
    let neg = v < 0;
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10).unsigned_abs() as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).unwrap()
}

macro_rules! float_impl {
    ($($t:ty)*) => {$(
        impl Serialize for $t {
            fn serialize_json(&self, out: &mut String) {
                use std::fmt::Write;
                if self.is_finite() {
                    // `{}` prints the shortest representation that round-trips,
                    // matching serde_json's ryu output for most values.
                    if *self == self.trunc() && self.abs() < 1e15 {
                        let _ = write!(out, "{:.1}", self);
                    } else {
                        let _ = write!(out, "{}", self);
                    }
                } else {
                    out.push_str("null");
                }
            }
        }
    )*};
}

float_impl!(f32 f64);

impl Serialize for bool {
    fn serialize_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize_json(&self, out: &mut String) {
        ser::write_str(out, self);
    }
}

impl Serialize for String {
    fn serialize_json(&self, out: &mut String) {
        ser::write_str(out, self);
    }
}

impl Serialize for char {
    fn serialize_json(&self, out: &mut String) {
        let mut buf = [0u8; 4];
        ser::write_str(out, self.encode_utf8(&mut buf));
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json(&self, out: &mut String) {
        self.as_slice().serialize_json(out);
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.serialize_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys: JSON object members must be strings, so keys are stringified
/// the way serde_json does (integers print in decimal).
pub trait JsonKey: Ord {
    fn write_key(&self, out: &mut String);
}

impl JsonKey for String {
    fn write_key(&self, out: &mut String) {
        ser::write_str(out, self);
    }
}

impl JsonKey for &str {
    fn write_key(&self, out: &mut String) {
        ser::write_str(out, self);
    }
}

macro_rules! int_key {
    ($($t:ty)*) => {$(
        impl JsonKey for $t {
            fn write_key(&self, out: &mut String) {
                use std::fmt::Write;
                let _ = write!(out, "\"{self}\"");
            }
        }
    )*};
}

int_key!(i8 i16 i32 i64 i128 isize u8 u16 u32 u64 u128 usize);

impl<K: JsonKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            k.write_key(out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

impl<K: JsonKey, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn serialize_json(&self, out: &mut String) {
        // Sort keys for deterministic output regardless of hash order.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        out.push('{');
        for (i, (k, v)) in entries.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            k.write_key(out);
            out.push(':');
            v.serialize_json(out);
        }
        out.push('}');
    }
}

/// Helpers the derive macro's generated code calls into.
pub mod ser {
    use super::Serialize;

    /// Write one `"name": value` struct member, inserting the separating
    /// comma for every member after the first.
    pub fn field<T: Serialize + ?Sized>(out: &mut String, name: &str, value: &T, first: &mut bool) {
        if !*first {
            out.push(',');
        }
        *first = false;
        write_str(out, name);
        out.push(':');
        value.serialize_json(out);
    }

    /// Write a JSON string literal with escaping.
    pub fn write_str(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    use std::fmt::Write;
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }
}
