//! Offline stand-in for `serde_derive`.
//!
//! Parses the deriving item's token stream by hand (no `syn`/`quote` in the
//! container) and emits an impl of the stub `serde::Serialize` trait, which
//! writes JSON directly. Supports the shapes the workspace uses: structs with
//! named fields, tuple/unit structs, and enums with unit, tuple and struct
//! variants — all without generic parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let mut body = String::new();
    match &item.shape {
        Shape::NamedStruct(fields) => {
            body.push_str("out.push('{');\nlet mut first = true;\n");
            for f in fields {
                let _ = writeln!(
                    body,
                    "serde::ser::field(out, \"{f}\", &self.{f}, &mut first);"
                );
            }
            body.push_str("let _ = first;\nout.push('}');\n");
        }
        Shape::TupleStruct(arity) => {
            if *arity == 1 {
                // Newtype structs serialize as their inner value, like serde.
                body.push_str("self.0.serialize_json(out);\n");
            } else {
                body.push_str("out.push('[');\n");
                for i in 0..*arity {
                    if i > 0 {
                        body.push_str("out.push(',');\n");
                    }
                    let _ = writeln!(body, "self.{i}.serialize_json(out);");
                }
                body.push_str("out.push(']');\n");
            }
        }
        Shape::UnitStruct => {
            body.push_str("out.push_str(\"null\");\n");
        }
        Shape::Enum(variants) => {
            // Externally tagged representation, serde's default.
            body.push_str("match self {\n");
            for v in variants {
                let name = &item.name;
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = writeln!(
                            body,
                            "{name}::{vn} => serde::ser::write_str(out, \"{vn}\"),"
                        );
                    }
                    VariantFields::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let _ = writeln!(body, "{name}::{vn}({}) => {{", binds.join(", "));
                        body.push_str("out.push('{');\n");
                        let _ = writeln!(body, "serde::ser::write_str(out, \"{vn}\");");
                        body.push_str("out.push(':');\n");
                        if *arity == 1 {
                            body.push_str("__f0.serialize_json(out);\n");
                        } else {
                            body.push_str("out.push('[');\n");
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("out.push(',');\n");
                                }
                                let _ = writeln!(body, "{b}.serialize_json(out);");
                            }
                            body.push_str("out.push(']');\n");
                        }
                        body.push_str("out.push('}');\n}\n");
                    }
                    VariantFields::Named(fields) => {
                        let _ = writeln!(body, "{name}::{vn} {{ {} }} => {{", fields.join(", "));
                        body.push_str("out.push('{');\n");
                        let _ = writeln!(body, "serde::ser::write_str(out, \"{vn}\");");
                        body.push_str("out.push(':');\nout.push('{');\nlet mut first = true;\n");
                        for f in fields {
                            let _ = writeln!(
                                body,
                                "serde::ser::field(out, \"{f}\", {f}, &mut first);"
                            );
                        }
                        body.push_str("let _ = first;\nout.push('}');\nout.push('}');\n}\n");
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    let generated = format!(
        "#[automatically_derived]\nimpl serde::Serialize for {} {{\n\
         fn serialize_json(&self, out: &mut String) {{\n\
         #[allow(unused_imports)] use serde::Serialize as _;\n{body}}}\n}}\n",
        item.name
    );
    generated
        .parse()
        .expect("serde_derive stub generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    // Nothing in the workspace deserializes; emit only the marker impl so
    // `#[derive(Deserialize)]` stays valid.
    let item = parse_item(input);
    format!(
        "#[automatically_derived]\nimpl<'de> serde::Deserialize<'de> for {} {{}}\n",
        item.name
    )
    .parse()
    .expect("serde_derive stub generated invalid Rust")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc.: the optional paren group is
                // consumed by the '#'/ident arms as it comes up.
            }
            Some(TokenTree::Group(_)) => {} // pub(crate) restriction group
            Some(_) => {}
            None => panic!("serde_derive stub: no struct/enum keyword found"),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (deriving {name})");
        }
    }
    let shape = if kind == "struct" {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_commas_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive stub: unexpected struct body {other:?}"),
        }
    } else {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive stub: unexpected enum body {other:?}"),
        }
    };
    Item { name, shape }
}

/// Extract field names from a named-field list: skips attributes and
/// visibility, takes the ident before each top-level `:`, then skips the type
/// (tracking `<`/`>` depth so commas inside generic arguments don't split).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = tokens.peek() {
                        tokens.next();
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive stub: unexpected token in fields: {other}"),
                None => return fields,
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive stub: expected ':' after field {name}, got {other:?}"),
        }
        fields.push(name);
        // Skip the type until a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle == 0 => break,
                Some(_) => {}
                None => return fields,
            }
        }
    }
}

/// Count the fields of a tuple-struct/tuple-variant body. Commas only
/// *separate* fields when another token follows, so a trailing comma
/// (`struct P(u32, u32,)`) does not inflate the count.
fn count_top_level_commas_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle: i32 = 0;
    let mut in_field = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                in_field = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                in_field = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if in_field {
                    count += 1;
                }
                in_field = false;
            }
            _ => in_field = true,
        }
    }
    count + in_field as usize
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let name = loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("serde_derive stub: unexpected token in enum: {other}"),
                None => return variants,
            }
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_commas_fields(g.stream());
                tokens.next();
                if arity == 0 {
                    VariantFields::Unit
                } else {
                    VariantFields::Tuple(arity)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                tokens.next();
                VariantFields::Named(named)
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => return variants,
            }
        }
    }
}
