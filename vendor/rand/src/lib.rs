//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset the workspace uses: a deterministic [`rngs::StdRng`]
//! seeded with [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen` and `gen_range` over integer and float ranges. The generator
//! is splitmix64 — statistically solid for simulation seeding, not
//! cryptographic (neither is the real `StdRng`'s use here).

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is stubbed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty)*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

/// Types `gen_range` can sample uniformly. The single generic
/// `SampleRange<T> for Range<T>` impl below mirrors real rand so that the
/// literal in `gen_range(0..100)` unifies with the surrounding context's
/// integer type instead of defaulting to `i32`.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self, inclusive: bool)
        -> Self;
}

macro_rules! uniform_int {
    ($($t:ty)*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                let span = (end as i128 - start as i128) as u128 + inclusive as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

macro_rules! uniform_float {
    ($($t:ty)*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as SampleStandard>::sample_standard(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

uniform_float!(f32 f64);

/// Ranges that `gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(rng, start, end, true)
    }
}
