//! Offline stand-in for `proptest`.
//!
//! Random (not shrinking) property testing with the same macro surface:
//! `proptest! { #![proptest_config(...)] #[test] fn prop(x in strategy) {..} }`,
//! range/tuple/`any`/`prop::collection::vec` strategies, and
//! `prop_assert!`/`prop_assert_eq!`. Each test runs `cases` deterministic
//! samples seeded from the test name, so failures reproduce; there is no
//! shrinking — the sampled inputs of a failing case are printed unshrunk.



pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured by the stub.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 source for strategy sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_name(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of random values of one type.
    ///
    /// The real proptest `Strategy` produces shrinkable value *trees*; the
    /// stub just samples. `Value` is the associated type the workspace names
    /// in `impl Strategy<Value = …>` return positions.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = (rng.next_u64() as u128 * span) >> 64;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    macro_rules! float_range_strategy {
        ($($t:ty)*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
        )*};
    }

    float_range_strategy!(f32 f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    /// Strategy for "any value of `T`" (`any::<bool>()` etc.).
    pub struct Any<T>(PhantomData<T>);

    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! any_int {
        ($($t:ty)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    any_int!(u8 u16 u32 u64 usize i8 i16 i32 i64 isize);

    impl Strategy for Any<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning several orders of magnitude.
            let mag = rng.unit_f64() * 2e6 - 1e6;
            mag
        }
    }
}

/// The `prop::` module namespace (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec length range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u128;
                let len =
                    self.size.start + (((rng.next_u64() as u128 * span) >> 64) as usize);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Sample any strategy expression once; used by the `proptest!` expansion.
pub fn sample_of<S: strategy::Strategy>(
    strategy: &S,
    rng: &mut test_runner::TestRng,
) -> S::Value {
    strategy.sample(rng)
}

// Re-exported so `prop::collection::vec` composes with range strategies for
// callers that `use proptest::prelude::*`.
pub use strategy::Strategy as _StrategyForDocs;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($config); $($rest)* }
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::seed_from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::sample_of(&($strategy), &mut rng);)*
                // Render the inputs before the body can consume them, so a
                // failing case can report what was sampled (no shrinking).
                let inputs: Vec<String> =
                    vec![$(format!("{} = {:?}", stringify!($arg), &$arg)),*];
                let run = || -> () { $body };
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest stub: case {} of {} failed in {} with inputs:\n  {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        inputs.join("\n  ")
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}
