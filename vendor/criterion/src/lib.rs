//! Offline stand-in for `criterion`.
//!
//! Implements the macro and method surface the bench harnesses use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`) with a simple wall-clock harness:
//! each benchmark runs `sample_size` samples after a warm-up pass and the
//! per-iteration mean, min and max are printed. No statistics beyond that —
//! enough to track the perf trajectory until the real criterion can be
//! vendored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    // Group-scoped like real criterion: overriding it must not leak into
    // benches registered after `finish()`.
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut samples = Vec::with_capacity(sample_size);
    // Warm-up pass (also sizes the iteration count).
    let mut b = Bencher {
        per_iter: Duration::ZERO,
    };
    f(&mut b);
    for _ in 0..sample_size {
        let mut b = Bencher {
            per_iter: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.per_iter);
    }
    report(id, &samples);
}

pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed();
        // Slow benchmark: the probe run itself is the sample — rerunning
        // would double the wall-clock time for no extra information.
        if once >= Duration::from_micros(50) {
            self.per_iter = once;
            return;
        }
        // Fast benchmark: run enough iterations to amortize timer overhead.
        let iters =
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1)).clamp(1, 10_000) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.per_iter = start.elapsed() / iters;
    }
}

fn report(id: &str, samples: &[Duration]) {
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
    println!(
        "{id:<50} time: [{} {} {}]",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
