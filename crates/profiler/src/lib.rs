//! # dismem-profiler
//!
//! The multi-level, memory-centric profiler of the paper (Section 3.1),
//! reimplemented on top of the simulator instead of hardware performance
//! counters. The three levels mirror the paper's top-down methodology:
//!
//! * **Level 1 — general characteristics** ([`level1`]): arithmetic
//!   intensity and throughput per phase (roofline points), memory footprint,
//!   the bandwidth-capacity scaling curve, hardware-prefetching accuracy /
//!   coverage / excess traffic / performance gain, and traffic timelines with
//!   and without prefetching.
//! * **Level 2 — multi-tier memory access** ([`level2`]): remote capacity
//!   ratio, remote access ratio per phase, and the two optimization reference
//!   points (capacity ratio and bandwidth ratio).
//! * **Level 3 — memory interference** ([`level3`]): sensitivity of each
//!   phase and of the whole application to increasing levels of interference
//!   on the pool link.

#![forbid(unsafe_code)]

pub mod level1;
pub mod level2;
pub mod level3;
pub mod runner;

pub use level1::{Level1Report, PhasePoint, PrefetchMetrics, TimelineSeries};
pub use level2::{Level2Report, PhaseTierAccess};
pub use level3::{Level3Report, SensitivityPoint};
pub use runner::{pooled_config, run_workload, run_workload_recorded, RunOptions};
