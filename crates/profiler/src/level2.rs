//! Level 2: multi-tier memory access ratios.
//!
//! Quantifies how an application's memory accesses distribute over the tiers
//! of a two-tier system (Figure 9) and compares them with the two optimization
//! reference points of Section 5.1:
//!
//! * the **capacity ratio** `R_cap` — accesses to a tier should at least
//!   match its share of the capacity (lower bound for tuning), and
//! * the **bandwidth ratio** `R_BW` — accesses beyond a tier's share of the
//!   aggregate bandwidth make that tier the bottleneck (upper bound).

use crate::runner::{pooled_config, run_workload, RunOptions};
use dismem_sim::{MachineConfig, RunReport};
use dismem_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Tier access breakdown of one phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTierAccess {
    /// Label in the paper's convention (`"Hypre-p2"`).
    pub label: String,
    /// Phase name.
    pub phase: String,
    /// Bytes served by the local tier.
    pub bytes_local: u64,
    /// Bytes served by the pool tier.
    pub bytes_remote: u64,
    /// Remote access ratio of this phase.
    pub remote_access_ratio: f64,
    /// Arithmetic intensity of the phase (validation against Level 1).
    pub arithmetic_intensity: f64,
}

/// The complete Level-2 report for one workload on one tier configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Level2Report {
    /// Workload name.
    pub workload: String,
    /// Fraction of the footprint that fits in the local tier (configured).
    pub local_capacity_fraction: f64,
    /// Measured remote capacity ratio `R^remote_cap` (pages on the pool /
    /// total pages).
    pub remote_capacity_ratio: f64,
    /// Remote bandwidth ratio `R^remote_BW` of the machine
    /// (`BW_pool / (BW_local + BW_pool)`).
    pub remote_bandwidth_ratio: f64,
    /// Whole-run remote access ratio.
    pub remote_access_ratio: f64,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseTierAccess>,
    /// Per-object remote access ratios (object name, remote ratio, DRAM
    /// accesses), sorted by access count descending — the information used in
    /// the BFS case study to find the hot object.
    pub object_remote_ratios: Vec<(String, f64, u64)>,
}

impl Level2Report {
    /// Phases whose remote access ratio exceeds the bandwidth reference — the
    /// paper's "priority of optimization" candidates.
    pub fn phases_above_bandwidth_ratio(&self) -> Vec<&PhaseTierAccess> {
        self.phases
            .iter()
            .filter(|p| p.remote_access_ratio > self.remote_bandwidth_ratio)
            .collect()
    }

    /// Phases whose remote access ratio exceeds the capacity reference.
    pub fn phases_above_capacity_ratio(&self) -> Vec<&PhaseTierAccess> {
        self.phases
            .iter()
            .filter(|p| p.remote_access_ratio > self.remote_capacity_ratio)
            .collect()
    }

    /// The hottest object that resides (partly) on the pool — the candidate
    /// for placement optimization.
    pub fn hottest_remote_object(&self) -> Option<&(String, f64, u64)> {
        self.object_remote_ratios
            .iter()
            .find(|(_, remote_ratio, _)| *remote_ratio > 0.5)
    }
}

/// Remote bandwidth ratio of a machine configuration.
pub fn remote_bandwidth_ratio(config: &MachineConfig) -> f64 {
    config.pool.bandwidth_bps / (config.local.bandwidth_bps + config.pool.bandwidth_bps)
}

/// Builds a Level-2 report from an existing run report.
pub fn level2_from_report(
    workload_name: &str,
    local_capacity_fraction: f64,
    report: &RunReport,
) -> Level2Report {
    let line = report.config.cache.line_bytes;
    let phases = report
        .phases
        .iter()
        .enumerate()
        .map(|(i, p)| PhaseTierAccess {
            label: format!("{}-p{}", workload_name, i + 1),
            phase: p.name.clone(),
            bytes_local: p.counters.bytes_local(line),
            bytes_remote: p.counters.bytes_pool(line),
            remote_access_ratio: p.remote_access_ratio(),
            arithmetic_intensity: p.arithmetic_intensity(),
        })
        .collect();

    let mut objects: Vec<(String, f64, u64)> = report
        .allocations
        .iter()
        .filter(|a| a.dram_lines() > 0)
        .map(|a| (a.name.clone(), a.remote_access_ratio(), a.dram_lines()))
        .collect();
    objects.sort_by_key(|o| std::cmp::Reverse(o.2));

    Level2Report {
        workload: workload_name.to_string(),
        local_capacity_fraction,
        remote_capacity_ratio: report.remote_capacity_ratio(),
        remote_bandwidth_ratio: remote_bandwidth_ratio(&report.config),
        remote_access_ratio: report.remote_access_ratio(),
        phases,
        object_remote_ratios: objects,
    }
}

/// Runs the Level-2 profiling protocol: the workload executes on a machine
/// whose local tier holds `local_fraction` of the expected footprint, the
/// rest spilling to the pool.
pub fn level2_profile(
    workload: &dyn Workload,
    base_config: &MachineConfig,
    local_fraction: f64,
) -> Level2Report {
    let config = pooled_config(base_config, workload, local_fraction);
    let report = run_workload(workload, &RunOptions::new(config));
    level2_from_report(workload.name(), local_fraction, &report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_workloads::WorkloadKind;

    #[test]
    fn remote_access_grows_as_local_capacity_shrinks() {
        let w = WorkloadKind::Hypre.instantiate_tiny();
        let base = MachineConfig::test_config();
        let r75 = level2_profile(w.as_ref(), &base, 0.75);
        let r25 = level2_profile(w.as_ref(), &base, 0.25);
        assert!(
            r25.remote_access_ratio > r75.remote_access_ratio,
            "25% local ({}) should see more remote access than 75% local ({})",
            r25.remote_access_ratio,
            r75.remote_access_ratio
        );
        assert!(r25.remote_capacity_ratio > r75.remote_capacity_ratio);
    }

    #[test]
    fn bandwidth_ratio_matches_testbed() {
        let r = remote_bandwidth_ratio(&MachineConfig::skylake_testbed());
        assert!((r - 34.0 / 107.0).abs() < 1e-9);
    }

    #[test]
    fn phases_and_objects_are_reported() {
        let w = WorkloadKind::Bfs.instantiate_tiny();
        let report = level2_profile(w.as_ref(), &MachineConfig::test_config(), 0.25);
        assert!(report.phases.len() >= 2);
        assert!(!report.object_remote_ratios.is_empty());
        // Objects are sorted by access count.
        for win in report.object_remote_ratios.windows(2) {
            assert!(win[0].2 >= win[1].2);
        }
        assert!(report.phases[0].label.contains("-p1"));
    }

    #[test]
    fn reference_point_helpers() {
        let w = WorkloadKind::Hypre.instantiate_tiny();
        let report = level2_profile(w.as_ref(), &MachineConfig::test_config(), 0.25);
        // With only 25% of the footprint local, at least one phase should sit
        // above the bandwidth reference ratio (34/107 ≈ 0.32).
        assert!(!report.phases_above_bandwidth_ratio().is_empty());
        let above_cap = report.phases_above_capacity_ratio();
        for p in above_cap {
            assert!(p.remote_access_ratio > report.remote_capacity_ratio);
        }
    }

    #[test]
    fn arithmetic_intensity_consistent_with_level1() {
        // The paper uses this as a validation of the profiler: AI measured on
        // the two-tier system should match the single-tier measurement.
        let w = WorkloadKind::Hpl.instantiate_tiny();
        let base = MachineConfig::test_config();
        let l1 = crate::level1::level1_profile(w.as_ref(), &base);
        let l2 = level2_profile(w.as_ref(), &base, 0.5);
        let ai1 = l1.phases[1].arithmetic_intensity;
        let ai2 = l2.phases[1].arithmetic_intensity;
        let ratio = ai1 / ai2;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "AI should be preserved across tier configs: {ai1} vs {ai2}"
        );
    }
}
