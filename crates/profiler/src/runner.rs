//! Helpers for running workloads on configured machines.

use dismem_sim::{InterferenceProfile, Machine, MachineConfig, RunReport};
use dismem_trace::Recorder;
use dismem_workloads::Workload;

/// Options for a single profiling run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Machine configuration (tier capacities, cache, prefetcher, ...).
    pub config: MachineConfig,
    /// Background interference on the pool link.
    pub interference: InterferenceProfile,
    /// Whether the hardware prefetcher is enabled (overrides the config).
    pub prefetch: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            config: MachineConfig::skylake_testbed(),
            interference: InterferenceProfile::Idle,
            prefetch: true,
        }
    }
}

impl RunOptions {
    /// Run options for a given machine configuration with an idle pool.
    pub fn new(config: MachineConfig) -> Self {
        Self {
            config,
            ..Default::default()
        }
    }

    /// Sets the interference profile.
    pub fn with_interference(mut self, interference: InterferenceProfile) -> Self {
        self.interference = interference;
        self
    }

    /// Enables or disables the hardware prefetcher.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }
}

/// Runs a workload on a freshly created machine and returns the report.
pub fn run_workload(workload: &dyn Workload, options: &RunOptions) -> RunReport {
    let mut config = options.config.clone();
    config.prefetch.enabled = options.prefetch;
    let mut machine = Machine::new(config);
    machine.set_interference(options.interference.clone());
    workload.run(&mut machine);
    machine.finish()
}

/// [`run_workload`] with a flight recorder attached: the machine emits trace
/// events (epoch closes, migrations, replay transitions, spills) into the
/// recorder and hands it back alongside the report. Recording is read-only —
/// the report is bit-identical to [`run_workload`]'s for the same inputs.
pub fn run_workload_recorded(
    workload: &dyn Workload,
    options: &RunOptions,
    recorder: Box<dyn Recorder>,
) -> (RunReport, Box<dyn Recorder>) {
    let mut config = options.config.clone();
    config.prefetch.enabled = options.prefetch;
    let mut machine = Machine::new(config);
    machine.set_interference(options.interference.clone());
    machine.set_recorder(recorder);
    workload.run(&mut machine);
    let report = machine.finish();
    let recorder = machine
        .take_recorder()
        .expect("recorder installed above survives the run");
    (report, recorder)
}

/// Derives a pooling configuration from a base configuration and a workload:
/// the local tier is capped at `local_fraction` of the workload's expected
/// footprint, the rest of the footprint spills to the pool. This mirrors the
/// paper's `setup_waste` step, which reserves node-local memory so that only
/// 75 / 50 / 25 % of the application's peak usage fits locally.
pub fn pooled_config(
    base: &MachineConfig,
    workload: &dyn Workload,
    local_fraction: f64,
) -> MachineConfig {
    base.clone()
        .with_pooling(workload.expected_footprint_bytes(), local_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_workloads::WorkloadKind;

    fn test_base() -> MachineConfig {
        MachineConfig::test_config()
    }

    #[test]
    fn run_workload_produces_phases() {
        let w = WorkloadKind::Hypre.instantiate_tiny();
        let report = run_workload(w.as_ref(), &RunOptions::new(test_base()));
        assert!(report.phases.len() >= 2);
        assert!(report.total_runtime_s > 0.0);
        assert_eq!(report.remote_access_ratio(), 0.0, "unbounded local tier");
    }

    #[test]
    fn pooled_config_caps_local_tier() {
        let w = WorkloadKind::Hypre.instantiate_tiny();
        let cfg = pooled_config(&test_base(), w.as_ref(), 0.5);
        let cap = cfg.local.capacity_bytes.unwrap();
        let footprint = w.expected_footprint_bytes();
        assert!(cap < footprint);
        assert!(cap as f64 > 0.4 * footprint as f64);

        let report = run_workload(w.as_ref(), &RunOptions::new(cfg));
        assert!(report.remote_access_ratio() > 0.0);
        assert!(report.remote_capacity_ratio() > 0.2);
    }

    #[test]
    fn prefetch_option_is_respected() {
        let w = WorkloadKind::Hpl.instantiate_tiny();
        let with_pf = run_workload(w.as_ref(), &RunOptions::new(test_base()));
        let without_pf = run_workload(
            w.as_ref(),
            &RunOptions::new(test_base()).with_prefetch(false),
        );
        assert!(with_pf.total.pf_issued > 0);
        assert_eq!(without_pf.total.pf_issued, 0);
    }

    #[test]
    fn recorded_run_matches_unrecorded_and_returns_events() {
        use dismem_trace::FlightRecorder;
        let w = WorkloadKind::Hypre.instantiate_tiny();
        let cfg = pooled_config(&test_base(), w.as_ref(), 0.5);
        let options = RunOptions::new(cfg);
        let plain = run_workload(w.as_ref(), &options);
        let (recorded, recorder) =
            run_workload_recorded(w.as_ref(), &options, Box::new(FlightRecorder::new()));
        assert_eq!(recorded, plain, "recording must not perturb the report");
        let recorder = recorder
            .into_any()
            .downcast::<FlightRecorder>()
            .expect("flight recorder comes back");
        // A pooled run spills pages, so the trace cannot be empty.
        assert!(recorder.metrics().counter("sim.spilled_pages_total") > 0);
    }

    #[test]
    fn interference_option_slows_down_pooled_run() {
        let w = WorkloadKind::Hypre.instantiate_tiny();
        let cfg = pooled_config(&test_base(), w.as_ref(), 0.25);
        let idle = run_workload(w.as_ref(), &RunOptions::new(cfg.clone()));
        let busy = run_workload(
            w.as_ref(),
            &RunOptions::new(cfg).with_interference(InterferenceProfile::Constant(0.5)),
        );
        assert!(busy.total_runtime_s > idle.total_runtime_s);
    }
}
