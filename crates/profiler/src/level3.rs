//! Level 3: sensitivity to memory interference on the pool link.
//!
//! Reproduces the protocol of Section 6.1: the workload runs on a pooled
//! two-tier configuration while a background interferer (LBench in the paper)
//! keeps the pool link busy at increasing levels of intensity
//! (LoI = 0, 10, ..., 50 % of the peak raw link traffic); the relative
//! performance with respect to the idle-pool run is the sensitivity.
//!
//! Because cache behaviour and page placement do not depend on what other
//! nodes do to the link, the sweep re-times a single simulated run under each
//! LoI instead of re-simulating it (see [`dismem_sim::RunReport::retime`]).

use crate::runner::{pooled_config, run_workload, RunOptions};
use dismem_sim::{InterferenceProfile, MachineConfig, RunReport};
use dismem_workloads::Workload;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Relative performance at one level of interference.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Level of interference in percent of the peak raw link traffic.
    pub loi_percent: f64,
    /// Runtime relative to the idle-pool baseline (1.0 = unaffected).
    pub relative_performance: f64,
    /// Absolute runtime at this level of interference.
    pub runtime_s: f64,
}

/// The complete Level-3 report for one workload on one tier configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Level3Report {
    /// Workload name.
    pub workload: String,
    /// Fraction of the footprint that fits in the local tier.
    pub local_capacity_fraction: f64,
    /// Whole-application sensitivity points, one per LoI level.
    pub sensitivity: Vec<SensitivityPoint>,
    /// Sensitivity of the dominant compute phase (the paper plots `*-p2`).
    pub compute_phase_sensitivity: Vec<SensitivityPoint>,
    /// Remote access ratio of the underlying run (context for interpreting
    /// the sensitivity, per the paper's discussion).
    pub remote_access_ratio: f64,
    /// Whole-run arithmetic intensity.
    pub arithmetic_intensity: f64,
}

impl Level3Report {
    /// Relative performance at the highest measured LoI.
    pub fn worst_case_performance(&self) -> f64 {
        self.sensitivity
            .iter()
            .map(|p| p.relative_performance)
            .fold(1.0, f64::min)
    }

    /// Maximum slowdown in percent at the highest measured LoI.
    pub fn max_slowdown_percent(&self) -> f64 {
        (1.0 - self.worst_case_performance()) * 100.0
    }
}

/// The LoI levels used throughout the paper's Figures 10–13.
pub const PAPER_LOI_LEVELS: [f64; 6] = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0];

/// Builds a Level-3 report from an existing pooled run report by re-timing it
/// under each requested level of interference.
pub fn level3_from_report(
    workload_name: &str,
    local_capacity_fraction: f64,
    report: &RunReport,
    loi_percent_levels: &[f64],
) -> Level3Report {
    let idle = report.retime(&InterferenceProfile::Idle);
    // Dominant compute phase: the phase (after the first) with the longest
    // runtime; fall back to the longest overall.
    let compute_phase = report
        .phases
        .iter()
        .enumerate()
        .skip(1)
        .max_by(|a, b| a.1.runtime_s.partial_cmp(&b.1.runtime_s).unwrap())
        .map(|(i, _)| i)
        .unwrap_or(0);

    let points: Vec<(SensitivityPoint, SensitivityPoint)> = loi_percent_levels
        .par_iter()
        .map(|&loi| {
            let profile = InterferenceProfile::constant_percent(loi);
            let retimed = report.retime(&profile);
            let total = SensitivityPoint {
                loi_percent: loi,
                relative_performance: if retimed.total_runtime_s > 0.0 {
                    idle.total_runtime_s / retimed.total_runtime_s
                } else {
                    1.0
                },
                runtime_s: retimed.total_runtime_s,
            };
            let phase = SensitivityPoint {
                loi_percent: loi,
                relative_performance: if retimed.phase_runtimes_s[compute_phase] > 0.0 {
                    idle.phase_runtimes_s[compute_phase] / retimed.phase_runtimes_s[compute_phase]
                } else {
                    1.0
                },
                runtime_s: retimed.phase_runtimes_s[compute_phase],
            };
            (total, phase)
        })
        .collect();

    let (sensitivity, compute_phase_sensitivity) = points.into_iter().unzip();
    let line = report.config.cache.line_bytes;
    Level3Report {
        workload: workload_name.to_string(),
        local_capacity_fraction,
        sensitivity,
        compute_phase_sensitivity,
        remote_access_ratio: report.remote_access_ratio(),
        arithmetic_intensity: report.total.arithmetic_intensity(line),
    }
}

/// Runs the Level-3 protocol: simulate once on the pooled configuration, then
/// re-time under every LoI level.
pub fn level3_profile(
    workload: &dyn Workload,
    base_config: &MachineConfig,
    local_fraction: f64,
    loi_percent_levels: &[f64],
) -> Level3Report {
    let config = pooled_config(base_config, workload, local_fraction);
    let report = run_workload(workload, &RunOptions::new(config));
    level3_from_report(workload.name(), local_fraction, &report, loi_percent_levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_workloads::WorkloadKind;

    fn profile(kind: WorkloadKind, local_fraction: f64) -> Level3Report {
        let w = kind.instantiate_tiny();
        level3_profile(
            w.as_ref(),
            &MachineConfig::test_config(),
            local_fraction,
            &PAPER_LOI_LEVELS,
        )
    }

    #[test]
    fn sensitivity_is_monotone_in_interference() {
        let r = profile(WorkloadKind::Hypre, 0.5);
        assert_eq!(r.sensitivity.len(), PAPER_LOI_LEVELS.len());
        assert!((r.sensitivity[0].relative_performance - 1.0).abs() < 1e-9);
        for w in r.sensitivity.windows(2) {
            assert!(
                w[1].relative_performance <= w[0].relative_performance + 1e-9,
                "performance must not improve with more interference"
            );
        }
        assert!(r.worst_case_performance() <= 1.0);
    }

    #[test]
    fn memory_bound_app_is_more_sensitive_than_compute_bound() {
        let hypre = profile(WorkloadKind::Hypre, 0.25);
        let hpl = profile(WorkloadKind::Hpl, 0.25);
        assert!(
            hypre.max_slowdown_percent() > hpl.max_slowdown_percent(),
            "Hypre ({}) should be more sensitive than HPL ({})",
            hypre.max_slowdown_percent(),
            hpl.max_slowdown_percent()
        );
    }

    #[test]
    fn all_local_run_is_insensitive() {
        // When the whole footprint fits locally there is no pool traffic and
        // interference cannot hurt.
        let r = profile(WorkloadKind::Hpl, 1.0);
        assert!(
            r.max_slowdown_percent() < 1.0,
            "slowdown {}",
            r.max_slowdown_percent()
        );
        assert!(r.remote_access_ratio < 0.05);
    }

    #[test]
    fn report_contains_context_metrics() {
        let r = profile(WorkloadKind::Bfs, 0.25);
        assert!(r.remote_access_ratio > 0.0);
        assert!(r.arithmetic_intensity >= 0.0);
        assert_eq!(r.compute_phase_sensitivity.len(), r.sensitivity.len());
    }
}
