//! Level 1: general (system-independent) memory characteristics.
//!
//! Answers the questions of Section 4 of the paper: where does the
//! application sit on the roofline, how is its memory traffic distributed
//! over its footprint (the bandwidth-capacity scaling curve of Figure 6), and
//! how suitable is hardware prefetching (accuracy, coverage, excess traffic
//! and performance gain — Figures 7 and 8).

use crate::runner::{run_workload, RunOptions};
use dismem_sim::{MachineConfig, RunReport};
use dismem_trace::histogram::ScalingPoint;
use dismem_workloads::Workload;
use serde::{Deserialize, Serialize};

/// Roofline point of one phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhasePoint {
    /// Label in the paper's convention (`"HPL-p2"`).
    pub label: String,
    /// Phase name as reported by the workload.
    pub phase: String,
    /// Arithmetic intensity in flops per DRAM byte.
    pub arithmetic_intensity: f64,
    /// Achieved throughput in Gflop/s.
    pub gflops: f64,
    /// Achieved DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Phase runtime in seconds.
    pub runtime_s: f64,
}

/// Prefetch suitability metrics (Figure 8).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PrefetchMetrics {
    /// Fraction of prefetched lines that were used (Equation 1).
    pub accuracy: f64,
    /// Fraction of L2 fills that were prefetched (Equation 2).
    pub coverage: f64,
    /// Extra DRAM traffic caused by prefetching, relative to the
    /// prefetch-disabled run (the paper's "excessive prefetch traffic").
    pub excess_traffic: f64,
    /// Speedup obtained from prefetching: `t_off / t_on - 1`.
    pub performance_gain: f64,
}

/// Traffic-over-time series for Figure 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineSeries {
    /// Bucket duration in seconds.
    pub bucket_s: f64,
    /// L2 cache lines fetched per bucket with prefetching enabled.
    pub with_prefetch: Vec<u64>,
    /// L2 cache lines fetched per bucket with prefetching disabled.
    pub without_prefetch: Vec<u64>,
}

/// The complete Level-1 report for one workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Level1Report {
    /// Workload name.
    pub workload: String,
    /// Input description.
    pub input: String,
    /// Peak memory footprint in bytes.
    pub footprint_bytes: u64,
    /// Roofline points, one per phase.
    pub phases: Vec<PhasePoint>,
    /// Whole-run arithmetic intensity.
    pub arithmetic_intensity: f64,
    /// Whole-run achieved DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Bandwidth-capacity scaling curve (cumulative access share vs
    /// footprint share).
    pub scaling_curve: Vec<ScalingPoint>,
    /// Prefetch suitability metrics.
    pub prefetch: PrefetchMetrics,
    /// Traffic timelines with and without prefetching.
    pub timeline: TimelineSeries,
}

impl Level1Report {
    /// Fraction of the footprint that receives `share` (0–1) of all accesses —
    /// a skewness summary of the scaling curve.
    pub fn footprint_for_access_share(&self, share: f64) -> f64 {
        for p in &self.scaling_curve {
            if p.access_fraction >= share {
                return p.footprint_fraction;
            }
        }
        1.0
    }
}

/// Number of buckets used for the traffic timelines.
const TIMELINE_BUCKETS: usize = 60;

fn timeline_buckets(report: &RunReport, buckets: usize, bucket_s: f64) -> Vec<u64> {
    let mut out = vec![0u64; buckets];
    if bucket_s <= 0.0 {
        return out;
    }
    for sample in &report.timeline {
        let idx = ((sample.start_s / bucket_s) as usize).min(buckets - 1);
        out[idx] += sample.counters.l2_lines_in;
    }
    out
}

/// Runs the Level-1 profiling protocol: one run with prefetching enabled and
/// one with it disabled, both with an unbounded local tier (matching the
/// paper's Level-1 setup, which uses only node-local memory).
pub fn level1_profile(workload: &dyn Workload, base_config: &MachineConfig) -> Level1Report {
    let mut config = base_config.clone();
    config.local.capacity_bytes = None;
    config.pool.capacity_bytes = None;

    let with_pf = run_workload(
        workload,
        &RunOptions::new(config.clone()).with_prefetch(true),
    );
    let without_pf = run_workload(workload, &RunOptions::new(config).with_prefetch(false));

    let line = with_pf.config.cache.line_bytes;
    let phases = with_pf
        .phases
        .iter()
        .enumerate()
        .map(|(i, p)| PhasePoint {
            label: format!("{}-p{}", workload.name(), i + 1),
            phase: p.name.clone(),
            arithmetic_intensity: p.arithmetic_intensity(),
            gflops: p.gflops(),
            bandwidth_gbs: p.dram_bandwidth_gbs(),
            runtime_s: p.runtime_s,
        })
        .collect();

    let traffic_on = with_pf.total.bytes_dram(line) as f64;
    let traffic_off = without_pf.total.bytes_dram(line) as f64;
    let excess_traffic = if traffic_off > 0.0 {
        (traffic_on - traffic_off) / traffic_off
    } else {
        0.0
    };
    let performance_gain = if with_pf.total_runtime_s > 0.0 {
        without_pf.total_runtime_s / with_pf.total_runtime_s - 1.0
    } else {
        0.0
    };
    let prefetch = PrefetchMetrics {
        accuracy: with_pf.total.prefetch_accuracy(),
        coverage: with_pf.total.prefetch_coverage(),
        excess_traffic,
        performance_gain,
    };

    let total_pages = with_pf
        .peak_footprint_bytes
        .div_ceil(dismem_trace::PAGE_SIZE);
    let scaling_curve = with_pf.page_histogram.scaling_curve(total_pages, 100);

    let longest = with_pf.total_runtime_s.max(without_pf.total_runtime_s);
    let bucket_s = longest / TIMELINE_BUCKETS as f64;
    let timeline = TimelineSeries {
        bucket_s,
        with_prefetch: timeline_buckets(&with_pf, TIMELINE_BUCKETS, bucket_s),
        without_prefetch: timeline_buckets(&without_pf, TIMELINE_BUCKETS, bucket_s),
    };

    Level1Report {
        workload: workload.name().to_string(),
        input: workload.input_description(),
        footprint_bytes: with_pf.peak_footprint_bytes,
        phases,
        arithmetic_intensity: with_pf.total.arithmetic_intensity(line),
        bandwidth_gbs: if with_pf.total_runtime_s > 0.0 {
            with_pf.total.bytes_dram(line) as f64 / with_pf.total_runtime_s / 1e9
        } else {
            0.0
        },
        scaling_curve,
        prefetch,
        timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_workloads::WorkloadKind;

    fn profile(kind: WorkloadKind) -> Level1Report {
        let w = kind.instantiate_tiny();
        level1_profile(w.as_ref(), &MachineConfig::test_config())
    }

    #[test]
    fn hpl_has_higher_intensity_than_hypre() {
        let hpl = profile(WorkloadKind::Hpl);
        let hypre = profile(WorkloadKind::Hypre);
        // Compare the compute phases (p2) — the paper's Figure 5 ordering.
        let hpl_p2 = &hpl.phases[1];
        let hypre_p2 = &hypre.phases[1];
        assert!(
            hpl_p2.arithmetic_intensity > hypre_p2.arithmetic_intensity,
            "HPL {} vs Hypre {}",
            hpl_p2.arithmetic_intensity,
            hypre_p2.arithmetic_intensity
        );
    }

    #[test]
    fn streaming_workload_has_good_prefetch_metrics() {
        let hypre = profile(WorkloadKind::Hypre);
        assert!(
            hypre.prefetch.accuracy > 0.6,
            "accuracy {}",
            hypre.prefetch.accuracy
        );
        assert!(
            hypre.prefetch.coverage > 0.4,
            "coverage {}",
            hypre.prefetch.coverage
        );
        assert!(hypre.prefetch.performance_gain >= 0.0);
    }

    #[test]
    fn random_lookup_workload_has_poor_prefetch_coverage() {
        let xs = profile(WorkloadKind::XsBench);
        let hypre = profile(WorkloadKind::Hypre);
        assert!(
            xs.prefetch.coverage < hypre.prefetch.coverage,
            "XSBench coverage {} should be below Hypre {}",
            xs.prefetch.coverage,
            hypre.prefetch.coverage
        );
    }

    #[test]
    fn scaling_curve_is_monotonic_and_complete() {
        let bfs = profile(WorkloadKind::Bfs);
        let curve = &bfs.scaling_curve;
        assert!(curve.len() > 10);
        for w in curve.windows(2) {
            assert!(w[1].access_fraction >= w[0].access_fraction - 1e-12);
        }
        assert!((curve.last().unwrap().access_fraction - 1.0).abs() < 1e-9);
        // Labels follow the paper's convention.
        assert!(bfs.phases[0].label.starts_with("BFS-p1"));
    }

    #[test]
    fn timeline_has_traffic_in_some_buckets() {
        let hpl = profile(WorkloadKind::Hpl);
        let on: u64 = hpl.timeline.with_prefetch.iter().sum();
        let off: u64 = hpl.timeline.without_prefetch.iter().sum();
        assert!(on > 0 && off > 0);
        assert!(hpl.timeline.bucket_s > 0.0);
    }

    #[test]
    fn footprint_share_helper_is_sane() {
        let xs = profile(WorkloadKind::XsBench);
        let f = xs.footprint_for_access_share(0.9);
        assert!(f > 0.0 && f <= 1.0);
    }
}
