//! Analytic link-contention model behind LBench's calibration and validation
//! (Figure 11).
//!
//! The model captures three facts the paper establishes experimentally:
//!
//! 1. The traffic LBench injects is proportional to the configured intensity
//!    (left panel): each generator thread offers
//!    `raw bytes per element / max(memory time, FMA-chain time)` of raw link
//!    traffic, so measured LoI is linear in the configured level.
//! 2. Raw-counter measurements ("PCM") saturate at the link bandwidth, so
//!    they cannot distinguish a merely saturated link from a heavily
//!    contended one (middle panel).
//! 3. The interference coefficient — the relative runtime of a one-thread,
//!    one-flop LBench probe — keeps growing with the *offered* load beyond
//!    saturation, because queueing keeps getting worse (middle panel).

use dismem_sim::MachineConfig;
use serde::{Deserialize, Serialize};

/// One point of the calibration curve (configured intensity → measured LoI).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CalibrationPoint {
    /// Intensity the user asked for, in percent of peak raw link traffic.
    pub configured_percent: f64,
    /// Flops per element that realise this intensity.
    pub flops_per_element: u64,
    /// Number of generator threads.
    pub threads: u32,
    /// Level of interference the model predicts will actually be measured.
    pub measured_loi_percent: f64,
}

/// The analytic LBench model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LBenchModel {
    /// Raw link bandwidth in bytes/s (85 GB/s on the paper's testbed).
    pub raw_link_bandwidth_bps: f64,
    /// Protocol overhead: raw bytes per payload byte.
    pub protocol_overhead: f64,
    /// Payload bandwidth one generator thread can sustain against the pool.
    pub per_thread_data_bandwidth_bps: f64,
    /// Serial latency of one flop of the dependent FMA chain, in seconds.
    pub fma_chain_s_per_flop: f64,
    /// Payload bytes moved per array element (8 B read + 8 B write back).
    pub bytes_per_element: f64,
}

impl LBenchModel {
    /// Builds the model from a machine configuration.
    ///
    /// The per-thread bandwidth is chosen so that, as on the paper's testbed,
    /// one thread at one flop per element drives about a quarter of the peak
    /// raw link traffic and two threads drive about half ("we configure
    /// LBench to run with two threads as it provides up to 50% intensity").
    pub fn from_config(config: &MachineConfig) -> Self {
        let overhead = config.link.protocol_overhead();
        Self {
            raw_link_bandwidth_bps: config.link.raw_bandwidth_bps,
            protocol_overhead: overhead,
            per_thread_data_bandwidth_bps: config.link.raw_bandwidth_bps / overhead / 4.0,
            fma_chain_s_per_flop: 0.8e-9,
            bytes_per_element: 16.0,
        }
    }

    /// Time one thread spends on one array element at `flops_per_element`.
    fn seconds_per_element(&self, flops_per_element: u64) -> f64 {
        let mem = self.bytes_per_element / self.per_thread_data_bandwidth_bps;
        let fma = flops_per_element as f64 * self.fma_chain_s_per_flop;
        mem.max(fma)
    }

    /// Raw link traffic (bytes/s) that `threads` generator threads *offer*
    /// at the given flops-per-element setting (not capped by the link).
    pub fn offered_raw_rate(&self, flops_per_element: u64, threads: u32) -> f64 {
        let per_thread = self.bytes_per_element * self.protocol_overhead
            / self.seconds_per_element(flops_per_element);
        per_thread * threads as f64
    }

    /// Level of interference (fraction of peak raw traffic) actually placed
    /// on the link — capped at 1.0 once the link saturates.
    pub fn measured_loi(&self, flops_per_element: u64, threads: u32) -> f64 {
        (self.offered_raw_rate(flops_per_element, threads) / self.raw_link_bandwidth_bps).min(1.0)
    }

    /// Raw-counter ("PCM") traffic measurement in bytes/s: the offered load
    /// capped at the link bandwidth — this is what saturates and loses
    /// information.
    pub fn pcm_traffic(&self, flops_per_element: u64, threads: u32) -> f64 {
        self.offered_raw_rate(flops_per_element, threads)
            .min(self.raw_link_bandwidth_bps)
    }

    /// Interference coefficient measured by a one-thread, one-flop LBench
    /// probe co-running with a background load that offers
    /// `background_raw_rate` bytes/s of raw traffic:
    /// `IC = T / T_idle = max(1, (probe + background) / capacity)`.
    ///
    /// Unlike [`LBenchModel::pcm_traffic`] this keeps increasing beyond
    /// saturation, which is the property the paper exploits.
    pub fn interference_coefficient(&self, background_raw_rate: f64) -> f64 {
        let probe = self.offered_raw_rate(1, 1);
        ((probe + background_raw_rate) / self.raw_link_bandwidth_bps).max(1.0)
    }

    /// Interference coefficient when the background is LBench itself at a
    /// given intensity (the middle panel of Figure 11 sweeps this).
    pub fn interference_coefficient_vs_lbench(
        &self,
        background_flops_per_element: u64,
        background_threads: u32,
    ) -> f64 {
        self.interference_coefficient(
            self.offered_raw_rate(background_flops_per_element, background_threads),
        )
    }

    /// Finds the flops-per-element value whose measured LoI is closest to
    /// `target_percent` for the given thread count (the calibration step the
    /// paper performs with level-3 profiling).
    pub fn calibrate(&self, target_percent: f64, threads: u32) -> CalibrationPoint {
        let target = target_percent / 100.0;
        let mut best = (1u64, f64::MAX);
        for nflop in 1..=2048u64 {
            let loi = self.measured_loi(nflop, threads);
            let err = (loi - target).abs();
            if err < best.1 {
                best = (nflop, err);
            }
        }
        CalibrationPoint {
            configured_percent: target_percent,
            flops_per_element: best.0,
            threads,
            measured_loi_percent: self.measured_loi(best.0, threads) * 100.0,
        }
    }

    /// Calibration sweep over a list of target intensities.
    pub fn calibration_sweep(
        &self,
        targets_percent: &[f64],
        threads: u32,
    ) -> Vec<CalibrationPoint> {
        targets_percent
            .iter()
            .map(|&t| self.calibrate(t, threads))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LBenchModel {
        LBenchModel::from_config(&MachineConfig::skylake_testbed())
    }

    #[test]
    fn two_threads_reach_about_half_the_link() {
        let m = model();
        let loi = m.measured_loi(1, 2);
        assert!(
            (0.4..=0.6).contains(&loi),
            "2 threads at 1 flop/element should give ~50% LoI, got {loi}"
        );
        let one = m.measured_loi(1, 1);
        assert!((0.2..=0.3).contains(&one));
    }

    #[test]
    fn loi_decreases_with_flops_per_element() {
        let m = model();
        let mut prev = f64::MAX;
        for nflop in [1u64, 4, 16, 64, 256] {
            let loi = m.measured_loi(nflop, 2);
            assert!(loi <= prev + 1e-12);
            prev = loi;
        }
        assert!(m.measured_loi(256, 2) < 0.1);
    }

    #[test]
    fn pcm_saturates_but_ic_does_not() {
        let m = model();
        // Heavy background: 12 threads, low flops per element.
        let pcm_1 = m.pcm_traffic(1, 12);
        let pcm_4 = m.pcm_traffic(4, 12);
        assert!((pcm_1 - m.raw_link_bandwidth_bps).abs() < 1.0);
        assert!((pcm_4 - m.raw_link_bandwidth_bps).abs() < 1.0);
        // The raw counters cannot tell these apart, but the IC can.
        let ic_1 = m.interference_coefficient_vs_lbench(1, 12);
        let ic_4 = m.interference_coefficient_vs_lbench(4, 12);
        assert!(ic_1 > ic_4, "IC must resolve contention beyond saturation");
        assert!(ic_1 > 2.0 && ic_1 < 5.0, "IC at peak contention: {ic_1}");
    }

    #[test]
    fn ic_is_one_on_an_idle_system() {
        let m = model();
        assert!((m.interference_coefficient(0.0) - 1.0).abs() < 0.3);
        // Very light background keeps IC near 1.
        assert!(m.interference_coefficient_vs_lbench(2048, 1) < 1.2);
    }

    #[test]
    fn calibration_hits_requested_levels() {
        let m = model();
        for target in [10.0, 20.0, 30.0, 40.0, 50.0] {
            let p = m.calibrate(target, 2);
            assert!(
                (p.measured_loi_percent - target).abs() < 6.0,
                "calibrated {target}% -> {}%",
                p.measured_loi_percent
            );
            assert!(p.flops_per_element >= 1);
        }
        let sweep = m.calibration_sweep(&[10.0, 30.0, 50.0], 2);
        assert_eq!(sweep.len(), 3);
        // Higher target intensity needs fewer flops per element.
        assert!(sweep[0].flops_per_element >= sweep[2].flops_per_element);
    }

    #[test]
    fn calibration_is_roughly_linear() {
        // The paper's validation: measured LoI is linearly proportional to the
        // configured intensity.
        let m = model();
        let sweep = m.calibration_sweep(&[10.0, 20.0, 30.0, 40.0, 50.0], 2);
        for p in &sweep {
            let ratio = p.measured_loi_percent / p.configured_percent;
            assert!(
                (0.8..=1.2).contains(&ratio),
                "configured {} measured {}",
                p.configured_percent,
                p.measured_loi_percent
            );
        }
    }
}
