//! Interference coefficient of an application (Section 6.2).
//!
//! The paper measures how much interference an application *causes* by
//! co-running it with a one-thread, one-flop LBench probe and reporting the
//! probe's relative runtime (`IC = T / T_idle`). In the simulator the
//! application's raw link traffic rate is known directly from its run report,
//! so the probe slowdown follows from the same contention model used for
//! LBench-on-LBench measurements.

use crate::model::LBenchModel;
use dismem_sim::RunReport;
use serde::{Deserialize, Serialize};

/// Interference coefficient of one application phase or run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InterferenceCoefficient {
    /// Label ("Hypre", "Hypre-p2", ...).
    pub label: String,
    /// Raw link traffic rate the application sustains, in GB/s.
    pub link_traffic_gbs: f64,
    /// The coefficient: relative runtime of the co-running probe.
    pub coefficient: f64,
}

/// Computes the interference coefficient of a whole application run and of
/// each of its phases, from a report obtained on a pooled configuration.
pub fn app_interference_coefficient(
    report: &RunReport,
    model: &LBenchModel,
    label: &str,
) -> (InterferenceCoefficient, Vec<InterferenceCoefficient>) {
    let whole = InterferenceCoefficient {
        label: label.to_string(),
        link_traffic_gbs: report.link_traffic_gbs(),
        coefficient: model.interference_coefficient(report.link_traffic_gbs() * 1e9),
    };
    let phases = report
        .phases
        .iter()
        .enumerate()
        .map(|(i, p)| InterferenceCoefficient {
            label: format!("{label}-p{}", i + 1),
            link_traffic_gbs: p.link_traffic_gbs(),
            coefficient: model.interference_coefficient(p.link_traffic_gbs() * 1e9),
        })
        .collect();
    (whole, phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_sim::{Machine, MachineConfig};
    use dismem_workloads::WorkloadKind;

    fn pooled_report(kind: WorkloadKind, local_fraction: f64) -> RunReport {
        let w = kind.instantiate_tiny();
        let config =
            MachineConfig::test_config().with_pooling(w.expected_footprint_bytes(), local_fraction);
        let mut machine = Machine::new(config);
        w.run(&mut machine);
        machine.finish()
    }

    #[test]
    fn pool_heavy_app_causes_more_interference_than_local_app() {
        let model = LBenchModel::from_config(&MachineConfig::test_config());
        let pooled = pooled_report(WorkloadKind::Hypre, 0.25);
        let local = pooled_report(WorkloadKind::Hypre, 1.0);
        let (ic_pooled, _) = app_interference_coefficient(&pooled, &model, "Hypre");
        let (ic_local, _) = app_interference_coefficient(&local, &model, "Hypre");
        assert!(ic_pooled.coefficient >= ic_local.coefficient);
        assert!(ic_local.coefficient >= 1.0);
        assert!(ic_pooled.link_traffic_gbs > ic_local.link_traffic_gbs);
    }

    #[test]
    fn per_phase_coefficients_are_labelled() {
        let model = LBenchModel::from_config(&MachineConfig::test_config());
        let report = pooled_report(WorkloadKind::Hpl, 0.5);
        let (_, phases) = app_interference_coefficient(&report, &model, "HPL");
        assert_eq!(phases.len(), report.phases.len());
        assert_eq!(phases[0].label, "HPL-p1");
        assert!(phases.iter().all(|p| p.coefficient >= 1.0));
    }
}
