//! The LBench kernel as a runnable workload.
//!
//! The paper's benchmark allocates an array on the memory pool and runs a
//! dependent multiply-add chain over it:
//!
//! ```c
//! if (NFLOP % 2 == 1) beta = A[i] + alpha;
//! const int NLOOP = NFLOP / 2;
//! #pragma GCC unroll 16
//! for (int k = 0; k < NLOOP; k++)
//!     beta = beta * A[i] + alpha;
//! A[i] = beta;
//! ```
//!
//! The level of interference it injects is tuned by `NFLOP` (more flops per
//! element means less link traffic per unit time).

use dismem_trace::{AccessKind, MemoryEngine, PlacementPolicy};
use dismem_workloads::Workload;
use serde::{Deserialize, Serialize};

/// LBench configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LBenchParams {
    /// Size of the pool-resident array in bytes.
    pub array_bytes: u64,
    /// Floating-point operations per array element (`NFLOP`).
    pub flops_per_element: u64,
    /// Number of generator threads (informational; throughput scaling is
    /// handled by [`crate::model::LBenchModel`]).
    pub threads: u32,
    /// Number of sweeps over the array.
    pub iterations: u32,
}

impl Default for LBenchParams {
    fn default() -> Self {
        Self {
            array_bytes: 64 << 20,
            flops_per_element: 1,
            threads: 2,
            iterations: 4,
        }
    }
}

impl LBenchParams {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            array_bytes: 1 << 20,
            flops_per_element: 1,
            threads: 1,
            iterations: 2,
        }
    }

    /// Number of 8-byte elements in the array.
    pub fn elements(&self) -> u64 {
        self.array_bytes / 8
    }
}

/// The LBench workload.
#[derive(Debug, Clone)]
pub struct LBenchKernel {
    params: LBenchParams,
}

impl LBenchKernel {
    /// Creates the benchmark.
    pub fn new(params: LBenchParams) -> Self {
        assert!(
            params.array_bytes >= 4096,
            "array too small to be meaningful"
        );
        assert!(params.iterations > 0);
        Self { params }
    }

    /// The configured parameters.
    pub fn params(&self) -> &LBenchParams {
        &self.params
    }
}

impl Workload for LBenchKernel {
    fn name(&self) -> &'static str {
        "LBench"
    }

    fn description(&self) -> &'static str {
        "Interference injection and measurement benchmark for the memory-pool link"
    }

    fn parallelization(&self) -> &'static str {
        "OpenMP"
    }

    fn input_description(&self) -> String {
        format!(
            "{} MiB pool array, {} flops/element, {} threads, {} iterations",
            self.params.array_bytes >> 20,
            self.params.flops_per_element,
            self.params.threads,
            self.params.iterations
        )
    }

    fn expected_footprint_bytes(&self) -> u64 {
        self.params.array_bytes
    }

    fn run(&self, engine: &mut dyn MemoryEngine) {
        let p = &self.params;
        // The array lives on the memory pool (the whole point of the
        // benchmark is to stress the pool link).
        let array = engine.alloc_with_policy(
            "lbench-array",
            "lbench.rs:alloc",
            p.array_bytes,
            PlacementPolicy::ForceRemote,
        );

        engine.phase_start("p1-init");
        engine.touch(array, p.array_bytes);
        engine.phase_end();

        engine.phase_start("p2-kernel");
        // Sweep the array in large sequential slices; each element is read,
        // processed with the FMA chain and written back.
        const SLICE: u64 = 1 << 20;
        for _ in 0..p.iterations {
            let mut offset = 0;
            while offset < p.array_bytes {
                let len = SLICE.min(p.array_bytes - offset);
                engine.access_range(array, offset, len, AccessKind::Read);
                engine.access_range(array, offset, len, AccessKind::Write);
                engine.flops((len / 8) * p.flops_per_element);
                offset += len;
            }
        }
        engine.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_sim::{Machine, MachineConfig};
    use dismem_trace::TraceRecorder;

    #[test]
    fn flops_scale_with_nflop() {
        let run = |nflop| {
            let k = LBenchKernel::new(LBenchParams {
                flops_per_element: nflop,
                ..LBenchParams::tiny()
            });
            let mut rec = TraceRecorder::new();
            k.run(&mut rec);
            rec.stats().total_flops
        };
        let f1 = run(1);
        let f8 = run(8);
        assert_eq!(f8, 8 * f1);
    }

    #[test]
    fn array_lands_on_the_pool() {
        let k = LBenchKernel::new(LBenchParams::tiny());
        let mut m = Machine::new(MachineConfig::test_config());
        k.run(&mut m);
        let report = m.finish();
        assert!(report.remote_access_ratio() > 0.99);
        assert!(report.total.link_raw_bytes > 0);
        assert!(report.measured_loi() > 0.0);
    }

    #[test]
    fn traffic_scales_with_iterations() {
        let run = |iterations| {
            let k = LBenchKernel::new(LBenchParams {
                iterations,
                ..LBenchParams::tiny()
            });
            let mut rec = TraceRecorder::new();
            k.run(&mut rec);
            let s = rec.stats();
            s.phases[1].bytes_read + s.phases[1].bytes_written
        };
        assert_eq!(run(4), 2 * run(2));
    }

    #[test]
    fn higher_nflop_means_lower_injected_loi() {
        // More compute per element throttles the link traffic rate.
        let loi = |nflop| {
            let k = LBenchKernel::new(LBenchParams {
                flops_per_element: nflop,
                array_bytes: 4 << 20,
                ..LBenchParams::tiny()
            });
            let mut m = Machine::new(MachineConfig::test_config());
            k.run(&mut m);
            m.finish().measured_loi()
        };
        assert!(loi(1) > loi(256));
    }

    #[test]
    #[should_panic(expected = "array too small")]
    fn rejects_degenerate_array() {
        let _ = LBenchKernel::new(LBenchParams {
            array_bytes: 8,
            ..LBenchParams::tiny()
        });
    }
}
