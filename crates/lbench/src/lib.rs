//! # dismem-lbench
//!
//! LBench — the paper's benchmark for injecting and quantifying interference
//! on the link to the memory pool (Section 3.2).
//!
//! Two halves:
//!
//! * [`kernel::LBenchKernel`] — the benchmark itself as a [`dismem_workloads::Workload`]:
//!   an array allocated on the memory pool and swept by the FMA-chain kernel
//!   (`beta = beta * A[i] + alpha`, `NFLOP` per element), runnable on the
//!   simulator like any other workload.
//! * [`model::LBenchModel`] — the analytic link-contention model used for the
//!   calibration and validation experiments of Figure 11: configured
//!   intensity → measured level of interference (LoI), raw-counter ("PCM")
//!   traffic with its saturation at the link bandwidth, and the interference
//!   coefficient (IC), which keeps growing past saturation because it
//!   measures queueing rather than throughput.

#![forbid(unsafe_code)]

pub mod coefficient;
pub mod kernel;
pub mod model;

pub use coefficient::app_interference_coefficient;
pub use kernel::{LBenchKernel, LBenchParams};
pub use model::{CalibrationPoint, LBenchModel};
