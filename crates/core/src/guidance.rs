//! Optimization and deployment guidance derived from the quantitative study.
//!
//! The paper's methodology is explicitly not "yet another data-placement
//! optimizer": its output is *where to spend effort* and *how to deploy*.
//! This module encodes the decision rules spelled out in Sections 5 and 6:
//!
//! * If the remote access ratios of the dominant phases already sit between
//!   the capacity-ratio and bandwidth-ratio reference points, there is little
//!   to gain from placement tuning.
//! * Phases far above the references — and the hot objects behind them — are
//!   the optimization priority.
//! * Applications with low interference sensitivity can lean on the pool and
//!   use fewer nodes; highly sensitive ones should minimise pool exposure
//!   (more nodes, or explicit local placement).
//! * Whether to *move pages at runtime* is decided by the measured
//!   phase-dwell: how long a hot working set stays put is the window a page
//!   migration has to amortize in (see [`derive_migration_advice`]).

use dismem_profiler::{Level2Report, Level3Report};
use dismem_sim::TieringReport;
use serde::{Deserialize, Serialize};

/// Application-level data-placement priority.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementPriority {
    /// Access ratios already match the tier design: don't spend effort here.
    LittleOpportunity,
    /// Placement tuning is worthwhile.
    OptimizeDataPlacement {
        /// Phases whose remote access ratio exceeds the bandwidth reference,
        /// in the order they should be tackled.
        phases: Vec<String>,
        /// The hottest object residing mostly on the pool, if any — the
        /// concrete candidate to move (the paper's `Parents` array in BFS).
        hottest_remote_object: Option<String>,
    },
}

/// System-level deployment advice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeploymentAdvice {
    /// Low sensitivity: provision more capacity from the pool and use fewer
    /// compute nodes.
    LeveragePoolCapacity,
    /// Moderate sensitivity: pooling is acceptable, but co-location should be
    /// interference-aware.
    BalancedWithInterferenceAwareScheduling,
    /// High sensitivity: minimise pool exposure (scale out to more nodes or
    /// pin hot data locally).
    MinimisePoolExposure,
}

/// How a workload whose footprint exceeds local capacity should be deployed
/// on pooled memory *over time*: migrate pages at runtime, settle for a
/// static interleave, or pin the (stable) hot set locally once.
///
/// Derived from the measured phase-dwell of the workload's hot working set
/// (see [`derive_migration_advice`]) — the TPP/AutoNUMA-style policy space
/// the simulator's `HotPromote`/`PeriodicRebalance` tiering policies model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationAdvice {
    /// The hot set moves, but dwells long enough that a page migration
    /// amortizes: run a tiering daemon (hot-promotion style).
    Migrate,
    /// The hot set moves faster than migrations can pay for themselves: a
    /// static interleave across the tiers is the robust choice, and a tiering
    /// daemon would mostly generate ping-pong traffic.
    Interleave,
    /// The hot set never moved during the run: spend the effort on one-off
    /// placement (allocation order or explicit local allocation of the hot
    /// objects) instead of any runtime machinery.
    PinLocal,
}

/// Combined guidance for one workload on one tier configuration.
///
/// ```
/// use dismem_core::{DeploymentAdvice, Guidance, MigrationAdvice, PlacementPriority};
/// use dismem_sim::TieringReport;
///
/// // A run measured with a dynamic tiering policy: the hot set moved three
/// // times, dwelling three epochs on average — long enough to amortize a
/// // page migration.
/// let measured = TieringReport {
///     epochs: 12,
///     hot_set_shifts: 3,
///     dwell_epochs_total: 9,
///     open_dwell_epochs: 3,
///     ..TieringReport::default()
/// };
/// let guidance = Guidance {
///     placement: PlacementPriority::LittleOpportunity,
///     deployment: DeploymentAdvice::LeveragePoolCapacity,
///     max_slowdown_percent: 1.5,
///     notes: Vec::new(),
///     migration: None,
/// }
/// .with_migration_advice(&measured);
/// assert_eq!(guidance.migration, Some(MigrationAdvice::Migrate));
/// assert!(guidance.notes.last().unwrap().contains("dwells"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Guidance {
    /// Application-level placement priority.
    pub placement: PlacementPriority,
    /// System-level deployment advice.
    pub deployment: DeploymentAdvice,
    /// The slowdown (percent) at the highest studied interference level that
    /// the deployment advice is based on.
    pub max_slowdown_percent: f64,
    /// Human-readable notes explaining the decision.
    pub notes: Vec<String>,
    /// Migrate-vs-interleave advice, when a dwell-measuring tiering run is
    /// available ([`Guidance::with_migration_advice`]). `None` for guidance
    /// derived from profiling runs alone.
    pub migration: Option<MigrationAdvice>,
}

impl Guidance {
    /// Attaches a [`MigrationAdvice`] derived from a dwell-measuring tiering
    /// run (see [`derive_migration_advice`]), with an explanatory note. A
    /// report without measured epochs leaves the guidance unchanged.
    pub fn with_migration_advice(mut self, tiering: &TieringReport) -> Self {
        let Some(advice) = derive_migration_advice(tiering) else {
            return self;
        };
        let dwell = tiering.mean_dwell_epochs();
        self.notes.push(match advice {
            MigrationAdvice::Migrate => format!(
                "the hot set moved {} time(s) but dwells {dwell:.1} epochs on average — \
                 long enough for page migration to amortize; run a hot-promotion daemon",
                tiering.hot_set_shifts
            ),
            MigrationAdvice::Interleave => format!(
                "the hot set moved {} time(s), dwelling only {dwell:.1} epochs on average — \
                 migrations cannot pay for themselves; interleave statically across the tiers",
                tiering.hot_set_shifts
            ),
            MigrationAdvice::PinLocal => format!(
                "the hot set ({} page(s) at peak) never moved during {} measured epoch(s) — \
                 pin it locally at allocation time instead of running migration machinery",
                tiering.hot_set_pages_max, tiering.epochs
            ),
        });
        self.migration = Some(advice);
        self
    }
}

/// Sensitivity thresholds (percent slowdown at the highest LoI) separating
/// the deployment regimes.
pub const LOW_SENSITIVITY_PERCENT: f64 = 3.0;
/// Above this slowdown the workload should avoid the pool where possible.
pub const HIGH_SENSITIVITY_PERCENT: f64 = 10.0;

/// Minimum mean phase-dwell (in hotness epochs) at which runtime page
/// migration amortizes. A promotion needs one epoch of observed heat before
/// it can fire, so a dwell must outlast that detection latency *and* leave at
/// least one more epoch of locally served traffic to repay the page move —
/// below two epochs the daemon is always one phase behind the workload.
pub const MIGRATE_MIN_DWELL_EPOCHS: f64 = 2.0;

/// Derives the migrate-vs-interleave rule from a measured tiering run.
///
/// Returns `None` when the run measured no hotness epochs (e.g. the `static`
/// policy) — there is no dwell evidence to decide on. Otherwise:
///
/// * the hot set never shifted → [`MigrationAdvice::PinLocal`];
/// * mean dwell ≥ [`MIGRATE_MIN_DWELL_EPOCHS`] → [`MigrationAdvice::Migrate`];
/// * shorter dwells → [`MigrationAdvice::Interleave`].
///
/// ```
/// use dismem_core::{derive_migration_advice, MigrationAdvice};
/// use dismem_sim::TieringReport;
///
/// // No measurement: static runs never fire epochs.
/// assert_eq!(derive_migration_advice(&TieringReport::default()), None);
///
/// // A hot set that thrashes every epoch cannot amortize migrations.
/// let thrashing = TieringReport {
///     epochs: 8,
///     hot_set_shifts: 7,
///     dwell_epochs_total: 7,
///     open_dwell_epochs: 1,
///     ..TieringReport::default()
/// };
/// assert_eq!(
///     derive_migration_advice(&thrashing),
///     Some(MigrationAdvice::Interleave)
/// );
/// ```
pub fn derive_migration_advice(tiering: &TieringReport) -> Option<MigrationAdvice> {
    if tiering.epochs == 0 {
        return None;
    }
    Some(if tiering.hot_set_shifts == 0 {
        MigrationAdvice::PinLocal
    } else if tiering.mean_dwell_epochs() >= MIGRATE_MIN_DWELL_EPOCHS {
        MigrationAdvice::Migrate
    } else {
        MigrationAdvice::Interleave
    })
}

/// Derives guidance from Level-2 and Level-3 reports of the same
/// configuration.
pub fn derive_guidance(level2: &Level2Report, level3: &Level3Report) -> Guidance {
    let mut notes = Vec::new();

    // Placement: compare phase access ratios with the two reference points.
    let above_bw: Vec<String> = level2
        .phases_above_bandwidth_ratio()
        .iter()
        .map(|p| p.label.clone())
        .collect();
    let spread = (level2.remote_bandwidth_ratio - level2.remote_capacity_ratio).abs();
    let placement = if above_bw.is_empty() || spread < 0.05 {
        notes.push(
            "remote access ratios sit close to the capacity/bandwidth references; \
             data-placement tuning has little headroom"
                .to_string(),
        );
        PlacementPriority::LittleOpportunity
    } else {
        let hottest = level2
            .hottest_remote_object()
            .map(|(name, _, _)| name.clone());
        if let Some(obj) = &hottest {
            notes.push(format!(
                "object '{obj}' is heavily accessed but resides mostly on the pool; \
                 consider allocating it locally (allocation order or explicit placement)"
            ));
        }
        notes.push(format!(
            "{} phase(s) exceed the bandwidth reference ratio of {:.0}%",
            above_bw.len(),
            level2.remote_bandwidth_ratio * 100.0
        ));
        PlacementPriority::OptimizeDataPlacement {
            phases: above_bw,
            hottest_remote_object: hottest,
        }
    };

    // Deployment: driven by interference sensitivity.
    let slowdown = level3.max_slowdown_percent();
    let deployment = if slowdown < LOW_SENSITIVITY_PERCENT {
        notes.push(format!(
            "worst-case slowdown {slowdown:.1}% — the job can take capacity from the pool \
             and reduce its node count"
        ));
        DeploymentAdvice::LeveragePoolCapacity
    } else if slowdown < HIGH_SENSITIVITY_PERCENT {
        notes.push(format!(
            "worst-case slowdown {slowdown:.1}% — acceptable with interference-aware co-location"
        ));
        DeploymentAdvice::BalancedWithInterferenceAwareScheduling
    } else {
        notes.push(format!(
            "worst-case slowdown {slowdown:.1}% — minimise remote memory exposure \
             (more nodes or explicit local placement)"
        ));
        DeploymentAdvice::MinimisePoolExposure
    };

    Guidance {
        placement,
        deployment,
        max_slowdown_percent: slowdown,
        notes,
        migration: None,
    }
}

#[cfg(test)]
mod tests {
    use self::helpers::*;
    use super::*;

    /// Minimal hand-built Level-2/Level-3 reports for rule testing.
    mod helpers {
        use dismem_profiler::level2::PhaseTierAccess;
        use dismem_profiler::level3::SensitivityPoint;
        use dismem_profiler::{Level2Report, Level3Report};

        pub fn level2(remote_ratio: f64, phase_remote: f64) -> Level2Report {
            Level2Report {
                workload: "T".into(),
                local_capacity_fraction: 0.5,
                remote_capacity_ratio: remote_ratio,
                remote_bandwidth_ratio: 0.32,
                remote_access_ratio: phase_remote,
                phases: vec![PhaseTierAccess {
                    label: "T-p2".into(),
                    phase: "p2".into(),
                    bytes_local: ((1.0 - phase_remote) * 1e6) as u64,
                    bytes_remote: (phase_remote * 1e6) as u64,
                    remote_access_ratio: phase_remote,
                    arithmetic_intensity: 0.5,
                }],
                object_remote_ratios: vec![("hot-array".into(), phase_remote, 1000)],
            }
        }

        pub fn level3(max_slowdown_percent: f64) -> Level3Report {
            let rel = 1.0 - max_slowdown_percent / 100.0;
            Level3Report {
                workload: "T".into(),
                local_capacity_fraction: 0.5,
                sensitivity: vec![
                    SensitivityPoint {
                        loi_percent: 0.0,
                        relative_performance: 1.0,
                        runtime_s: 1.0,
                    },
                    SensitivityPoint {
                        loi_percent: 50.0,
                        relative_performance: rel,
                        runtime_s: 1.0 / rel,
                    },
                ],
                compute_phase_sensitivity: vec![],
                remote_access_ratio: 0.5,
                arithmetic_intensity: 0.5,
            }
        }
    }

    #[test]
    fn high_remote_access_triggers_placement_optimization() {
        let g = derive_guidance(&level2(0.5, 0.95), &level3(5.0));
        match g.placement {
            PlacementPriority::OptimizeDataPlacement {
                phases,
                hottest_remote_object,
            } => {
                assert_eq!(phases, vec!["T-p2".to_string()]);
                assert_eq!(hottest_remote_object.as_deref(), Some("hot-array"));
            }
            other => panic!("expected placement optimization, got {other:?}"),
        }
        assert!(!g.notes.is_empty());
    }

    #[test]
    fn matched_ratios_mean_little_opportunity() {
        // Remote access below the bandwidth reference: nothing to do.
        let g = derive_guidance(&level2(0.25, 0.20), &level3(5.0));
        assert_eq!(g.placement, PlacementPriority::LittleOpportunity);
    }

    #[test]
    fn deployment_advice_follows_sensitivity() {
        assert_eq!(
            derive_guidance(&level2(0.25, 0.2), &level3(1.0)).deployment,
            DeploymentAdvice::LeveragePoolCapacity
        );
        assert_eq!(
            derive_guidance(&level2(0.25, 0.2), &level3(6.0)).deployment,
            DeploymentAdvice::BalancedWithInterferenceAwareScheduling
        );
        assert_eq!(
            derive_guidance(&level2(0.25, 0.2), &level3(15.0)).deployment,
            DeploymentAdvice::MinimisePoolExposure
        );
    }

    #[test]
    fn slowdown_is_recorded() {
        let g = derive_guidance(&level2(0.25, 0.2), &level3(7.5));
        assert!((g.max_slowdown_percent - 7.5).abs() < 0.2);
        assert_eq!(g.migration, None, "profiling runs carry no dwell evidence");
    }

    fn dwell_report(epochs: u64, shifts: u64, completed: u64, open: u64) -> TieringReport {
        TieringReport {
            epochs,
            hot_set_shifts: shifts,
            dwell_epochs_total: completed,
            open_dwell_epochs: open,
            hot_set_pages_max: 64,
            ..TieringReport::default()
        }
    }

    #[test]
    fn migration_advice_follows_measured_dwell() {
        // No epochs: no evidence, no advice.
        assert_eq!(derive_migration_advice(&dwell_report(0, 0, 0, 0)), None);
        // Stable hot set: one-off placement beats runtime machinery.
        assert_eq!(
            derive_migration_advice(&dwell_report(10, 0, 0, 10)),
            Some(MigrationAdvice::PinLocal)
        );
        // Long dwells: migration amortizes.
        assert_eq!(
            derive_migration_advice(&dwell_report(12, 3, 9, 3)),
            Some(MigrationAdvice::Migrate)
        );
        // Thrashing hot set: dwell below the break-even threshold.
        assert_eq!(
            derive_migration_advice(&dwell_report(8, 7, 7, 1)),
            Some(MigrationAdvice::Interleave)
        );
        // Exactly at the threshold counts as amortizing.
        assert_eq!(
            derive_migration_advice(&dwell_report(8, 2, 4, 0)),
            Some(MigrationAdvice::Migrate)
        );
    }

    #[test]
    fn with_migration_advice_attaches_advice_and_note() {
        let base = derive_guidance(&level2(0.25, 0.2), &level3(5.0));
        let notes_before = base.notes.len();
        let g = base
            .clone()
            .with_migration_advice(&dwell_report(12, 3, 9, 3));
        assert_eq!(g.migration, Some(MigrationAdvice::Migrate));
        assert_eq!(g.notes.len(), notes_before + 1);
        // A measurement-free report leaves the guidance untouched.
        let unchanged = base
            .clone()
            .with_migration_advice(&TieringReport::default());
        assert_eq!(unchanged, base);
    }
}
