//! Optimization and deployment guidance derived from the quantitative study.
//!
//! The paper's methodology is explicitly not "yet another data-placement
//! optimizer": its output is *where to spend effort* and *how to deploy*.
//! This module encodes the decision rules spelled out in Sections 5 and 6:
//!
//! * If the remote access ratios of the dominant phases already sit between
//!   the capacity-ratio and bandwidth-ratio reference points, there is little
//!   to gain from placement tuning.
//! * Phases far above the references — and the hot objects behind them — are
//!   the optimization priority.
//! * Applications with low interference sensitivity can lean on the pool and
//!   use fewer nodes; highly sensitive ones should minimise pool exposure
//!   (more nodes, or explicit local placement).

use dismem_profiler::{Level2Report, Level3Report};
use serde::{Deserialize, Serialize};

/// Application-level data-placement priority.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementPriority {
    /// Access ratios already match the tier design: don't spend effort here.
    LittleOpportunity,
    /// Placement tuning is worthwhile.
    OptimizeDataPlacement {
        /// Phases whose remote access ratio exceeds the bandwidth reference,
        /// in the order they should be tackled.
        phases: Vec<String>,
        /// The hottest object residing mostly on the pool, if any — the
        /// concrete candidate to move (the paper's `Parents` array in BFS).
        hottest_remote_object: Option<String>,
    },
}

/// System-level deployment advice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeploymentAdvice {
    /// Low sensitivity: provision more capacity from the pool and use fewer
    /// compute nodes.
    LeveragePoolCapacity,
    /// Moderate sensitivity: pooling is acceptable, but co-location should be
    /// interference-aware.
    BalancedWithInterferenceAwareScheduling,
    /// High sensitivity: minimise pool exposure (scale out to more nodes or
    /// pin hot data locally).
    MinimisePoolExposure,
}

/// Combined guidance for one workload on one tier configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Guidance {
    /// Application-level placement priority.
    pub placement: PlacementPriority,
    /// System-level deployment advice.
    pub deployment: DeploymentAdvice,
    /// The slowdown (percent) at the highest studied interference level that
    /// the deployment advice is based on.
    pub max_slowdown_percent: f64,
    /// Human-readable notes explaining the decision.
    pub notes: Vec<String>,
}

/// Sensitivity thresholds (percent slowdown at the highest LoI) separating
/// the deployment regimes.
pub const LOW_SENSITIVITY_PERCENT: f64 = 3.0;
/// Above this slowdown the workload should avoid the pool where possible.
pub const HIGH_SENSITIVITY_PERCENT: f64 = 10.0;

/// Derives guidance from Level-2 and Level-3 reports of the same
/// configuration.
pub fn derive_guidance(level2: &Level2Report, level3: &Level3Report) -> Guidance {
    let mut notes = Vec::new();

    // Placement: compare phase access ratios with the two reference points.
    let above_bw: Vec<String> = level2
        .phases_above_bandwidth_ratio()
        .iter()
        .map(|p| p.label.clone())
        .collect();
    let spread = (level2.remote_bandwidth_ratio - level2.remote_capacity_ratio).abs();
    let placement = if above_bw.is_empty() || spread < 0.05 {
        notes.push(
            "remote access ratios sit close to the capacity/bandwidth references; \
             data-placement tuning has little headroom"
                .to_string(),
        );
        PlacementPriority::LittleOpportunity
    } else {
        let hottest = level2
            .hottest_remote_object()
            .map(|(name, _, _)| name.clone());
        if let Some(obj) = &hottest {
            notes.push(format!(
                "object '{obj}' is heavily accessed but resides mostly on the pool; \
                 consider allocating it locally (allocation order or explicit placement)"
            ));
        }
        notes.push(format!(
            "{} phase(s) exceed the bandwidth reference ratio of {:.0}%",
            above_bw.len(),
            level2.remote_bandwidth_ratio * 100.0
        ));
        PlacementPriority::OptimizeDataPlacement {
            phases: above_bw,
            hottest_remote_object: hottest,
        }
    };

    // Deployment: driven by interference sensitivity.
    let slowdown = level3.max_slowdown_percent();
    let deployment = if slowdown < LOW_SENSITIVITY_PERCENT {
        notes.push(format!(
            "worst-case slowdown {slowdown:.1}% — the job can take capacity from the pool \
             and reduce its node count"
        ));
        DeploymentAdvice::LeveragePoolCapacity
    } else if slowdown < HIGH_SENSITIVITY_PERCENT {
        notes.push(format!(
            "worst-case slowdown {slowdown:.1}% — acceptable with interference-aware co-location"
        ));
        DeploymentAdvice::BalancedWithInterferenceAwareScheduling
    } else {
        notes.push(format!(
            "worst-case slowdown {slowdown:.1}% — minimise remote memory exposure \
             (more nodes or explicit local placement)"
        ));
        DeploymentAdvice::MinimisePoolExposure
    };

    Guidance {
        placement,
        deployment,
        max_slowdown_percent: slowdown,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use self::helpers::*;
    use super::*;

    /// Minimal hand-built Level-2/Level-3 reports for rule testing.
    mod helpers {
        use dismem_profiler::level2::PhaseTierAccess;
        use dismem_profiler::level3::SensitivityPoint;
        use dismem_profiler::{Level2Report, Level3Report};

        pub fn level2(remote_ratio: f64, phase_remote: f64) -> Level2Report {
            Level2Report {
                workload: "T".into(),
                local_capacity_fraction: 0.5,
                remote_capacity_ratio: remote_ratio,
                remote_bandwidth_ratio: 0.32,
                remote_access_ratio: phase_remote,
                phases: vec![PhaseTierAccess {
                    label: "T-p2".into(),
                    phase: "p2".into(),
                    bytes_local: ((1.0 - phase_remote) * 1e6) as u64,
                    bytes_remote: (phase_remote * 1e6) as u64,
                    remote_access_ratio: phase_remote,
                    arithmetic_intensity: 0.5,
                }],
                object_remote_ratios: vec![("hot-array".into(), phase_remote, 1000)],
            }
        }

        pub fn level3(max_slowdown_percent: f64) -> Level3Report {
            let rel = 1.0 - max_slowdown_percent / 100.0;
            Level3Report {
                workload: "T".into(),
                local_capacity_fraction: 0.5,
                sensitivity: vec![
                    SensitivityPoint {
                        loi_percent: 0.0,
                        relative_performance: 1.0,
                        runtime_s: 1.0,
                    },
                    SensitivityPoint {
                        loi_percent: 50.0,
                        relative_performance: rel,
                        runtime_s: 1.0 / rel,
                    },
                ],
                compute_phase_sensitivity: vec![],
                remote_access_ratio: 0.5,
                arithmetic_intensity: 0.5,
            }
        }
    }

    #[test]
    fn high_remote_access_triggers_placement_optimization() {
        let g = derive_guidance(&level2(0.5, 0.95), &level3(5.0));
        match g.placement {
            PlacementPriority::OptimizeDataPlacement {
                phases,
                hottest_remote_object,
            } => {
                assert_eq!(phases, vec!["T-p2".to_string()]);
                assert_eq!(hottest_remote_object.as_deref(), Some("hot-array"));
            }
            other => panic!("expected placement optimization, got {other:?}"),
        }
        assert!(!g.notes.is_empty());
    }

    #[test]
    fn matched_ratios_mean_little_opportunity() {
        // Remote access below the bandwidth reference: nothing to do.
        let g = derive_guidance(&level2(0.25, 0.20), &level3(5.0));
        assert_eq!(g.placement, PlacementPriority::LittleOpportunity);
    }

    #[test]
    fn deployment_advice_follows_sensitivity() {
        assert_eq!(
            derive_guidance(&level2(0.25, 0.2), &level3(1.0)).deployment,
            DeploymentAdvice::LeveragePoolCapacity
        );
        assert_eq!(
            derive_guidance(&level2(0.25, 0.2), &level3(6.0)).deployment,
            DeploymentAdvice::BalancedWithInterferenceAwareScheduling
        );
        assert_eq!(
            derive_guidance(&level2(0.25, 0.2), &level3(15.0)).deployment,
            DeploymentAdvice::MinimisePoolExposure
        );
    }

    #[test]
    fn slowdown_is_recorded() {
        let g = derive_guidance(&level2(0.25, 0.2), &level3(7.5));
        assert!((g.max_slowdown_percent - 7.5).abs() < 0.2);
    }
}
