//! The three-level quantitative study facade.

use crate::guidance::{derive_guidance, Guidance};
use dismem_lbench::{app_interference_coefficient, LBenchModel};
use dismem_profiler::level1::{level1_profile, Level1Report};
use dismem_profiler::level2::{level2_profile, Level2Report};
use dismem_profiler::level3::{level3_profile, Level3Report, PAPER_LOI_LEVELS};
use dismem_profiler::{pooled_config, run_workload, RunOptions};
use dismem_sim::{MachineConfig, RunReport};
use dismem_workloads::Workload;
use serde::{Deserialize, Serialize};

/// A complete study of one workload on one machine: all three levels plus the
/// derived guidance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyReport {
    /// Workload name.
    pub workload: String,
    /// Level 1: general characteristics.
    pub level1: Level1Report,
    /// Level 2 at each requested local-capacity fraction.
    pub level2: Vec<Level2Report>,
    /// Level 3 at each requested local-capacity fraction.
    pub level3: Vec<Level3Report>,
    /// Interference coefficient of the workload (whole run) at each fraction.
    pub interference_coefficient: Vec<f64>,
    /// Guidance derived from the smallest local-capacity configuration.
    pub guidance: Guidance,
}

/// Driver for the paper's three-level, top-down methodology on one workload.
pub struct QuantitativeStudy {
    workload: Box<dyn Workload>,
    base_config: MachineConfig,
}

impl QuantitativeStudy {
    /// Creates a study for a workload on a machine configuration.
    pub fn new(workload: Box<dyn Workload>, base_config: MachineConfig) -> Self {
        Self {
            workload,
            base_config,
        }
    }

    /// Name of the studied workload.
    pub fn workload_name(&self) -> &str {
        self.workload.name()
    }

    /// The machine configuration the study uses.
    pub fn config(&self) -> &MachineConfig {
        &self.base_config
    }

    /// Level 1: general characteristics (roofline points, footprint, scaling
    /// curve, prefetch suitability). Runs on node-local memory only.
    pub fn level1(&self) -> Level1Report {
        level1_profile(self.workload.as_ref(), &self.base_config)
    }

    /// Level 2: tier access ratios when the local tier holds `local_fraction`
    /// of the footprint.
    pub fn level2(&self, local_fraction: f64) -> Level2Report {
        level2_profile(self.workload.as_ref(), &self.base_config, local_fraction)
    }

    /// Level 3: interference sensitivity for the given LoI levels (percent).
    pub fn level3(&self, local_fraction: f64, loi_percent_levels: &[f64]) -> Level3Report {
        level3_profile(
            self.workload.as_ref(),
            &self.base_config,
            local_fraction,
            loi_percent_levels,
        )
    }

    /// Raw pooled run report (useful for scheduling campaigns and custom
    /// analyses).
    pub fn pooled_run(&self, local_fraction: f64) -> RunReport {
        let config = pooled_config(&self.base_config, self.workload.as_ref(), local_fraction);
        run_workload(self.workload.as_ref(), &RunOptions::new(config))
    }

    /// Interference coefficient the workload induces on the pool at the given
    /// local-capacity fraction.
    pub fn interference_coefficient(&self, local_fraction: f64) -> f64 {
        let report = self.pooled_run(local_fraction);
        let model = LBenchModel::from_config(&self.base_config);
        app_interference_coefficient(&report, &model, self.workload.name())
            .0
            .coefficient
    }

    /// Runs the full three-level study across a set of local-capacity
    /// fractions (the paper uses 0.75, 0.50 and 0.25).
    pub fn full_study(&self, local_fractions: &[f64]) -> StudyReport {
        assert!(!local_fractions.is_empty());
        let level1 = self.level1();
        let level2: Vec<Level2Report> = local_fractions.iter().map(|&f| self.level2(f)).collect();
        let level3: Vec<Level3Report> = local_fractions
            .iter()
            .map(|&f| self.level3(f, &PAPER_LOI_LEVELS))
            .collect();
        let interference_coefficient = local_fractions
            .iter()
            .map(|&f| self.interference_coefficient(f))
            .collect();
        // Guidance from the most pool-heavy configuration studied.
        let (tightest_idx, _) = local_fractions
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let guidance = derive_guidance(&level2[tightest_idx], &level3[tightest_idx]);
        StudyReport {
            workload: self.workload.name().to_string(),
            level1,
            level2,
            level3,
            interference_coefficient,
            guidance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_workloads::WorkloadKind;

    fn study(kind: WorkloadKind) -> QuantitativeStudy {
        QuantitativeStudy::new(kind.instantiate_tiny(), MachineConfig::test_config())
    }

    #[test]
    fn full_study_produces_all_levels() {
        let s = study(WorkloadKind::Hypre);
        let report = s.full_study(&[0.75, 0.25]);
        assert_eq!(report.workload, "Hypre");
        assert_eq!(report.level2.len(), 2);
        assert_eq!(report.level3.len(), 2);
        assert_eq!(report.interference_coefficient.len(), 2);
        assert!(!report.level1.phases.is_empty());
        // Less local capacity means more remote access and more sensitivity.
        assert!(report.level2[1].remote_access_ratio >= report.level2[0].remote_access_ratio);
        assert!(report.interference_coefficient.iter().all(|&ic| ic >= 1.0));
    }

    #[test]
    fn pooled_run_respects_fraction() {
        let s = study(WorkloadKind::Bfs);
        let run = s.pooled_run(0.25);
        assert!(run.remote_capacity_ratio() > 0.4);
        assert!(run.total_runtime_s > 0.0);
        assert_eq!(s.workload_name(), "BFS");
    }

    #[test]
    fn interference_coefficient_larger_for_pool_heavy_configs() {
        let s = study(WorkloadKind::Hypre);
        let ic_tight = s.interference_coefficient(0.25);
        let ic_roomy = s.interference_coefficient(1.0);
        assert!(ic_tight >= ic_roomy);
    }

    #[test]
    #[should_panic]
    fn full_study_rejects_empty_fractions() {
        let s = study(WorkloadKind::Hpl);
        let _ = s.full_study(&[]);
    }
}
