//! Case study 1: optimizing remote memory traffic in BFS (Section 7.1,
//! Figure 12).
//!
//! The Level-2 analysis of BFS at 75% pooled capacity shows ~99% remote
//! accesses — far above the capacity-ratio reference — and points at the
//! small but hot `Parents` array as the culprit. Two source-level changes fix
//! the placement under the default first-touch policy:
//!
//! 1. allocate and initialize `Parents` before the large graph arrays, and
//! 2. free a construction-time temporary so later dynamic (frontier)
//!    allocations can use node-local memory.
//!
//! This module runs the three variants on the same pooled configurations and
//! reports runtime, remote traffic and interference sensitivity for each —
//! the three panels of Figure 12.

use dismem_profiler::level3::{level3_from_report, SensitivityPoint};
use dismem_profiler::{run_workload, RunOptions};
use dismem_sim::MachineConfig;
use dismem_workloads::{Bfs, BfsOptimization, BfsParams, Workload};
use serde::{Deserialize, Serialize};

/// Result of one BFS variant on one pooling configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BfsVariantResult {
    /// Placement variant.
    pub optimization: String,
    /// Fraction of the footprint served by the pool (the paper's "50% pooled"
    /// / "75% pooled").
    pub pooled_fraction: f64,
    /// Total runtime in seconds.
    pub runtime_s: f64,
    /// Remote access ratio over the whole run.
    pub remote_access_ratio: f64,
    /// Bytes accessed from the pool.
    pub remote_bytes: u64,
    /// Remote access ratio of the `Parents` array specifically.
    pub parents_remote_ratio: f64,
    /// Interference sensitivity sweep (relative performance at each LoI).
    pub sensitivity: Vec<SensitivityPoint>,
}

/// The full case study: all variants on all pooling configurations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BfsCaseStudy {
    /// Individual results.
    pub variants: Vec<BfsVariantResult>,
}

impl BfsCaseStudy {
    /// Looks up a result by variant label and pooled fraction.
    pub fn get(
        &self,
        optimization: BfsOptimization,
        pooled_fraction: f64,
    ) -> Option<&BfsVariantResult> {
        self.variants.iter().find(|v| {
            v.optimization == optimization.label()
                && (v.pooled_fraction - pooled_fraction).abs() < 1e-9
        })
    }

    /// Speedup (percent) of the fully optimized variant over the baseline at
    /// a given pooled fraction.
    pub fn speedup_percent(&self, pooled_fraction: f64) -> Option<f64> {
        let base = self.get(BfsOptimization::Baseline, pooled_fraction)?;
        let opt = self.get(BfsOptimization::ReorderAndFreeTemp, pooled_fraction)?;
        if opt.runtime_s == 0.0 {
            return None;
        }
        Some((base.runtime_s / opt.runtime_s - 1.0) * 100.0)
    }

    /// Reduction (percentage points) of the remote access ratio from baseline
    /// to the fully optimized variant.
    pub fn remote_access_reduction(&self, pooled_fraction: f64) -> Option<f64> {
        let base = self.get(BfsOptimization::Baseline, pooled_fraction)?;
        let opt = self.get(BfsOptimization::ReorderAndFreeTemp, pooled_fraction)?;
        Some((base.remote_access_ratio - opt.remote_access_ratio) * 100.0)
    }
}

/// Runs the BFS placement case study.
///
/// `pooled_fractions` are the pool shares of the footprint (the paper uses
/// 0.5 and 0.75); `loi_percent_levels` is the interference sweep for the
/// sensitivity panel.
pub fn bfs_placement_study(
    params: BfsParams,
    base_config: &MachineConfig,
    pooled_fractions: &[f64],
    loi_percent_levels: &[f64],
) -> BfsCaseStudy {
    let mut variants = Vec::new();
    for &pooled in pooled_fractions {
        assert!(
            (0.0..1.0).contains(&pooled),
            "pooled fraction must be in [0,1)"
        );
        for opt in BfsOptimization::all() {
            let workload = Bfs::new(params.with_optimization(opt));
            let local_fraction = 1.0 - pooled;
            let config = base_config
                .clone()
                .with_pooling(workload.expected_footprint_bytes(), local_fraction);
            let report = run_workload(&workload, &RunOptions::new(config));
            let level3 =
                level3_from_report(workload.name(), local_fraction, &report, loi_percent_levels);
            let parents_remote_ratio = report
                .allocation("Parents")
                .map(|a| a.remote_access_ratio())
                .unwrap_or(0.0);
            variants.push(BfsVariantResult {
                optimization: opt.label().to_string(),
                pooled_fraction: pooled,
                runtime_s: report.total_runtime_s,
                remote_access_ratio: report.remote_access_ratio(),
                remote_bytes: report.remote_bytes(),
                parents_remote_ratio,
                sensitivity: level3.sensitivity,
            });
        }
    }
    BfsCaseStudy { variants }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_study() -> BfsCaseStudy {
        bfs_placement_study(
            BfsParams::tiny(),
            &MachineConfig::test_config(),
            &[0.75],
            &[0.0, 50.0],
        )
    }

    #[test]
    fn optimizations_reduce_remote_access_and_runtime() {
        let study = tiny_study();
        let base = study.get(BfsOptimization::Baseline, 0.75).unwrap();
        let reorder = study
            .get(BfsOptimization::ReorderAllocations, 0.75)
            .unwrap();
        let full = study
            .get(BfsOptimization::ReorderAndFreeTemp, 0.75)
            .unwrap();

        // Reordering puts Parents locally: its remote ratio collapses.
        assert!(
            base.parents_remote_ratio > 0.9,
            "{}",
            base.parents_remote_ratio
        );
        assert!(
            reorder.parents_remote_ratio < 0.1,
            "{}",
            reorder.parents_remote_ratio
        );

        // Remote access ratio and remote bytes fall monotonically.
        assert!(reorder.remote_access_ratio < base.remote_access_ratio);
        assert!(full.remote_access_ratio <= reorder.remote_access_ratio + 1e-9);
        assert!(full.remote_bytes < base.remote_bytes);

        // And the optimized version is faster.
        assert!(full.runtime_s < base.runtime_s);
        assert!(study.speedup_percent(0.75).unwrap() > 0.0);
        assert!(study.remote_access_reduction(0.75).unwrap() > 0.0);
    }

    #[test]
    fn optimized_version_is_less_interference_sensitive() {
        let study = tiny_study();
        let base = study.get(BfsOptimization::Baseline, 0.75).unwrap();
        let full = study
            .get(BfsOptimization::ReorderAndFreeTemp, 0.75)
            .unwrap();
        let base_worst = base.sensitivity.last().unwrap().relative_performance;
        let full_worst = full.sensitivity.last().unwrap().relative_performance;
        assert!(
            full_worst >= base_worst - 1e-9,
            "optimized {full_worst} should be no more sensitive than baseline {base_worst}"
        );
    }

    #[test]
    #[should_panic(expected = "pooled fraction")]
    fn rejects_pooled_fraction_of_one() {
        let _ = bfs_placement_study(
            BfsParams::tiny(),
            &MachineConfig::test_config(),
            &[1.0],
            &[0.0],
        );
    }
}
