//! # dismem-core
//!
//! The paper's primary contribution as a library: a three-level quantitative
//! methodology for dissecting an application's requirements on the memory
//! system, from general characteristics, to multi-tier memory, to memory
//! pooling — plus the decision guidance and the application-level case study
//! built on top of it.
//!
//! The intended entry point is [`QuantitativeStudy`]:
//!
//! ```
//! use dismem_core::QuantitativeStudy;
//! use dismem_sim::MachineConfig;
//! use dismem_workloads::WorkloadKind;
//!
//! let study = QuantitativeStudy::new(
//!     WorkloadKind::Hypre.instantiate_tiny(),
//!     MachineConfig::test_config(),
//! );
//! let level1 = study.level1();
//! let level2 = study.level2(0.5);
//! let level3 = study.level3(0.5, &[0.0, 25.0, 50.0]);
//! let guidance = dismem_core::derive_guidance(&level2, &level3);
//! assert!(!level1.phases.is_empty());
//! assert!(level3.worst_case_performance() <= 1.0);
//! let _ = guidance;
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod case_bfs;
pub mod cellkey;
pub mod guidance;
pub mod study;

pub use case_bfs::{bfs_placement_study, BfsCaseStudy, BfsVariantResult};
pub use cellkey::{fnv1a64, CellKey};
pub use guidance::{
    derive_guidance, derive_migration_advice, DeploymentAdvice, Guidance, MigrationAdvice,
    PlacementPriority,
};
pub use study::{QuantitativeStudy, StudyReport};
