//! Stable, content-addressed identity for one campaign cell.
//!
//! A fleet campaign is a cartesian grid of cells — workload × scale × policy ×
//! capacity × link × seed. Crash-consistent resume and shard merging both need
//! a key that (a) is stable across processes, (b) orders totally, and (c)
//! round-trips through the JSON-lines journal byte-for-byte. [`CellKey`] is
//! that key; [`fnv1a64`] is the digest primitive used to fingerprint the
//! campaign spec so a journal written under one configuration is never
//! silently replayed under another.

use serde::{Deserialize, Serialize};

/// Identity of one campaign cell inside a fleet grid.
///
/// Fields are the axes of the paper's §7 methodology grid. Capacity is stored
/// in permille (0–1000) rather than as an f64 so equality and ordering are
/// exact and the journal representation is unambiguous.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellKey {
    /// Workload name as registered in `dismem-workloads` (e.g. "BFS").
    pub workload: String,
    /// Input-scale label ("tiny", "x1", "x2", "x4").
    pub scale: String,
    /// Scheduling-policy label ("baseline", "aware").
    pub policy: String,
    /// Local-DRAM capacity fraction in permille of the footprint (0–1000).
    pub capacity_permille: u32,
    /// Link-configuration label (e.g. "upi").
    pub link: String,
    /// Base RNG seed for the cell's Monte Carlo campaign.
    pub seed: u64,
}

impl CellKey {
    /// The human-readable canonical id, also the journal's sort key:
    /// `workload/scale/policy/c<permille>/link/s<seed>`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/c{}/{}/s{}",
            self.workload, self.scale, self.policy, self.capacity_permille, self.link, self.seed
        )
    }
}

/// 64-bit FNV-1a over a byte string.
///
/// Used to fingerprint campaign specs and machine configurations. Not
/// cryptographic — it guards against configuration drift between a journal
/// and the process resuming it, not against an adversary.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> CellKey {
        CellKey {
            workload: "BFS".to_string(),
            scale: "tiny".to_string(),
            policy: "aware".to_string(),
            capacity_permille: 500,
            link: "upi".to_string(),
            seed: 0xD15C,
        }
    }

    #[test]
    fn id_is_canonical() {
        assert_eq!(key().id(), "BFS/tiny/aware/c500/upi/s53596");
    }

    #[test]
    fn ordering_follows_fields_lexicographically() {
        let a = key();
        let mut b = key();
        b.capacity_permille = 750;
        assert!(a < b);
        let mut c = key();
        c.workload = "XSBench".to_string();
        assert!(a < c);
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn serializes_with_exact_u64_seed() {
        let mut k = key();
        k.seed = u64::MAX;
        let json = serde_json::to_string(&k).unwrap();
        assert!(json.contains(&format!("\"seed\":{}", u64::MAX)), "{json}");
        let parsed = serde_json::parse_value(&json).unwrap();
        assert_eq!(parsed.get("seed").and_then(|v| v.as_u64()), Some(u64::MAX));
    }
}
