//! Page-granular access histograms and the cumulative-distribution transform
//! behind the paper's memory bandwidth-capacity scaling curves (Figure 6).

use serde::{Deserialize, Serialize};
// The histogram's record path is the per-access hot loop, so the page-count
// map stays a HashMap; every ordered consumer sorts a snapshot (enforced by
// dismem-lint's hash-iteration rule).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

/// Histogram of access counts per page.
///
/// Pages are identified by their global page index in the engine's virtual
/// address space. The histogram is the raw material for the
/// bandwidth-capacity scaling curve: pages sorted by hotness vs the cumulative
/// share of accesses they receive.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PageHistogram {
    #[allow(clippy::disallowed_types)]
    counts: HashMap<u64, u64>,
}

/// One point on the cumulative bandwidth-capacity scaling curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Fraction of the memory footprint considered (hottest pages first), 0–1.
    pub footprint_fraction: f64,
    /// Fraction of all memory accesses landing in those pages, 0–1.
    pub access_fraction: f64,
}

impl PageHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` accesses to page `page`.
    pub fn record(&mut self, page: u64, n: u64) {
        *self.counts.entry(page).or_insert(0) += n;
    }

    /// Number of distinct pages touched.
    pub fn touched_pages(&self) -> usize {
        self.counts.len()
    }

    /// Total number of recorded accesses.
    pub fn total_accesses(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Access count of one page (0 if never touched).
    pub fn count(&self, page: u64) -> u64 {
        self.counts.get(&page).copied().unwrap_or(0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &PageHistogram) {
        for (&page, &n) in &other.counts {
            self.record(page, n);
        }
    }

    /// Iterator over `(page, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        // dismem-lint: allow(hash-iteration) — accessor documented as
        // unordered; report-affecting callers sort the pairs they collect.
        self.counts.iter().map(|(&p, &c)| (p, c))
    }

    /// Builds the cumulative distribution of accesses over the footprint
    /// (pages sorted hottest-first), sampled at `samples` evenly spaced
    /// footprint fractions plus the origin.
    ///
    /// `footprint_pages` is the denominator for the footprint axis; pass the
    /// total number of allocated pages to reproduce the paper's curves (pages
    /// that are allocated but never accessed stretch the curve to the right).
    pub fn scaling_curve(&self, footprint_pages: u64, samples: usize) -> Vec<ScalingPoint> {
        assert!(samples >= 1, "at least one sample point is required");
        let mut sorted: Vec<u64> = self.counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().sum();
        let footprint = footprint_pages.max(sorted.len() as u64).max(1);

        let mut curve = Vec::with_capacity(samples + 1);
        curve.push(ScalingPoint {
            footprint_fraction: 0.0,
            access_fraction: 0.0,
        });
        if total == 0 {
            for i in 1..=samples {
                curve.push(ScalingPoint {
                    footprint_fraction: i as f64 / samples as f64,
                    access_fraction: 0.0,
                });
            }
            return curve;
        }

        // Prefix sums of sorted counts.
        let mut prefix = Vec::with_capacity(sorted.len() + 1);
        prefix.push(0u64);
        for c in &sorted {
            prefix.push(prefix.last().unwrap() + c);
        }

        for i in 1..=samples {
            let frac = i as f64 / samples as f64;
            let pages = (frac * footprint as f64).round() as usize;
            let covered = pages.min(sorted.len());
            let acc = prefix[covered];
            curve.push(ScalingPoint {
                footprint_fraction: frac,
                access_fraction: acc as f64 / total as f64,
            });
        }
        curve
    }

    /// Fraction of the footprint needed to cover `access_target` (0–1) of all
    /// accesses; a concise skewness measure ("x% of pages receive y% of
    /// accesses").
    pub fn footprint_for_access_share(&self, footprint_pages: u64, access_target: f64) -> f64 {
        let curve = self.scaling_curve(footprint_pages, 1000);
        for p in &curve {
            if p.access_fraction >= access_target {
                return p.footprint_fraction;
            }
        }
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_curve_is_flat() {
        let h = PageHistogram::new();
        let curve = h.scaling_curve(10, 4);
        assert_eq!(curve.len(), 5);
        assert!(curve.iter().all(|p| p.access_fraction == 0.0));
    }

    #[test]
    fn uniform_accesses_give_linear_curve() {
        let mut h = PageHistogram::new();
        for p in 0..100 {
            h.record(p, 10);
        }
        let curve = h.scaling_curve(100, 10);
        for pt in &curve {
            assert!((pt.access_fraction - pt.footprint_fraction).abs() < 0.02);
        }
    }

    #[test]
    fn skewed_accesses_give_concave_curve() {
        let mut h = PageHistogram::new();
        // One hot page with 90% of accesses, 9 cold pages share the rest.
        h.record(0, 900);
        for p in 1..10 {
            h.record(p, 100 / 9 + 1);
        }
        let frac = h.footprint_for_access_share(10, 0.85);
        assert!(
            frac <= 0.2,
            "hot page should cover 85% of accesses, got {frac}"
        );
    }

    #[test]
    fn curve_is_monotonic_and_bounded() {
        let mut h = PageHistogram::new();
        for p in 0..37 {
            h.record(p, (p * 13 + 1) % 97);
        }
        let curve = h.scaling_curve(50, 20);
        for w in curve.windows(2) {
            assert!(w[1].access_fraction >= w[0].access_fraction);
            assert!(w[1].footprint_fraction >= w[0].footprint_fraction);
        }
        assert!((curve.last().unwrap().access_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = PageHistogram::new();
        a.record(1, 5);
        let mut b = PageHistogram::new();
        b.record(1, 3);
        b.record(2, 7);
        a.merge(&b);
        assert_eq!(a.count(1), 8);
        assert_eq!(a.count(2), 7);
        assert_eq!(a.total_accesses(), 15);
        assert_eq!(a.touched_pages(), 2);
    }

    #[test]
    fn unallocated_footprint_stretches_curve() {
        let mut h = PageHistogram::new();
        h.record(0, 100);
        // Footprint of 10 pages, only 1 touched: 10% of footprint covers all accesses.
        let f = h.footprint_for_access_share(10, 0.99);
        assert!(f <= 0.11, "got {f}");
    }
}
