//! A deterministic metrics registry.
//!
//! Counters, gauges and power-of-two histograms keyed by name in
//! `BTreeMap`s, so iteration, serialization and snapshots are totally
//! ordered — two identical runs produce byte-identical snapshots. No clocks,
//! no hashing, no sampling: the registry is as reproducible as the
//! simulation feeding it.

use serde::Serialize;
use std::collections::BTreeMap;

/// A power-of-two-bucketed histogram over `u64` observations.
///
/// Bucket `i` counts observations with `value < 2^i` that no smaller bucket
/// caught (i.e. the bucket upper bounds are 1, 2, 4, 8, ...). Exact `count`,
/// `sum`, `min` and `max` are carried alongside, so coarse buckets never
/// cost the exact aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        // Upper-bound exponent: smallest i with value < 2^i (64 for values
        // with the top bit set).
        let exp = 64 - value.leading_zeros();
        *self.buckets.entry(exp).or_insert(0) += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .map(|(&exp, &count)| HistogramBucket {
                    le: if exp >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << exp) - 1
                    },
                    count,
                })
                .collect(),
        }
    }
}

/// One bucket of a [`HistogramSnapshot`]: `count` observations with
/// `value <= le` not counted by a smaller bucket.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket (`2^i - 1`).
    pub le: u64,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// Immutable, serializable view of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Occupied buckets in ascending bound order.
    pub buckets: Vec<HistogramBucket>,
}

/// Immutable, serializable, totally ordered view of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, sorted by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The registry: named counters, gauges and histograms with deterministic
/// (sorted) iteration and snapshots.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the named counter, creating it at zero.
    pub fn inc_counter(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Read one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Read one gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Read one histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// A sorted, serializable snapshot of everything in the registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let mut m = MetricsRegistry::new();
        m.inc_counter("b", 2);
        m.inc_counter("a", 1);
        m.inc_counter("b", 3);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(m.counter("b"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 1, 3, 9] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 14);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 9);
        // 0 -> le 0; 1,1 -> le 1; 3 -> le 3; 9 -> le 15.
        let bounds: Vec<(u64, u64)> = snap.buckets.iter().map(|b| (b.le, b.count)).collect();
        assert_eq!(bounds, [(0, 1), (1, 2), (3, 1), (15, 1)]);
    }

    #[test]
    fn snapshot_serialization_is_deterministic() {
        let mut m = MetricsRegistry::new();
        m.set_gauge("z", 1.5);
        m.inc_counter("x", 7);
        m.observe("y", 42);
        let a = serde_json::to_string(&m.snapshot()).expect("serialize snapshot");
        let b = serde_json::to_string(&m.snapshot()).expect("serialize snapshot");
        assert_eq!(a, b);
        assert!(a.contains("\"x\":7"));
    }
}
