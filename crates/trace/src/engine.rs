//! The [`MemoryEngine`] trait: the contract between proxy workloads and the
//! memory-system backends that execute them.
//!
//! Workloads express their behaviour as a sequence of allocations, phase
//! markers, memory accesses and floating-point operations. A backend — the
//! full simulator in `dismem-sim`, or the lightweight [`crate::TraceRecorder`]
//! — interprets that sequence and accumulates whatever metrics it cares about.

use crate::access::AccessKind;
use crate::alloc::{ObjectHandle, PlacementPolicy};

/// Abstract memory system driven by a workload.
///
/// The five required methods are the primitive event types; the provided
/// methods are convenience patterns (sequential streams, strided sweeps,
/// object initialization) that every workload uses.
pub trait MemoryEngine {
    /// Allocates `bytes` bytes with an explicit placement policy and returns a
    /// handle to the new object. `name` identifies the object (for reports)
    /// and `site` the allocation site in the workload.
    fn alloc_with_policy(
        &mut self,
        name: &str,
        site: &str,
        bytes: u64,
        policy: PlacementPolicy,
    ) -> ObjectHandle;

    /// Frees a previously allocated object. Freed local pages become available
    /// to later allocations — the mechanism exploited by the BFS case study.
    fn free(&mut self, handle: ObjectHandle);

    /// Starts a new profiled phase (the paper's `pf_start("tag")`).
    fn phase_start(&mut self, name: &str);

    /// Ends the current profiled phase (the paper's `pf_stop()`).
    fn phase_end(&mut self);

    /// Accesses `bytes` bytes of `handle` starting at `offset`.
    ///
    /// Large contiguous ranges are interpreted as a sequential stream; the
    /// backend walks the covered cache lines.
    fn access(&mut self, handle: ObjectHandle, offset: u64, bytes: u64, kind: AccessKind);

    /// Records `n` floating-point operations attributed to the current phase.
    fn flops(&mut self, n: u64);

    // ---------------------------------------------------------------------
    // Bulk access API
    // ---------------------------------------------------------------------
    //
    // Semantically these are exactly the per-access loops their default
    // bodies spell out; a backend may override them to process the covered
    // cache lines in one batched pass (the simulator walks contiguous line
    // runs in a single call, drains DRAM events once per batch and memoizes
    // page lookups). Overrides must be observationally identical to the
    // defaults — the workspace property tests compare both paths bit for bit.
    //
    // Run geometry matters for backend fast paths: the simulator's
    // steady-state replay engine detects long sequential streams, and it
    // sees *whole runs* most cheaply when a workload expresses one logical
    // stream as one `access_range` call (or as back-to-back calls whose
    // ranges are exactly contiguous and of the same access kind — the
    // detector's streak tracking survives call boundaries, so chunked
    // streams still engage). Prefer one bulk call per logical run over
    // per-element `access` loops; for scattered elements, prefer
    // `gather_batch`/`strided_batch`, whose contiguous consecutive elements
    // the simulator merges back into runs.

    /// Bulk contiguous access: identical to [`MemoryEngine::access`], but
    /// explicitly marks the range as one batch for backends with a bulk fast
    /// path.
    fn access_range(&mut self, handle: ObjectHandle, offset: u64, bytes: u64, kind: AccessKind) {
        self.access(handle, offset, bytes, kind);
    }

    /// Bulk scattered access: identical to calling [`MemoryEngine::access`]
    /// once per offset, in order, with `elem_bytes` bytes each.
    fn gather_batch(
        &mut self,
        handle: ObjectHandle,
        offsets: &[u64],
        elem_bytes: u64,
        kind: AccessKind,
    ) {
        for &off in offsets {
            self.access(handle, off, elem_bytes, kind);
        }
    }

    /// Bulk strided sweep: identical to calling [`MemoryEngine::access`] for
    /// `count` elements of `elem_bytes` bytes, `stride_bytes` apart, starting
    /// at `start`.
    fn strided_batch(
        &mut self,
        handle: ObjectHandle,
        start: u64,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
        kind: AccessKind,
    ) {
        let mut offset = start;
        for _ in 0..count {
            self.access(handle, offset, elem_bytes, kind);
            offset += stride_bytes;
        }
    }

    // ---------------------------------------------------------------------
    // Provided convenience API
    // ---------------------------------------------------------------------

    /// Allocates with the default first-touch policy.
    fn alloc(&mut self, name: &str, site: &str, bytes: u64) -> ObjectHandle {
        self.alloc_with_policy(name, site, bytes, PlacementPolicy::FirstTouch)
    }

    /// Reads `bytes` bytes at `offset`.
    fn read(&mut self, handle: ObjectHandle, offset: u64, bytes: u64) {
        self.access(handle, offset, bytes, AccessKind::Read);
    }

    /// Writes `bytes` bytes at `offset`.
    fn write(&mut self, handle: ObjectHandle, offset: u64, bytes: u64) {
        self.access(handle, offset, bytes, AccessKind::Write);
    }

    /// Sequentially writes the whole object, modelling its initialization.
    /// Under first-touch placement this is what binds pages to tiers.
    fn touch(&mut self, handle: ObjectHandle, bytes: u64) {
        self.access_range(handle, 0, bytes, AccessKind::Write);
    }

    /// Strided sweep over `count` elements of `elem_bytes` bytes separated by
    /// `stride_bytes`, starting at `start`. Routed through
    /// [`MemoryEngine::strided_batch`] so batched backends see the whole
    /// sweep at once.
    fn strided(
        &mut self,
        handle: ObjectHandle,
        start: u64,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
        kind: AccessKind,
    ) {
        self.strided_batch(handle, start, count, elem_bytes, stride_bytes, kind);
    }

    /// Reads a set of scattered element offsets (e.g. gather of graph
    /// neighbours or Monte-Carlo table lookups).
    fn gather(&mut self, handle: ObjectHandle, offsets: &[u64], elem_bytes: u64) {
        self.gather_batch(handle, offsets, elem_bytes, AccessKind::Read);
    }

    /// Writes a set of scattered element offsets.
    fn scatter(&mut self, handle: ObjectHandle, offsets: &[u64], elem_bytes: u64) {
        self.gather_batch(handle, offsets, elem_bytes, AccessKind::Write);
    }

    /// Runs `body` bracketed by `phase_start(name)` / `phase_end()`.
    fn phase<F: FnOnce(&mut Self)>(&mut self, name: &str, body: F)
    where
        Self: Sized,
    {
        self.phase_start(name);
        body(self);
        self.phase_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TraceRecorder;

    #[test]
    fn provided_helpers_emit_expected_events() {
        let mut rec = TraceRecorder::new();
        let h = rec.alloc("A", "test", 4096);
        rec.phase_start("p1");
        rec.touch(h, 4096);
        rec.strided(h, 0, 4, 8, 64, AccessKind::Read);
        rec.gather(h, &[0, 128, 256], 8);
        rec.scatter(h, &[512], 8);
        rec.flops(10);
        rec.phase_end();

        let stats = rec.stats();
        // touch = 4096 write bytes + scatter 8 bytes
        assert_eq!(stats.bytes_written, 4096 + 8);
        // strided 4*8 + gather 3*8
        assert_eq!(stats.bytes_read, 32 + 24);
        assert_eq!(stats.total_flops, 10);
        assert_eq!(stats.phases.len(), 1);
    }

    #[test]
    fn bulk_defaults_match_per_access_loops() {
        // The default bulk implementations must be indistinguishable from the
        // spelled-out per-access loops.
        let mut bulk = TraceRecorder::new();
        let hb = bulk.alloc("A", "test", 8192);
        bulk.access_range(hb, 0, 4096, AccessKind::Write);
        bulk.gather_batch(hb, &[0, 256, 4096], 8, AccessKind::Read);
        bulk.strided_batch(hb, 64, 4, 8, 128, AccessKind::Write);

        let mut manual = TraceRecorder::new();
        let hm = manual.alloc("A", "test", 8192);
        manual.access(hm, 0, 4096, AccessKind::Write);
        for off in [0u64, 256, 4096] {
            manual.access(hm, off, 8, AccessKind::Read);
        }
        for i in 0..4u64 {
            manual.access(hm, 64 + i * 128, 8, AccessKind::Write);
        }

        let (b, m) = (bulk.stats(), manual.stats());
        assert_eq!(b.bytes_read, m.bytes_read);
        assert_eq!(b.bytes_written, m.bytes_written);
        assert_eq!(
            bulk.histogram()
                .iter()
                .collect::<std::collections::BTreeMap<_, _>>(),
            manual
                .histogram()
                .iter()
                .collect::<std::collections::BTreeMap<_, _>>()
        );
    }

    #[test]
    fn phase_closure_brackets_events() {
        let mut rec = TraceRecorder::new();
        let h = rec.alloc("A", "test", 64);
        rec.phase("compute", |e| {
            e.read(h, 0, 64);
        });
        assert_eq!(rec.stats().phases.len(), 1);
        assert_eq!(rec.stats().phases[0].name, "compute");
    }
}
