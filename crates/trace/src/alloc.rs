//! Allocation records and data-placement policies.

use serde::{Deserialize, Serialize};

/// Opaque handle returned by [`crate::MemoryEngine::alloc`] identifying a live
/// memory object (one `malloc`-like allocation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjectHandle(pub u32);

impl ObjectHandle {
    /// Raw index of the handle.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Page-placement policy attached to an allocation.
///
/// The default on the paper's emulation platform is first-touch: pages are
/// allocated from the node-local tier until it is full and then spill to the
/// memory pool. Explicit policies model `libnuma`-style placement used in the
/// BFS case study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Linux default: place on the local tier while capacity remains, then
    /// spill to the remote tier (the memory pool).
    #[default]
    FirstTouch,
    /// Force all pages of the object onto the node-local tier (fails over to
    /// the pool only if local capacity is exhausted).
    ForceLocal,
    /// Force all pages of the object onto the memory pool.
    ForceRemote,
    /// Weighted interleaving across tiers, `local : remote` pages, emulating
    /// the non-uniform interleave mempolicy for tiered memory nodes.
    Interleave {
        /// Consecutive pages placed locally per round.
        local: u32,
        /// Consecutive pages placed on the pool per round.
        remote: u32,
    },
}

impl PlacementPolicy {
    /// Returns an N:M interleave policy, validating that the ratio is not 0:0.
    pub fn interleave(local: u32, remote: u32) -> Self {
        // Overflow-safe: an overflowing sum is necessarily non-zero, so only
        // `Some(0)` (both sides zero) is invalid.
        assert!(
            local.checked_add(remote) != Some(0),
            "interleave ratio must have at least one page per round"
        );
        PlacementPolicy::Interleave { local, remote }
    }
}

/// Metadata describing one allocation made by a workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocationRecord {
    /// Handle identifying the object.
    pub handle: ObjectHandle,
    /// Human-readable object name (e.g. `"Parents"`, `"matrix A"`).
    pub name: String,
    /// Allocation site (e.g. `"bfs.rs:init"`), used by the profiler to
    /// attribute memory accesses to program locations.
    pub site: String,
    /// Requested size in bytes.
    pub bytes: u64,
    /// Monotonically increasing allocation order (0 = first allocation). With
    /// first-touch placement, order determines which objects end up local.
    pub order: usize,
    /// Placement policy requested for this allocation.
    pub policy: PlacementPolicy,
    /// Whether the object has been freed.
    pub freed: bool,
}

impl AllocationRecord {
    /// Creates a new live allocation record.
    pub fn new(
        handle: ObjectHandle,
        name: impl Into<String>,
        site: impl Into<String>,
        bytes: u64,
        order: usize,
        policy: PlacementPolicy,
    ) -> Self {
        Self {
            handle,
            name: name.into(),
            site: site.into(),
            bytes,
            order,
            policy,
            freed: false,
        }
    }

    /// Number of whole pages backing the object.
    pub fn pages(&self) -> u64 {
        crate::access::pages_for(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::PAGE_SIZE;

    #[test]
    fn default_policy_is_first_touch() {
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::FirstTouch);
    }

    #[test]
    fn interleave_constructor() {
        let p = PlacementPolicy::interleave(3, 1);
        assert_eq!(
            p,
            PlacementPolicy::Interleave {
                local: 3,
                remote: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "interleave ratio")]
    fn interleave_rejects_zero_ratio() {
        let _ = PlacementPolicy::interleave(0, 0);
    }

    #[test]
    fn interleave_accepts_saturating_ratios() {
        // `u32::MAX + u32::MAX` overflows u32; the validation must not wrap
        // around to a spurious rejection (or a spurious acceptance of 0:0).
        let p = PlacementPolicy::interleave(u32::MAX, u32::MAX);
        assert_eq!(
            p,
            PlacementPolicy::Interleave {
                local: u32::MAX,
                remote: u32::MAX
            }
        );
        let p = PlacementPolicy::interleave(u32::MAX, 1);
        assert!(matches!(p, PlacementPolicy::Interleave { remote: 1, .. }));
    }

    #[test]
    fn allocation_record_pages() {
        let rec = AllocationRecord::new(
            ObjectHandle(0),
            "A",
            "test",
            PAGE_SIZE * 2 + 1,
            0,
            PlacementPolicy::FirstTouch,
        );
        assert_eq!(rec.pages(), 3);
        assert!(!rec.freed);
    }

    #[test]
    fn handle_index() {
        assert_eq!(ObjectHandle(7).index(), 7);
    }
}
