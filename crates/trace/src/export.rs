//! Trace exporters: JSON-lines and Chrome trace-event format.
//!
//! Both exporters are pure functions of the event list, so a recorded run
//! exports byte-identically every time. The JSONL schema is the committed
//! contract (`docs/TRACE_SCHEMA.json`, asserted equal to [`schema_json`] by
//! the golden-trace tests), and [`validate_jsonl`] checks an emitted stream
//! against it — CI runs the validation on every `traced_tiering_run`
//! example output.

use crate::flight::TraceEvent;
use serde_json::JsonValue;

/// Event vocabulary: variant name → required payload fields, in
/// serialization order. This table *is* the JSONL schema; [`validate_jsonl`]
/// and [`schema_json`] both derive from it.
const EVENT_FIELDS: &[(&str, &[&str])] = &[
    (
        "EpochClosed",
        &[
            "epoch",
            "app_lines",
            "hot_pages",
            "dwell_epochs",
            "hot_set_shifts",
            "migrated_pages",
        ],
    ),
    (
        "MigrationApplied",
        &["epoch", "app_lines", "page", "from", "to"],
    ),
    ("ReplayEngaged", &["app_lines", "mode"]),
    ("ReplayExited", &["app_lines", "mode", "reason"]),
    ("TierSpill", &["app_lines", "pages"]),
    ("CampaignCellStarted", &["cell_index", "cell", "attempt"]),
    (
        "CampaignCellFinished",
        &["cell_index", "cell", "attempt", "ok"],
    ),
    ("CampaignCellRetried", &["cell_index", "cell", "attempt"]),
    (
        "CampaignCellQuarantined",
        &["cell_index", "cell", "attempts"],
    ),
    ("JournalRecordRejected", &["record_index", "reason"]),
];

/// Export events as JSON lines: one `{"seq":N,"event":{...}}` object per
/// line, `seq` counting from 0 in emission order.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for (seq, event) in events.iter().enumerate() {
        out.push_str("{\"seq\":");
        out.push_str(&seq.to_string());
        out.push_str(",\"event\":");
        out.push_str(&serde_json::to_string(event).unwrap_or_default());
        out.push_str("}\n");
    }
    out
}

/// The committed JSONL schema as pretty JSON: the line envelope plus the
/// event vocabulary with each variant's required fields.
pub fn schema_json() -> String {
    let mut out = String::new();
    out.push_str("{\n  \"format\": \"dismem-trace-jsonl\",\n  \"version\": 1,\n");
    out.push_str("  \"line\": [\"seq\", \"event\"],\n  \"events\": {\n");
    for (i, (name, fields)) in EVENT_FIELDS.iter().enumerate() {
        out.push_str("    \"");
        out.push_str(name);
        out.push_str("\": [");
        for (j, f) in fields.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(f);
            out.push('"');
        }
        out.push(']');
        if i + 1 < EVENT_FIELDS.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

/// Validate a JSONL stream against the schema: every line must parse, carry
/// the `{"seq":N,"event":{...}}` envelope with consecutive `seq` values,
/// and each event must be exactly one known variant with exactly its
/// required fields. Returns the number of validated lines.
pub fn validate_jsonl(jsonl: &str) -> Result<u64, String> {
    let mut validated = 0u64;
    for (lineno, line) in jsonl.lines().enumerate() {
        let value = serde_json::parse_value(line)
            .map_err(|e| format!("line {}: not valid JSON: {e}", lineno + 1))?;
        let seq = value
            .get("seq")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("line {}: missing integer \"seq\"", lineno + 1))?;
        if seq != lineno as u64 {
            return Err(format!("line {}: seq {seq} is not consecutive", lineno + 1));
        }
        let event = value
            .get("event")
            .ok_or_else(|| format!("line {}: missing \"event\"", lineno + 1))?;
        let members = match event {
            JsonValue::Object(members) if members.len() == 1 => members,
            _ => {
                return Err(format!(
                    "line {}: event must be a single-variant object",
                    lineno + 1
                ))
            }
        };
        let (variant, payload) = &members[0];
        let required = EVENT_FIELDS
            .iter()
            .find(|(name, _)| name == variant)
            .map(|(_, fields)| *fields)
            .ok_or_else(|| format!("line {}: unknown event \"{variant}\"", lineno + 1))?;
        let payload_members = match payload {
            JsonValue::Object(members) => members,
            _ => {
                return Err(format!(
                    "line {}: {variant} payload must be an object",
                    lineno + 1
                ))
            }
        };
        let got: Vec<&str> = payload_members.iter().map(|(k, _)| k.as_str()).collect();
        if got != *required {
            return Err(format!(
                "line {}: {variant} fields {got:?} do not match schema {required:?}",
                lineno + 1
            ));
        }
        validated += 1;
    }
    Ok(validated)
}

/// Export events in Chrome trace-event format (the JSON Array Format plus
/// `displayTimeUnit`), openable directly in Perfetto / `chrome://tracing`.
///
/// Simulated clocks map onto the trace timebase as microseconds:
/// application DRAM lines for simulator tracks, the cell index for the
/// campaign track. Thread lanes: 1 = tiering (epochs as complete spans,
/// migrations and spills as instants), 2 = replay transitions (instants),
/// 3 = campaign cells (finished cells as unit spans, everything else as
/// instants).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut entries: Vec<String> = Vec::new();
    let mut last_epoch_close: u64 = 0;
    for event in events {
        let ts = event.timestamp();
        let args = payload_json(event);
        match event {
            TraceEvent::EpochClosed { app_lines, .. } => {
                let dur = app_lines.saturating_sub(last_epoch_close).max(1);
                entries.push(format!(
                    "{{\"name\":\"epoch\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                     \"ts\":{last_epoch_close},\"dur\":{dur},\"args\":{args}}}"
                ));
                last_epoch_close = *app_lines;
            }
            TraceEvent::MigrationApplied { .. } => {
                entries.push(instant("migration", 1, ts, &args));
            }
            TraceEvent::TierSpill { .. } => {
                entries.push(instant("spill", 1, ts, &args));
            }
            TraceEvent::ReplayEngaged { .. } => {
                entries.push(instant("replay-engaged", 2, ts, &args));
            }
            TraceEvent::ReplayExited { .. } => {
                entries.push(instant("replay-exited", 2, ts, &args));
            }
            TraceEvent::CampaignCellFinished { cell, .. } => {
                entries.push(format!(
                    "{{\"name\":{},\"ph\":\"X\",\"pid\":1,\"tid\":3,\
                     \"ts\":{ts},\"dur\":1,\"args\":{args}}}",
                    json_str(cell)
                ));
            }
            TraceEvent::CampaignCellStarted { .. } => {
                entries.push(instant("cell-started", 3, ts, &args));
            }
            TraceEvent::CampaignCellRetried { .. } => {
                entries.push(instant("cell-retried", 3, ts, &args));
            }
            TraceEvent::CampaignCellQuarantined { .. } => {
                entries.push(instant("cell-quarantined", 3, ts, &args));
            }
            TraceEvent::JournalRecordRejected { .. } => {
                entries.push(instant("record-rejected", 3, ts, &args));
            }
        }
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

fn instant(name: &str, tid: u32, ts: u64, args: &str) -> String {
    format!(
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\
         \"ts\":{ts},\"args\":{args}}}"
    )
}

fn json_str(s: &str) -> String {
    serde_json::to_string(&s).unwrap_or_default()
}

/// The payload object of an externally tagged event: `{"Name":{...}}`
/// without the tag envelope.
fn payload_json(event: &TraceEvent) -> String {
    let tagged = serde_json::to_string(event).unwrap_or_default();
    match tagged.find(':') {
        Some(colon) if tagged.ends_with('}') => tagged[colon + 1..tagged.len() - 1].to_string(),
        _ => tagged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{ReplayMode, TraceTier};

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::TierSpill {
                app_lines: 10,
                pages: 2,
            },
            TraceEvent::ReplayEngaged {
                app_lines: 20,
                mode: ReplayMode::Window,
            },
            TraceEvent::EpochClosed {
                epoch: 1,
                app_lines: 64,
                hot_pages: 3,
                dwell_epochs: 0,
                hot_set_shifts: 0,
                migrated_pages: 1,
            },
            TraceEvent::MigrationApplied {
                epoch: 1,
                app_lines: 64,
                page: 5,
                from: TraceTier::Pool,
                to: TraceTier::Local,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_the_schema() {
        let jsonl = to_jsonl(&sample());
        assert_eq!(validate_jsonl(&jsonl), Ok(4));
    }

    #[test]
    fn validation_rejects_foreign_fields() {
        let bad = "{\"seq\":0,\"event\":{\"TierSpill\":{\"app_lines\":1}}}";
        assert!(validate_jsonl(bad).is_err());
        let unknown = "{\"seq\":0,\"event\":{\"Mystery\":{}}}";
        assert!(validate_jsonl(unknown).is_err());
        let gap = "{\"seq\":1,\"event\":{\"TierSpill\":{\"app_lines\":1,\"pages\":1}}}";
        assert!(validate_jsonl(gap).is_err());
    }

    #[test]
    fn chrome_trace_has_spans_and_instants() {
        let chrome = to_chrome_trace(&sample());
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        assert!(chrome.contains("\"name\":\"epoch\""));
        assert!(chrome.contains("\"name\":\"migration\""));
        // Valid JSON end to end.
        assert!(serde_json::parse_value(&chrome).is_ok());
    }

    #[test]
    fn exports_are_deterministic() {
        let events = sample();
        assert_eq!(to_jsonl(&events), to_jsonl(&events));
        assert_eq!(to_chrome_trace(&events), to_chrome_trace(&events));
    }

    #[test]
    fn schema_covers_every_variant() {
        let schema = schema_json();
        for (name, _) in EVENT_FIELDS {
            assert!(schema.contains(name), "schema misses {name}");
        }
        assert!(serde_json::parse_value(&schema).is_ok());
    }
}
