//! Phase markers — the `pf_start("tag")` / `pf_stop()` tracing API of the
//! paper's profiler, used to attribute measurements to application kernels.

use serde::{Deserialize, Serialize};

/// Identifier of a profiled phase within one run, in start order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhaseId(pub u32);

impl PhaseId {
    /// Raw index of the phase.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Metadata about a profiled phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Identifier (position in start order).
    pub id: PhaseId,
    /// Tag passed to `phase_start`, e.g. `"p1-init"` or `"p2-solve"`.
    pub name: String,
}

impl PhaseRecord {
    /// Creates a phase record.
    pub fn new(id: PhaseId, name: impl Into<String>) -> Self {
        Self {
            id,
            name: name.into(),
        }
    }

    /// Conventional label used by the paper's figures: `"<workload>-pN"`.
    pub fn paper_label(&self, workload: &str) -> String {
        format!("{workload}-p{}", self.id.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_record_label() {
        let p = PhaseRecord::new(PhaseId(1), "solve");
        assert_eq!(p.paper_label("Hypre"), "Hypre-p2");
        assert_eq!(p.id.index(), 1);
    }
}
