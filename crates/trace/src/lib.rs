//! # dismem-trace
//!
//! Foundational vocabulary for the dismem workspace: memory-access events,
//! allocation records, phase markers, the [`MemoryEngine`] trait that workloads
//! are written against, and a simple in-memory [`TraceRecorder`].
//!
//! The layering mirrors the paper's tooling: applications are instrumented with
//! allocation hooks and `pf_start`/`pf_stop` phase markers, and the profiler
//! consumes the resulting event stream. Here, proxy workloads drive any
//! implementation of [`MemoryEngine`] — usually the simulator in `dismem-sim`,
//! but also the lightweight recorder in this crate for unit testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod alloc;
pub mod engine;
pub mod histogram;
pub mod phase;
pub mod recorder;

pub use access::{AccessKind, MemAccess, CACHE_LINE_SIZE, PAGE_SIZE};
pub use alloc::{AllocationRecord, ObjectHandle, PlacementPolicy};
pub use engine::MemoryEngine;
pub use histogram::PageHistogram;
pub use phase::{PhaseId, PhaseRecord};
pub use recorder::{TraceRecorder, TraceStats};
