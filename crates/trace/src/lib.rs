//! # dismem-trace
//!
//! Foundational vocabulary for the dismem workspace: memory-access events,
//! allocation records, phase markers, the [`MemoryEngine`] trait that workloads
//! are written against, and a simple in-memory [`TraceRecorder`].
//!
//! The layering mirrors the paper's tooling: applications are instrumented with
//! allocation hooks and `pf_start`/`pf_stop` phase markers, and the profiler
//! consumes the resulting event stream. Here, proxy workloads drive any
//! implementation of [`MemoryEngine`] — usually the simulator in `dismem-sim`,
//! but also the lightweight recorder in this crate for unit testing.
//!
//! The crate is also the workspace's **flight recorder** ([`flight`],
//! [`metrics`], [`export`]): a typed [`TraceEvent`] stream stamped by
//! simulated clocks only, the passive [`Recorder`] sink trait with the
//! zero-cost [`NullRecorder`] default and the in-memory [`FlightRecorder`],
//! a deterministic [`MetricsRegistry`], and JSONL / Chrome-trace exporters.
//! See `docs/ARCHITECTURE.md` §7 for the observability contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod alloc;
pub mod engine;
pub mod export;
pub mod flight;
pub mod histogram;
pub mod metrics;
pub mod phase;
pub mod recorder;

pub use access::{AccessKind, MemAccess, CACHE_LINE_SIZE, PAGE_SIZE};
pub use alloc::{AllocationRecord, ObjectHandle, PlacementPolicy};
pub use engine::MemoryEngine;
pub use export::{schema_json, to_chrome_trace, to_jsonl, validate_jsonl};
pub use flight::{FlightRecorder, NullRecorder, Recorder, ReplayMode, TraceEvent, TraceTier};
pub use histogram::PageHistogram;
pub use metrics::{
    Histogram, HistogramBucket, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
};
pub use phase::{PhaseId, PhaseRecord};
pub use recorder::{TraceRecorder, TraceStats};
