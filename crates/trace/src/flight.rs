//! The deterministic flight recorder: typed trace events, the [`Recorder`]
//! sink trait, and the in-memory [`FlightRecorder`].
//!
//! Every event is timestamped by *simulated* clocks only — application DRAM
//! lines, the tiering epoch ordinal, or the campaign cell index — never by a
//! wall clock, so a recorded trace is itself a bit-reproducible artifact:
//! two runs of the same configuration emit byte-identical traces.
//!
//! Emission is read-only by construction: recorders observe the engine, they
//! never feed anything back into it, and a recorded run's `RunReport` is
//! bit-identical to an unrecorded one (proptest-pinned in
//! `tests/properties.rs`). The sanctioned emission points are the same choke
//! points the workspace's standing contracts already pin — chunk closes,
//! migration applies, replay mode transitions, and the campaign work-queue —
//! and the `trace-hygiene` lint rule keeps the list closed.

use crate::metrics::MetricsRegistry;
use serde::Serialize;
use std::any::Any;

/// Memory tier named by a trace event.
///
/// `dismem-trace` sits below the simulator in the dependency graph, so
/// events carry this trace-local mirror of the simulator's tier enum rather
/// than the simulator type itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TraceTier {
    /// Node-local DRAM.
    Local,
    /// The disaggregated memory pool.
    Pool,
}

/// Which replay escalation level a [`TraceEvent::ReplayEngaged`] /
/// [`TraceEvent::ReplayExited`] transition refers to (§1.1 of
/// `docs/ARCHITECTURE.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ReplayMode {
    /// Closed-form page-window replay.
    Window,
    /// Whole-pass replay.
    Pass,
    /// Stride-aware element-sequence replay.
    Strided,
}

/// A typed observation emitted at one of the sanctioned emission points.
///
/// Timestamps are simulated clocks: `app_lines` counts application DRAM
/// lines (migration traffic excluded, exactly like the tiering epoch clock),
/// `epoch` is the tiering epoch ordinal, `cell_index` is the position of a
/// cell in the deterministic campaign grid order.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum TraceEvent {
    /// A tiering epoch closed at a chunk boundary.
    EpochClosed {
        /// Epoch ordinal (1-based, matching the tracker).
        epoch: u64,
        /// Application DRAM lines simulated so far.
        app_lines: u64,
        /// Pages in the epoch's hot set (within half the maximum decayed
        /// score).
        hot_pages: u64,
        /// Cumulative dwell epochs measured so far.
        dwell_epochs: u64,
        /// Cumulative hot-set shifts observed so far.
        hot_set_shifts: u64,
        /// Pages migrated by the policy decision this epoch closed with.
        migrated_pages: u64,
    },
    /// The migration engine rebound one page.
    MigrationApplied {
        /// Epoch ordinal the decision was made in.
        epoch: u64,
        /// Application DRAM lines simulated so far.
        app_lines: u64,
        /// The page number (page-size granular, workload address space).
        page: u64,
        /// Tier the page was bound to before the move.
        from: TraceTier,
        /// Tier the page is bound to after the move.
        to: TraceTier,
    },
    /// The replay engine engaged a closed form.
    ReplayEngaged {
        /// Application DRAM lines at the chunk close that drained the
        /// transition (replay transitions are collected inside the walk and
        /// drained at the next chunk boundary).
        app_lines: u64,
        /// Escalation level that engaged.
        mode: ReplayMode,
    },
    /// The replay engine left a closed form.
    ReplayExited {
        /// Application DRAM lines at the draining chunk close.
        app_lines: u64,
        /// Escalation level that exited.
        mode: ReplayMode,
        /// Why it exited: `pattern-break`, `hard-reset` or `cache-reset`.
        reason: String,
    },
    /// First-touch placement spilled pages to the pool because the local
    /// tier was full.
    TierSpill {
        /// Application DRAM lines at the chunk close that observed the
        /// spill.
        app_lines: u64,
        /// Pages spilled since the previous observation.
        pages: u64,
    },
    /// A campaign work-queue cell started an attempt.
    CampaignCellStarted {
        /// Position of the cell in the deterministic grid order.
        cell_index: u64,
        /// The cell's stable id (`BFS/tiny/aware/c500/upi/s53596`).
        cell: String,
        /// Attempt number (1-based).
        attempt: u32,
    },
    /// A campaign cell finished and was journaled.
    CampaignCellFinished {
        /// Position of the cell in the deterministic grid order.
        cell_index: u64,
        /// The cell's stable id.
        cell: String,
        /// Attempts consumed (1 = first try succeeded).
        attempt: u32,
        /// Whether the cell completed (false = journaled as failed).
        ok: bool,
    },
    /// A campaign cell panicked or errored and was re-queued.
    CampaignCellRetried {
        /// Position of the cell in the deterministic grid order.
        cell_index: u64,
        /// The cell's stable id.
        cell: String,
        /// The attempt that just failed (1-based).
        attempt: u32,
    },
    /// A campaign cell exhausted its attempts and was quarantined.
    CampaignCellQuarantined {
        /// Position of the cell in the deterministic grid order.
        cell_index: u64,
        /// The cell's stable id.
        cell: String,
        /// Attempts consumed.
        attempts: u32,
    },
    /// Resume dropped a journal record instead of replaying it.
    JournalRecordRejected {
        /// Position of the record in the journal (0-based).
        record_index: u64,
        /// Why: `foreign-digest`, `unknown-cell` or `torn-tail`.
        reason: String,
    },
}

impl TraceEvent {
    /// The externally-tagged variant name, as serialized.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::EpochClosed { .. } => "EpochClosed",
            TraceEvent::MigrationApplied { .. } => "MigrationApplied",
            TraceEvent::ReplayEngaged { .. } => "ReplayEngaged",
            TraceEvent::ReplayExited { .. } => "ReplayExited",
            TraceEvent::TierSpill { .. } => "TierSpill",
            TraceEvent::CampaignCellStarted { .. } => "CampaignCellStarted",
            TraceEvent::CampaignCellFinished { .. } => "CampaignCellFinished",
            TraceEvent::CampaignCellRetried { .. } => "CampaignCellRetried",
            TraceEvent::CampaignCellQuarantined { .. } => "CampaignCellQuarantined",
            TraceEvent::JournalRecordRejected { .. } => "JournalRecordRejected",
        }
    }

    /// The event's simulated timestamp: application DRAM lines for simulator
    /// events, the cell/record index for campaign events.
    pub fn timestamp(&self) -> u64 {
        match self {
            TraceEvent::EpochClosed { app_lines, .. }
            | TraceEvent::MigrationApplied { app_lines, .. }
            | TraceEvent::ReplayEngaged { app_lines, .. }
            | TraceEvent::ReplayExited { app_lines, .. }
            | TraceEvent::TierSpill { app_lines, .. } => *app_lines,
            TraceEvent::CampaignCellStarted { cell_index, .. }
            | TraceEvent::CampaignCellFinished { cell_index, .. }
            | TraceEvent::CampaignCellRetried { cell_index, .. }
            | TraceEvent::CampaignCellQuarantined { cell_index, .. } => *cell_index,
            TraceEvent::JournalRecordRejected { record_index, .. } => *record_index,
        }
    }

    /// Whether the event is part of the *semantic* stream: observations of
    /// what the simulation computed (epoch closes, migrations, spills),
    /// which must be identical across the per-line, batched and replay
    /// pipelines. The rest — replay transitions, campaign scheduling — are
    /// pipeline- or driver-level diagnostics and legitimately differ.
    pub fn is_semantic(&self) -> bool {
        matches!(
            self,
            TraceEvent::EpochClosed { .. }
                | TraceEvent::MigrationApplied { .. }
                | TraceEvent::TierSpill { .. }
        )
    }
}

/// A sink for trace events.
///
/// Implementations must be passive: `record_event` may not influence the
/// caller in any way (the recorded-run bit-identity proptest enforces this
/// for the shipped recorders). The engine only constructs events when a
/// recorder is installed, so the default un-recorded configuration allocates
/// nothing on the simulation path.
pub trait Recorder {
    /// Record one event.
    fn record_event(&mut self, event: TraceEvent);

    /// Whether the recorder wants events at all. Emission points may skip
    /// event construction entirely when this is false.
    fn enabled(&self) -> bool {
        true
    }

    /// Recover the concrete recorder after the engine is done with it.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// The recorder that records nothing.
///
/// This is the explicit spelling of the default: an engine with no recorder
/// installed behaves exactly like one with a `NullRecorder`, but skips even
/// the virtual call. `enabled()` returns false so emission points drop
/// events before constructing them.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record_event(&mut self, _event: TraceEvent) {}

    fn enabled(&self) -> bool {
        false
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The in-memory flight recorder: keeps every event in emission order and
/// folds each one into a deterministic [`MetricsRegistry`].
#[derive(Debug, Default)]
pub struct FlightRecorder {
    events: Vec<TraceEvent>,
    metrics: MetricsRegistry,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// The metrics registry fed by the recorded events.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Decompose into the event list and the metrics registry.
    pub fn into_parts(self) -> (Vec<TraceEvent>, MetricsRegistry) {
        (self.events, self.metrics)
    }
}

impl Recorder for FlightRecorder {
    fn record_event(&mut self, event: TraceEvent) {
        self.metrics.inc_counter("trace.events_total", 1);
        match &event {
            TraceEvent::EpochClosed {
                hot_pages,
                migrated_pages,
                ..
            } => {
                self.metrics.inc_counter("sim.epochs_closed", 1);
                self.metrics
                    .inc_counter("sim.migrated_pages_total", *migrated_pages);
                self.metrics.set_gauge("sim.hot_pages", *hot_pages as f64);
                self.metrics.observe("sim.epoch_hot_pages", *hot_pages);
            }
            TraceEvent::MigrationApplied { .. } => {
                self.metrics.inc_counter("sim.migrations_applied", 1);
            }
            TraceEvent::ReplayEngaged { .. } => {
                self.metrics.inc_counter("replay.engaged", 1);
            }
            TraceEvent::ReplayExited { .. } => {
                self.metrics.inc_counter("replay.exited", 1);
            }
            TraceEvent::TierSpill { pages, .. } => {
                self.metrics.inc_counter("sim.spilled_pages_total", *pages);
            }
            TraceEvent::CampaignCellStarted { .. } => {
                self.metrics.inc_counter("campaign.cells_started", 1);
            }
            TraceEvent::CampaignCellFinished { attempt, ok, .. } => {
                let key = if *ok {
                    "campaign.cells_completed"
                } else {
                    "campaign.cells_failed"
                };
                self.metrics.inc_counter(key, 1);
                self.metrics
                    .observe("campaign.cell_attempts", u64::from(*attempt));
            }
            TraceEvent::CampaignCellRetried { .. } => {
                self.metrics.inc_counter("campaign.cells_retried", 1);
            }
            TraceEvent::CampaignCellQuarantined { .. } => {
                self.metrics.inc_counter("campaign.cells_quarantined", 1);
            }
            TraceEvent::JournalRecordRejected { .. } => {
                self.metrics.inc_counter("journal.records_rejected", 1);
            }
        }
        self.events.push(event);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fold_into_metrics() {
        let mut rec = FlightRecorder::new();
        rec.record_event(TraceEvent::EpochClosed {
            epoch: 1,
            app_lines: 100,
            hot_pages: 4,
            dwell_epochs: 0,
            hot_set_shifts: 0,
            migrated_pages: 2,
        });
        rec.record_event(TraceEvent::MigrationApplied {
            epoch: 1,
            app_lines: 100,
            page: 7,
            from: TraceTier::Pool,
            to: TraceTier::Local,
        });
        assert_eq!(rec.events().len(), 2);
        let snap = rec.metrics().snapshot();
        assert_eq!(snap.counters.get("sim.epochs_closed"), Some(&1));
        assert_eq!(snap.counters.get("sim.migrations_applied"), Some(&1));
        assert_eq!(snap.counters.get("sim.migrated_pages_total"), Some(&2));
        assert_eq!(snap.counters.get("trace.events_total"), Some(&2));
    }

    #[test]
    fn null_recorder_is_disabled() {
        let rec = NullRecorder;
        assert!(!rec.enabled());
    }

    #[test]
    fn semantic_split_matches_the_pipeline_contract() {
        let semantic = TraceEvent::TierSpill {
            app_lines: 1,
            pages: 1,
        };
        let diagnostic = TraceEvent::ReplayEngaged {
            app_lines: 1,
            mode: ReplayMode::Pass,
        };
        assert!(semantic.is_semantic());
        assert!(!diagnostic.is_semantic());
    }

    #[test]
    fn recorder_round_trips_through_any() {
        let mut rec: Box<dyn Recorder> = Box::new(FlightRecorder::new());
        rec.record_event(TraceEvent::TierSpill {
            app_lines: 5,
            pages: 3,
        });
        let concrete = rec
            .into_any()
            .downcast::<FlightRecorder>()
            .expect("flight recorder comes back");
        assert_eq!(concrete.events().len(), 1);
    }
}
