//! A lightweight [`MemoryEngine`] implementation that records events without
//! simulating a memory system. Used for workload unit tests and for computing
//! footprint/access statistics independent of any machine model.

use crate::access::{pages_for, AccessKind, PAGE_SIZE};
use crate::alloc::{AllocationRecord, ObjectHandle, PlacementPolicy};
use crate::engine::MemoryEngine;
use crate::histogram::PageHistogram;
use crate::phase::{PhaseId, PhaseRecord};
use serde::{Deserialize, Serialize};

/// Per-phase statistics captured by the recorder.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase tag.
    pub name: String,
    /// Bytes read by demand accesses.
    pub bytes_read: u64,
    /// Bytes written by demand accesses.
    pub bytes_written: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Number of access events (bulk accesses count once).
    pub access_events: u64,
}

impl PhaseStats {
    /// Arithmetic intensity of the phase in flops per byte of traffic
    /// (before any cache filtering).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.bytes_read + self.bytes_written;
        if bytes == 0 {
            return 0.0;
        }
        self.flops as f64 / bytes as f64
    }
}

/// Aggregate statistics over a recorded run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total floating-point operations.
    pub total_flops: u64,
    /// Per-phase breakdown, in phase-start order.
    pub phases: Vec<PhaseStats>,
    /// Peak total bytes of live allocations observed during the run.
    pub peak_footprint_bytes: u64,
    /// Bytes of live allocations at the end of the run.
    pub final_footprint_bytes: u64,
    /// Number of allocations performed.
    pub allocation_count: usize,
}

/// In-memory trace recorder.
///
/// Addresses are assigned by a page-aligned bump allocator so page-level
/// histograms can be computed without a real address-space model.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    allocations: Vec<AllocationRecord>,
    /// Base address of each allocation, indexed by handle.
    bases: Vec<u64>,
    next_addr: u64,
    live_bytes: u64,
    peak_bytes: u64,
    phases: Vec<PhaseStats>,
    phase_records: Vec<PhaseRecord>,
    current_phase: Option<usize>,
    /// Stats accumulated outside any phase.
    ambient: PhaseStats,
    histogram: PageHistogram,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Aggregate statistics of everything recorded so far.
    pub fn stats(&self) -> TraceStats {
        let mut bytes_read = self.ambient.bytes_read;
        let mut bytes_written = self.ambient.bytes_written;
        let mut total_flops = self.ambient.flops;
        for p in &self.phases {
            bytes_read += p.bytes_read;
            bytes_written += p.bytes_written;
            total_flops += p.flops;
        }
        TraceStats {
            bytes_read,
            bytes_written,
            total_flops,
            phases: self.phases.clone(),
            peak_footprint_bytes: self.peak_bytes,
            final_footprint_bytes: self.live_bytes,
            allocation_count: self.allocations.len(),
        }
    }

    /// Allocation records in allocation order.
    pub fn allocations(&self) -> &[AllocationRecord] {
        &self.allocations
    }

    /// Phase records in start order.
    pub fn phase_records(&self) -> &[PhaseRecord] {
        &self.phase_records
    }

    /// Page access histogram over the whole run.
    pub fn histogram(&self) -> &PageHistogram {
        &self.histogram
    }

    /// Peak footprint in bytes.
    pub fn peak_footprint(&self) -> u64 {
        self.peak_bytes
    }

    fn current(&mut self) -> &mut PhaseStats {
        match self.current_phase {
            Some(i) => &mut self.phases[i],
            None => &mut self.ambient,
        }
    }
}

impl MemoryEngine for TraceRecorder {
    fn alloc_with_policy(
        &mut self,
        name: &str,
        site: &str,
        bytes: u64,
        policy: PlacementPolicy,
    ) -> ObjectHandle {
        let handle = ObjectHandle(self.allocations.len() as u32);
        let record =
            AllocationRecord::new(handle, name, site, bytes, self.allocations.len(), policy);
        self.allocations.push(record);
        self.bases.push(self.next_addr);
        self.next_addr += pages_for(bytes) * PAGE_SIZE;
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        handle
    }

    fn free(&mut self, handle: ObjectHandle) {
        let rec = &mut self.allocations[handle.index()];
        assert!(!rec.freed, "double free of object {}", rec.name);
        rec.freed = true;
        self.live_bytes = self.live_bytes.saturating_sub(rec.bytes);
    }

    fn phase_start(&mut self, name: &str) {
        assert!(
            self.current_phase.is_none(),
            "phase_start while phase '{}' is still open",
            self.phases[self.current_phase.unwrap()].name
        );
        let id = PhaseId(self.phases.len() as u32);
        self.phase_records.push(PhaseRecord::new(id, name));
        self.phases.push(PhaseStats {
            name: name.to_string(),
            ..Default::default()
        });
        self.current_phase = Some(self.phases.len() - 1);
    }

    fn phase_end(&mut self) {
        assert!(
            self.current_phase.is_some(),
            "phase_end without phase_start"
        );
        self.current_phase = None;
    }

    fn access(&mut self, handle: ObjectHandle, offset: u64, bytes: u64, kind: AccessKind) {
        let rec = &self.allocations[handle.index()];
        debug_assert!(
            offset + bytes <= pages_for(rec.bytes) * PAGE_SIZE,
            "access past end of object {} (offset {offset} + {bytes} > {})",
            rec.name,
            rec.bytes
        );
        let base = self.bases[handle.index()];
        let addr = base + offset;
        // Page histogram at page granularity.
        if bytes > 0 {
            let first = addr / PAGE_SIZE;
            let last = (addr + bytes - 1) / PAGE_SIZE;
            for page in first..=last {
                self.histogram.record(page, 1);
            }
        }
        let stats = self.current();
        stats.access_events += 1;
        match kind {
            AccessKind::Read => stats.bytes_read += bytes,
            AccessKind::Write => stats.bytes_written += bytes,
        }
    }

    fn flops(&mut self, n: u64) {
        self.current().flops += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_tracking_with_free() {
        let mut rec = TraceRecorder::new();
        let a = rec.alloc("A", "t", 10_000);
        let _b = rec.alloc("B", "t", 20_000);
        assert_eq!(rec.peak_footprint(), 30_000);
        rec.free(a);
        let stats = rec.stats();
        assert_eq!(stats.peak_footprint_bytes, 30_000);
        assert_eq!(stats.final_footprint_bytes, 20_000);
        assert_eq!(stats.allocation_count, 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut rec = TraceRecorder::new();
        let a = rec.alloc("A", "t", 100);
        rec.free(a);
        rec.free(a);
    }

    #[test]
    fn phase_attribution() {
        let mut rec = TraceRecorder::new();
        let a = rec.alloc("A", "t", 4096);
        rec.flops(5); // ambient
        rec.phase_start("p1");
        rec.read(a, 0, 1024);
        rec.flops(100);
        rec.phase_end();
        rec.phase_start("p2");
        rec.write(a, 0, 2048);
        rec.phase_end();

        let stats = rec.stats();
        assert_eq!(stats.phases.len(), 2);
        assert_eq!(stats.phases[0].bytes_read, 1024);
        assert_eq!(stats.phases[0].flops, 100);
        assert_eq!(stats.phases[1].bytes_written, 2048);
        assert_eq!(stats.total_flops, 105);
    }

    #[test]
    #[should_panic(expected = "phase_start while phase")]
    fn nested_phase_panics() {
        let mut rec = TraceRecorder::new();
        rec.phase_start("a");
        rec.phase_start("b");
    }

    #[test]
    #[should_panic(expected = "phase_end without")]
    fn unbalanced_phase_end_panics() {
        let mut rec = TraceRecorder::new();
        rec.phase_end();
    }

    #[test]
    fn arithmetic_intensity() {
        let p = PhaseStats {
            bytes_read: 50,
            bytes_written: 50,
            flops: 400,
            ..Default::default()
        };
        assert!((p.arithmetic_intensity() - 4.0).abs() < 1e-12);
        let empty = PhaseStats::default();
        assert_eq!(empty.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn histogram_separates_objects_by_page() {
        let mut rec = TraceRecorder::new();
        let a = rec.alloc("A", "t", PAGE_SIZE);
        let b = rec.alloc("B", "t", PAGE_SIZE);
        rec.read(a, 0, 8);
        rec.read(b, 0, 8);
        rec.read(b, 64, 8);
        assert_eq!(rec.histogram().touched_pages(), 2);
        assert_eq!(rec.histogram().total_accesses(), 3);
    }
}
