//! Golden-trace tests: the exporter outputs are a committed contract.
//!
//! A fixed event list covering every [`TraceEvent`] variant is exported and
//! compared byte-for-byte against the checked-in golden files, and the JSONL
//! schema constant is compared against `docs/TRACE_SCHEMA.json`. Changing an
//! event's fields, the field order, or either exporter's framing fails these
//! tests — which is the point: downstream tooling parses these formats.

use dismem_trace::{
    schema_json, to_chrome_trace, to_jsonl, validate_jsonl, ReplayMode, TraceEvent, TraceTier,
};

const GOLDEN_JSONL: &str = include_str!("golden/trace.jsonl");
const GOLDEN_CHROME: &str = include_str!("golden/trace_chrome.json");
const COMMITTED_SCHEMA: &str = include_str!("../../../docs/TRACE_SCHEMA.json");

/// One event of every variant, timestamps strictly interleaved the way a
/// real run orders them (walk transitions before the epoch they precede,
/// campaign events on the cell-index clock).
fn golden_events() -> Vec<TraceEvent> {
    let flaky = "XSBench/tiny/random/c250/upi/s53596";
    vec![
        TraceEvent::TierSpill {
            app_lines: 128,
            pages: 4,
        },
        TraceEvent::ReplayEngaged {
            app_lines: 512,
            mode: ReplayMode::Window,
        },
        TraceEvent::ReplayExited {
            app_lines: 1024,
            mode: ReplayMode::Window,
            reason: "pattern-break".into(),
        },
        TraceEvent::EpochClosed {
            epoch: 1,
            app_lines: 2048,
            hot_pages: 12,
            dwell_epochs: 0,
            hot_set_shifts: 1,
            migrated_pages: 2,
        },
        TraceEvent::MigrationApplied {
            epoch: 1,
            app_lines: 2048,
            page: 7,
            from: TraceTier::Pool,
            to: TraceTier::Local,
        },
        TraceEvent::ReplayEngaged {
            app_lines: 2304,
            mode: ReplayMode::Pass,
        },
        TraceEvent::ReplayExited {
            app_lines: 2560,
            mode: ReplayMode::Pass,
            reason: "hard-reset".into(),
        },
        TraceEvent::EpochClosed {
            epoch: 2,
            app_lines: 4096,
            hot_pages: 9,
            dwell_epochs: 1,
            hot_set_shifts: 2,
            migrated_pages: 0,
        },
        TraceEvent::ReplayEngaged {
            app_lines: 4608,
            mode: ReplayMode::Strided,
        },
        TraceEvent::ReplayExited {
            app_lines: 5120,
            mode: ReplayMode::Strided,
            reason: "cache-reset".into(),
        },
        TraceEvent::CampaignCellStarted {
            cell_index: 0,
            cell: "BFS/tiny/aware/c500/upi/s53596".into(),
            attempt: 1,
        },
        TraceEvent::CampaignCellFinished {
            cell_index: 0,
            cell: "BFS/tiny/aware/c500/upi/s53596".into(),
            attempt: 1,
            ok: true,
        },
        TraceEvent::CampaignCellStarted {
            cell_index: 1,
            cell: flaky.into(),
            attempt: 1,
        },
        TraceEvent::CampaignCellRetried {
            cell_index: 1,
            cell: flaky.into(),
            attempt: 1,
        },
        TraceEvent::CampaignCellStarted {
            cell_index: 1,
            cell: flaky.into(),
            attempt: 2,
        },
        TraceEvent::CampaignCellFinished {
            cell_index: 1,
            cell: flaky.into(),
            attempt: 2,
            ok: false,
        },
        TraceEvent::CampaignCellQuarantined {
            cell_index: 1,
            cell: flaky.into(),
            attempts: 2,
        },
        TraceEvent::JournalRecordRejected {
            record_index: 5,
            reason: "foreign-digest".into(),
        },
    ]
}

#[test]
fn jsonl_export_matches_the_golden_file() {
    assert_eq!(to_jsonl(&golden_events()), GOLDEN_JSONL);
}

#[test]
fn chrome_export_matches_the_golden_file() {
    assert_eq!(to_chrome_trace(&golden_events()), GOLDEN_CHROME);
}

#[test]
fn golden_jsonl_validates_against_the_schema() {
    assert_eq!(
        validate_jsonl(GOLDEN_JSONL),
        Ok(golden_events().len() as u64)
    );
}

#[test]
fn committed_schema_file_is_current() {
    assert_eq!(
        schema_json(),
        COMMITTED_SCHEMA,
        "docs/TRACE_SCHEMA.json is stale; regenerate it from schema_json()"
    );
}

#[test]
fn repeated_exports_are_byte_identical() {
    let events = golden_events();
    assert_eq!(to_jsonl(&events), to_jsonl(&events));
    assert_eq!(to_chrome_trace(&events), to_chrome_trace(&events));
}

#[test]
fn golden_stream_covers_every_event_variant() {
    let mut names: Vec<&str> = golden_events().iter().map(TraceEvent::name).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), 10, "golden stream must cover all variants");
}
