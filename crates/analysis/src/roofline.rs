//! Roofline models.
//!
//! The standard roofline model bounds attainable performance by
//! `P = min(F, B · I)` where `F` is the peak compute throughput, `B` the peak
//! memory bandwidth and `I` the arithmetic intensity (Section 3.4). The
//! multi-tier extension adds the bandwidth of additional memory tiers: using
//! both tiers concurrently raises the aggregate bandwidth ceiling, while a
//! given local-to-remote access ratio interpolates between the local-only and
//! aggregate slopes (the "memory roofline" the paper builds on).

use serde::{Deserialize, Serialize};

/// A measured point to place on the roofline (one application phase).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Label, e.g. `"HPL-p2"`.
    pub label: String,
    /// Arithmetic intensity in flop/byte.
    pub arithmetic_intensity: f64,
    /// Achieved performance in flop/s.
    pub achieved_flops: f64,
}

impl RooflinePoint {
    /// Fraction of the attainable roofline performance this point reaches.
    pub fn efficiency(&self, roofline: &Roofline) -> f64 {
        let attainable = roofline.attainable(self.arithmetic_intensity);
        if attainable == 0.0 {
            return 0.0;
        }
        (self.achieved_flops / attainable).min(1.0)
    }
}

/// Single-tier roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute throughput in flop/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth in bytes/s.
    pub peak_bandwidth: f64,
}

impl Roofline {
    /// Creates a roofline model.
    pub fn new(peak_flops: f64, peak_bandwidth: f64) -> Self {
        assert!(peak_flops > 0.0 && peak_bandwidth > 0.0);
        Self {
            peak_flops,
            peak_bandwidth,
        }
    }

    /// Attainable performance at arithmetic intensity `ai`:
    /// `min(F, B · I)`.
    pub fn attainable(&self, ai: f64) -> f64 {
        (self.peak_bandwidth * ai).min(self.peak_flops)
    }

    /// The ridge point: the arithmetic intensity at which the model switches
    /// from memory bound to compute bound.
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops / self.peak_bandwidth
    }

    /// Whether a point of the given intensity is memory bound.
    pub fn is_memory_bound(&self, ai: f64) -> bool {
        ai < self.ridge_point()
    }

    /// Samples the roofline at logarithmically spaced intensities, handy for
    /// printing the curve of Figure 5.
    pub fn curve(&self, ai_min: f64, ai_max: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2 && ai_min > 0.0 && ai_max > ai_min);
        let log_min = ai_min.ln();
        let log_max = ai_max.ln();
        (0..points)
            .map(|i| {
                let ai = (log_min + (log_max - log_min) * i as f64 / (points - 1) as f64).exp();
                (ai, self.attainable(ai))
            })
            .collect()
    }
}

/// Two-tier (local + pool) roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiTierRoofline {
    /// Peak compute throughput in flop/s.
    pub peak_flops: f64,
    /// Local-tier bandwidth in bytes/s.
    pub local_bandwidth: f64,
    /// Pool-tier (remote) bandwidth in bytes/s.
    pub remote_bandwidth: f64,
}

impl MultiTierRoofline {
    /// Creates the model.
    pub fn new(peak_flops: f64, local_bandwidth: f64, remote_bandwidth: f64) -> Self {
        assert!(peak_flops > 0.0 && local_bandwidth > 0.0 && remote_bandwidth >= 0.0);
        Self {
            peak_flops,
            local_bandwidth,
            remote_bandwidth,
        }
    }

    /// Roofline using only the local tier.
    pub fn local_only(&self) -> Roofline {
        Roofline::new(self.peak_flops, self.local_bandwidth)
    }

    /// Roofline using both tiers concurrently (the dashed line of Figure 5):
    /// the aggregate bandwidth ceiling.
    pub fn aggregate(&self) -> Roofline {
        Roofline::new(
            self.peak_flops,
            self.local_bandwidth + self.remote_bandwidth,
        )
    }

    /// Effective memory bandwidth when a fraction `remote_access_ratio` of
    /// the traffic goes to the pool and the two tiers stream concurrently:
    /// the slower of "local traffic at local bandwidth" and "remote traffic
    /// at remote bandwidth" determines the time, so
    /// `B_eff = 1 / max(local_share / B_local, remote_share / B_remote)`.
    pub fn effective_bandwidth(&self, remote_access_ratio: f64) -> f64 {
        let r = remote_access_ratio.clamp(0.0, 1.0);
        let local_time = (1.0 - r) / self.local_bandwidth;
        let remote_time = if self.remote_bandwidth > 0.0 {
            r / self.remote_bandwidth
        } else if r > 0.0 {
            return 0.0;
        } else {
            0.0
        };
        1.0 / local_time.max(remote_time).max(f64::MIN_POSITIVE)
    }

    /// The remote access ratio that maximises the effective bandwidth: the
    /// balanced split where each tier is kept busy in proportion to its
    /// bandwidth — the paper's `R^remote_BW` reference point.
    pub fn optimal_remote_access_ratio(&self) -> f64 {
        self.remote_bandwidth / (self.local_bandwidth + self.remote_bandwidth)
    }

    /// Attainable performance at a given intensity and remote access ratio.
    pub fn attainable(&self, ai: f64, remote_access_ratio: f64) -> f64 {
        (self.effective_bandwidth(remote_access_ratio) * ai).min(self.peak_flops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbed() -> Roofline {
        Roofline::new(460.0e9, 73.0e9)
    }

    #[test]
    fn attainable_is_min_of_compute_and_memory() {
        let r = testbed();
        // Memory bound region.
        assert!((r.attainable(1.0) - 73.0e9).abs() < 1.0);
        // Compute bound region.
        assert!((r.attainable(100.0) - 460.0e9).abs() < 1.0);
        // Exactly at the ridge both limits agree.
        let ridge = r.ridge_point();
        assert!((r.attainable(ridge) - 460.0e9).abs() < 1.0);
        assert!(r.is_memory_bound(ridge * 0.5));
        assert!(!r.is_memory_bound(ridge * 2.0));
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let r = testbed();
        let curve = r.curve(0.01, 1000.0, 64);
        assert_eq!(curve.len(), 64);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-6);
        }
    }

    #[test]
    fn point_efficiency_is_bounded() {
        let r = testbed();
        let p = RooflinePoint {
            label: "HPL-p2".into(),
            arithmetic_intensity: 16.0,
            achieved_flops: 300.0e9,
        };
        let e = p.efficiency(&r);
        assert!(e > 0.0 && e <= 1.0);
    }

    #[test]
    fn aggregate_roofline_raises_the_memory_ceiling() {
        let m = MultiTierRoofline::new(460.0e9, 73.0e9, 34.0e9);
        let local = m.local_only();
        let agg = m.aggregate();
        assert!(agg.attainable(1.0) > local.attainable(1.0));
        assert!((agg.attainable(1.0) - 107.0e9).abs() < 1.0);
        // Compute ceiling unchanged.
        assert_eq!(agg.attainable(1e6), local.attainable(1e6));
    }

    #[test]
    fn effective_bandwidth_peaks_at_balanced_ratio() {
        let m = MultiTierRoofline::new(460.0e9, 73.0e9, 34.0e9);
        let opt = m.optimal_remote_access_ratio();
        assert!((opt - 34.0 / 107.0).abs() < 1e-9);
        let at_opt = m.effective_bandwidth(opt);
        assert!((at_opt - 107.0e9).abs() / 107.0e9 < 1e-6);
        // Any other ratio is worse.
        assert!(m.effective_bandwidth(0.0) < at_opt);
        assert!(m.effective_bandwidth(0.8) < at_opt);
        // All-local equals the local bandwidth.
        assert!((m.effective_bandwidth(0.0) - 73.0e9).abs() < 1.0);
    }

    #[test]
    fn zero_remote_bandwidth_degenerates_gracefully() {
        let m = MultiTierRoofline::new(100.0e9, 50.0e9, 0.0);
        assert_eq!(m.effective_bandwidth(0.5), 0.0);
        assert!((m.effective_bandwidth(0.0) - 50.0e9).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_peaks() {
        let _ = Roofline::new(0.0, 1.0);
    }
}
