//! Top-10 supercomputer memory configurations, the DDR/HBM cost model
//! (Table 1) and the memory-evolution timeline (Figure 1).
//!
//! The data is embedded from the paper's Table 1 (November 2022 Top500 list);
//! the cost model reproduces the paper's estimation procedure: a baseline DDR
//! price per GiB with HBM at 3–5× the DDR unit price.

use serde::{Deserialize, Serialize};

/// Memory configuration of one system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemSpec {
    /// System name.
    pub name: &'static str,
    /// Top500 rank (November 2022).
    pub rank: u32,
    /// Year the system (or its memory generation) entered the list.
    pub year: u32,
    /// DDR capacity per node in GiB (0 if none).
    pub ddr_per_node_gib: u64,
    /// HBM capacity per node in GiB (0 if none).
    pub hbm_per_node_gib: u64,
    /// HBM bandwidth per node in TB/s.
    pub hbm_bw_per_node_tbs: f64,
    /// Number of compute nodes.
    pub nodes: u64,
}

impl SystemSpec {
    /// Total DDR capacity of the system in GiB.
    pub fn total_ddr_gib(&self) -> u64 {
        self.ddr_per_node_gib * self.nodes
    }

    /// Total HBM capacity of the system in GiB.
    pub fn total_hbm_gib(&self) -> u64 {
        self.hbm_per_node_gib * self.nodes
    }
}

/// Cost estimate for one system (Table 1's last two columns).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostEstimate {
    /// System name.
    pub name: &'static str,
    /// Estimated DDR cost in million USD.
    pub ddr_cost_musd: f64,
    /// Estimated HBM cost in million USD.
    pub hbm_cost_musd: f64,
}

/// One point of the memory-evolution timeline (Figure 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryTrendPoint {
    /// Year.
    pub year: u32,
    /// Representative leadership system of that year.
    pub system: &'static str,
    /// Memory capacity per node in GiB (all tiers).
    pub capacity_per_node_gib: u64,
    /// Memory bandwidth per node in GB/s (all tiers).
    pub bandwidth_per_node_gbs: f64,
}

/// The Top-10 systems of the paper's Table 1.
#[rustfmt::skip]
pub fn top10_systems() -> Vec<SystemSpec> {
    vec![
        SystemSpec { name: "Frontier", rank: 1, year: 2022, ddr_per_node_gib: 512, hbm_per_node_gib: 512, hbm_bw_per_node_tbs: 12.8, nodes: 9_408 },
        SystemSpec { name: "Fugaku", rank: 2, year: 2020, ddr_per_node_gib: 0, hbm_per_node_gib: 32, hbm_bw_per_node_tbs: 1.0, nodes: 158_976 },
        SystemSpec { name: "LUMI-G", rank: 3, year: 2022, ddr_per_node_gib: 512, hbm_per_node_gib: 512, hbm_bw_per_node_tbs: 12.8, nodes: 2_560 },
        SystemSpec { name: "Leonardo", rank: 4, year: 2022, ddr_per_node_gib: 512, hbm_per_node_gib: 256, hbm_bw_per_node_tbs: 8.2, nodes: 3_456 },
        SystemSpec { name: "Summit", rank: 5, year: 2018, ddr_per_node_gib: 512, hbm_per_node_gib: 96, hbm_bw_per_node_tbs: 5.4, nodes: 4_608 },
        SystemSpec { name: "Sierra", rank: 6, year: 2018, ddr_per_node_gib: 256, hbm_per_node_gib: 64, hbm_bw_per_node_tbs: 3.6, nodes: 4_284 },
        SystemSpec { name: "Sunway TaihuLight", rank: 7, year: 2016, ddr_per_node_gib: 32, hbm_per_node_gib: 0, hbm_bw_per_node_tbs: 0.0, nodes: 40_960 },
        SystemSpec { name: "Perlmutter (GPU)", rank: 8, year: 2021, ddr_per_node_gib: 256, hbm_per_node_gib: 160, hbm_bw_per_node_tbs: 6.2, nodes: 1_536 },
        SystemSpec { name: "Selene", rank: 9, year: 2020, ddr_per_node_gib: 1024, hbm_per_node_gib: 640, hbm_bw_per_node_tbs: 16.0, nodes: 280 },
        SystemSpec { name: "Tianhe-2A", rank: 10, year: 2018, ddr_per_node_gib: 192, hbm_per_node_gib: 0, hbm_bw_per_node_tbs: 0.0, nodes: 16_000 },
    ]
}

/// Default DDR price assumption in USD per GiB, chosen so that the estimates
/// reproduce the magnitudes of Table 1 (e.g. ~$34M of DDR for Frontier).
pub const DEFAULT_DDR_USD_PER_GIB: f64 = 7.0;

/// Estimates memory costs with a DDR price per GiB and an HBM price multiplier
/// (the paper uses 3–5×; Table 1's numbers correspond to roughly 4×).
pub fn estimate_costs(
    systems: &[SystemSpec],
    ddr_usd_per_gib: f64,
    hbm_multiplier: f64,
) -> Vec<CostEstimate> {
    assert!(ddr_usd_per_gib > 0.0 && hbm_multiplier >= 1.0);
    systems
        .iter()
        .map(|s| CostEstimate {
            name: s.name,
            ddr_cost_musd: s.total_ddr_gib() as f64 * ddr_usd_per_gib / 1e6,
            hbm_cost_musd: s.total_hbm_gib() as f64 * ddr_usd_per_gib * hbm_multiplier / 1e6,
        })
        .collect()
}

/// Memory capacity and bandwidth per node of leadership systems over the last
/// 15 years (Figure 1).
#[rustfmt::skip]
pub fn memory_evolution() -> Vec<MemoryTrendPoint> {
    vec![
        MemoryTrendPoint { year: 2008, system: "Roadrunner", capacity_per_node_gib: 16, bandwidth_per_node_gbs: 21.0 },
        MemoryTrendPoint { year: 2010, system: "Jaguar", capacity_per_node_gib: 16, bandwidth_per_node_gbs: 25.6 },
        MemoryTrendPoint { year: 2012, system: "Titan", capacity_per_node_gib: 38, bandwidth_per_node_gbs: 52.0 },
        MemoryTrendPoint { year: 2013, system: "Tianhe-2", capacity_per_node_gib: 64, bandwidth_per_node_gbs: 102.0 },
        MemoryTrendPoint { year: 2016, system: "Sunway TaihuLight", capacity_per_node_gib: 32, bandwidth_per_node_gbs: 136.0 },
        MemoryTrendPoint { year: 2018, system: "Summit", capacity_per_node_gib: 608, bandwidth_per_node_gbs: 5_740.0 },
        MemoryTrendPoint { year: 2020, system: "Fugaku", capacity_per_node_gib: 32, bandwidth_per_node_gbs: 1_024.0 },
        MemoryTrendPoint { year: 2021, system: "Perlmutter", capacity_per_node_gib: 416, bandwidth_per_node_gbs: 6_400.0 },
        MemoryTrendPoint { year: 2022, system: "Frontier", capacity_per_node_gib: 1024, bandwidth_per_node_gbs: 13_000.0 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_ten_systems_in_rank_order() {
        let systems = top10_systems();
        assert_eq!(systems.len(), 10);
        for (i, s) in systems.iter().enumerate() {
            assert_eq!(s.rank as usize, i + 1);
        }
        assert_eq!(systems[0].name, "Frontier");
    }

    #[test]
    fn cost_estimates_match_paper_magnitudes() {
        let systems = top10_systems();
        let costs = estimate_costs(&systems, DEFAULT_DDR_USD_PER_GIB, 4.0);
        let frontier = costs.iter().find(|c| c.name == "Frontier").unwrap();
        // Paper: ~$34M DDR and ~$135M HBM for Frontier.
        assert!(
            (frontier.ddr_cost_musd - 34.0).abs() < 8.0,
            "{}",
            frontier.ddr_cost_musd
        );
        assert!(
            (frontier.hbm_cost_musd - 135.0).abs() < 30.0,
            "{}",
            frontier.hbm_cost_musd
        );
        let fugaku = costs.iter().find(|c| c.name == "Fugaku").unwrap();
        assert_eq!(fugaku.ddr_cost_musd, 0.0);
        assert!((fugaku.hbm_cost_musd - 142.0).abs() < 35.0);
    }

    #[test]
    fn hbm_price_multiplier_scales_hbm_only() {
        let systems = top10_systems();
        let low = estimate_costs(&systems, 7.0, 3.0);
        let high = estimate_costs(&systems, 7.0, 5.0);
        for (l, h) in low.iter().zip(&high) {
            assert_eq!(l.ddr_cost_musd, h.ddr_cost_musd);
            if l.hbm_cost_musd > 0.0 {
                assert!((h.hbm_cost_musd / l.hbm_cost_musd - 5.0 / 3.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn memory_evolution_shows_dramatic_growth() {
        let trend = memory_evolution();
        assert!(trend.len() >= 8);
        for w in trend.windows(2) {
            assert!(w[1].year >= w[0].year);
        }
        let first = trend.first().unwrap();
        let last = trend.last().unwrap();
        assert!(last.bandwidth_per_node_gbs > 100.0 * first.bandwidth_per_node_gbs);
        assert!(last.capacity_per_node_gib > 10 * first.capacity_per_node_gib);
    }

    #[test]
    fn eight_of_top_ten_use_multi_tier_memory() {
        // The paper notes 8 of the top 10 use HBM+DDR style multi-tier memory
        // (i.e. have an HBM tier).
        let with_hbm = top10_systems()
            .iter()
            .filter(|s| s.hbm_per_node_gib > 0)
            .count();
        assert_eq!(with_hbm, 8);
    }

    #[test]
    #[should_panic]
    fn cost_model_rejects_bad_prices() {
        let _ = estimate_costs(&top10_systems(), 0.0, 4.0);
    }
}
