//! Descriptive statistics for experiment results.

use serde::{Deserialize, Serialize};

/// The five-number summary behind the box plots of Figure 13.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumberSummary {
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl FiveNumberSummary {
    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Total range.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Linear-interpolated percentile (`p` in 0–100). Panics on an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be within 0..=100"
    );
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Computes the five-number summary of a sample. Panics on an empty slice.
pub fn five_number_summary(values: &[f64]) -> FiveNumberSummary {
    assert!(!values.is_empty(), "summary of empty slice");
    FiveNumberSummary {
        min: percentile(values, 0.0),
        q1: percentile(values, 25.0),
        median: percentile(values, 50.0),
        q3: percentile(values, 75.0),
        max: percentile(values, 100.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 2.5);
        assert_eq!(percentile(&[42.0], 75.0), 42.0);
    }

    #[test]
    fn percentile_is_order_invariant() {
        let a = [5.0, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&a, 25.0), percentile(&b, 25.0));
        assert_eq!(percentile(&a, 50.0), 3.0);
    }

    #[test]
    fn five_number_summary_is_ordered() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = five_number_summary(&values);
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!(s.iqr() > 0.0);
        assert_eq!(s.range(), 99.0);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn summary_of_empty_slice_panics() {
        let _ = five_number_summary(&[]);
    }

    #[test]
    #[should_panic(expected = "within 0..=100")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 150.0);
    }
}
