//! # dismem-analysis
//!
//! Analytical models and datasets used throughout the paper:
//!
//! * [`roofline`] — the classic roofline model and its multi-tier extension
//!   (Figure 5 and the memory roofline discussion of Section 5);
//! * [`stats`] — descriptive statistics (five-number summaries for the
//!   box plots of Figure 13, means, percentiles);
//! * [`systems`] — the Top-10 supercomputer memory-configuration dataset with
//!   the DDR/HBM cost model (Table 1) and the memory-evolution timeline
//!   (Figure 1).

#![forbid(unsafe_code)]

pub mod roofline;
pub mod stats;
pub mod systems;

pub use roofline::{MultiTierRoofline, Roofline, RooflinePoint};
pub use stats::{five_number_summary, mean, percentile, FiveNumberSummary};
pub use systems::{
    estimate_costs, memory_evolution, top10_systems, CostEstimate, MemoryTrendPoint, SystemSpec,
};
