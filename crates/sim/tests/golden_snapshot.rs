//! Golden-snapshot tests: the binary snapshot codec is a committed contract.
//!
//! Mirrors the `golden_trace` suite in `dismem-trace`: reference byte vectors
//! pin the wire format of the binary value codec (tags, little-endian length
//! prefixes, lossless full-range `u64`), and a committed machine snapshot is
//! byte-compared against a freshly captured one. Changing a serialized field,
//! the field order, the envelope layout, or the codec's number classification
//! fails these tests — which is the point: snapshot files on disk outlive the
//! binary that wrote them, and `SNAPSHOT_VERSION` must be bumped (and the
//! fixtures regenerated via `regenerate_golden_fixtures`) on any such change.

use dismem_sim::snapshot::fnv1a64;
use dismem_sim::tiering::HotPromote;
use dismem_sim::{Machine, MachineConfig, MachineSnapshot, TieringSpec, SNAPSHOT_VERSION};
use dismem_trace::{MemoryEngine, PAGE_SIZE};
use serde_json::{decode_value, encode_value, parse_value, render_value, JsonValue};

const GOLDEN_VALUE_BIN: &[u8] = include_bytes!("golden/value.bin");
const GOLDEN_VALUE_JSON: &str = include_str!("golden/value.json");
const GOLDEN_SNAPSHOT: &[u8] = include_bytes!("golden/machine.snap");

/// The key digest the golden machine snapshot was written under.
const GOLDEN_DIGEST: u64 = 0xD15C_AFE5_EED0_0001;

/// A handcrafted document covering every wire tag and the number classes the
/// codec distinguishes: full-range `u64` (above 2^53, where an `f64` round
/// trip would corrupt), negative integers, integral and fractional floats,
/// and exponent-notation numeric text only a foreign writer produces.
fn reference_value() -> JsonValue {
    JsonValue::Object(vec![
        ("null".to_string(), JsonValue::Null),
        ("no".to_string(), JsonValue::Bool(false)),
        ("yes".to_string(), JsonValue::Bool(true)),
        (
            "u64_max".to_string(),
            JsonValue::Number("18446744073709551615".to_string()),
        ),
        (
            "beyond_2_53".to_string(),
            JsonValue::Number("9007199254740993".to_string()),
        ),
        (
            "i64_min".to_string(),
            JsonValue::Number("-9223372036854775808".to_string()),
        ),
        ("float".to_string(), JsonValue::Number("1.5".to_string())),
        ("whole".to_string(), JsonValue::Number("42.0".to_string())),
        (
            "foreign_exponent".to_string(),
            JsonValue::Number("1e3".to_string()),
        ),
        (
            "text".to_string(),
            JsonValue::String("snap \"shot\" — δ".to_string()),
        ),
        (
            "list".to_string(),
            JsonValue::Array(vec![
                JsonValue::Number("0.0".to_string()),
                JsonValue::String(String::new()),
                JsonValue::Array(Vec::new()),
                JsonValue::Object(Vec::new()),
            ]),
        ),
    ])
}

#[test]
fn reference_value_bytes_match_the_golden_file() {
    assert_eq!(
        encode_value(&reference_value()),
        GOLDEN_VALUE_BIN,
        "binary codec output changed; bump SNAPSHOT_VERSION and regenerate"
    );
}

#[test]
fn golden_value_bytes_decode_to_the_golden_json() {
    let decoded = decode_value(GOLDEN_VALUE_BIN).expect("golden bytes decode");
    assert_eq!(render_value(&decoded), GOLDEN_VALUE_JSON.trim_end());
    // And the text round-trips back through parse → encode to the same bytes.
    let reparsed = parse_value(GOLDEN_VALUE_JSON.trim_end()).expect("golden json parses");
    assert_eq!(encode_value(&reparsed), GOLDEN_VALUE_BIN);
}

/// The wire format is little-endian by definition: a minimal document is
/// pinned byte by byte, so a porting mistake (native-endian writes) fails
/// loudly rather than producing fixtures that only round-trip on one host.
#[test]
fn endianness_is_pinned_byte_for_byte() {
    let doc = JsonValue::Object(vec![(
        "a".to_string(),
        JsonValue::Number("258".to_string()),
    )]);
    assert_eq!(
        encode_value(&doc),
        vec![
            0x09, // object tag
            0x01, 0x00, 0x00, 0x00, // entry count 1, u32 LE
            0x01, 0x00, 0x00, 0x00, // key byte length 1, u32 LE (keys carry no tag)
            b'a', // key bytes
            0x03, // u64 tag
            0x02, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // 258, u64 LE
        ]
    );
}

/// Full-range integers survive the binary round-trip digit for digit —
/// the property the text codec's `f64` path cannot provide above 2^53.
#[test]
fn u64_beyond_2_53_round_trips_exactly() {
    for raw in [
        "9007199254740993",     // 2^53 + 1: first integer an f64 cannot hold
        "18446744073709551615", // u64::MAX
        "12157665459056928801", // a config-digest-sized value
        "-9223372036854775808", // i64::MIN
    ] {
        let doc = JsonValue::Array(vec![JsonValue::Number(raw.to_string())]);
        let decoded = decode_value(&encode_value(&doc)).expect("round trip");
        assert_eq!(render_value(&decoded), format!("[{raw}]"));
    }
}

/// A deterministic machine with non-trivial state in every snapshotted
/// subsystem: spilled pages, live cache sets, a trained prefetcher, replay
/// lifetime totals, migration history and an open phase.
fn golden_machine() -> Machine {
    let config = MachineConfig::test_config().with_local_capacity(10 * PAGE_SIZE);
    let mut m = Machine::new(config);
    m.set_tiering_spec(&TieringSpec::HotPromote(HotPromote {
        demote_heat: 4.0,
        ..HotPromote::new(2048, 16.0)
    }));
    let cold = m.alloc("cold", "golden", 10 * PAGE_SIZE);
    let hot = m.alloc("hot", "golden", 12 * PAGE_SIZE);
    m.phase_start("init");
    m.touch(cold, 10 * PAGE_SIZE);
    m.touch(hot, 12 * PAGE_SIZE);
    m.phase_end();
    m.phase_start("loop");
    for _ in 0..6 {
        m.read(hot, 0, 12 * PAGE_SIZE);
        m.flops(10_000);
    }
    // The phase stays open: the snapshot captures mid-phase state.
    m
}

#[test]
fn machine_snapshot_bytes_match_the_golden_file() {
    let snapshot = golden_machine().snapshot().expect("snapshot");
    assert_eq!(
        snapshot.to_snapshot_bytes(GOLDEN_DIGEST),
        GOLDEN_SNAPSHOT,
        "snapshot bytes changed; bump SNAPSHOT_VERSION and regenerate the fixture"
    );
}

#[test]
fn committed_snapshot_restores_and_finishes_bit_identically() {
    let decoded = MachineSnapshot::from_snapshot_bytes(GOLDEN_SNAPSHOT, GOLDEN_DIGEST)
        .expect("committed fixture must keep loading");
    assert_eq!(decoded.config().config_digest(), {
        let mut live = golden_machine();
        let snap = live.snapshot().unwrap();
        snap.config().config_digest()
    });
    let mut restored = Machine::restore(&decoded).expect("restore");
    restored.phase_end();
    let from_fixture = restored.finish();
    let mut live = golden_machine();
    live.phase_end();
    assert_eq!(
        from_fixture,
        live.finish(),
        "fixture restore must finish identically to the live machine"
    );
}

#[test]
fn golden_envelope_header_is_pinned() {
    assert_eq!(&GOLDEN_SNAPSHOT[0..4], b"DMSN", "magic");
    assert_eq!(
        u32::from_le_bytes(GOLDEN_SNAPSHOT[4..8].try_into().unwrap()),
        SNAPSHOT_VERSION,
        "fixture written by a different version; regenerate"
    );
    assert_eq!(
        u64::from_le_bytes(GOLDEN_SNAPSHOT[8..16].try_into().unwrap()),
        GOLDEN_DIGEST,
        "key digest field"
    );
    let payload_len = u64::from_le_bytes(GOLDEN_SNAPSHOT[16..24].try_into().unwrap()) as usize;
    assert_eq!(GOLDEN_SNAPSHOT.len(), 24 + payload_len + 8, "length field");
    let payload = &GOLDEN_SNAPSHOT[24..24 + payload_len];
    assert_eq!(
        u64::from_le_bytes(GOLDEN_SNAPSHOT[24 + payload_len..].try_into().unwrap()),
        fnv1a64(payload),
        "trailing checksum"
    );
}

/// Regenerates the committed fixtures in `tests/golden/`. Run explicitly
/// after an intentional format change (with a `SNAPSHOT_VERSION` bump):
///
/// ```text
/// cargo test -p dismem-sim --test golden_snapshot -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes the golden fixtures; run only to regenerate them"]
fn regenerate_golden_fixtures() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    std::fs::create_dir_all(&dir).expect("create golden dir");
    let value = reference_value();
    std::fs::write(dir.join("value.bin"), encode_value(&value)).expect("write value.bin");
    let mut json = render_value(&value);
    json.push('\n');
    std::fs::write(dir.join("value.json"), json).expect("write value.json");
    let snapshot = golden_machine().snapshot().expect("snapshot");
    std::fs::write(
        dir.join("machine.snap"),
        snapshot.to_snapshot_bytes(GOLDEN_DIGEST),
    )
    .expect("write machine.snap");
}
