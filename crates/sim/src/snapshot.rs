//! Versioned machine snapshots: full simulated-machine state, serializable
//! and restorable.
//!
//! A [`MachineSnapshot`] freezes everything a [`crate::Machine`] needs to
//! resume bit-identically: configuration, address-space bindings and memos,
//! cache sets and stamps, prefetcher streams, replay totals, tiering tracker
//! and damper history, counters, phases and the timeline. The vendored serde
//! derive emits the JSON form; this module adds the hand-rolled
//! `parse_value`-based reader (the same idiom the campaign journal uses) and
//! a compact length-prefixed binary envelope on top of
//! `serde_json::{encode_value, decode_value}`, so snapshots round-trip
//! exactly — full-range `u64` digests and bit-exact `f64` scores included.
//!
//! # Contract (see `docs/ARCHITECTURE.md` §8)
//!
//! * **Versioning** — the envelope header carries [`SNAPSHOT_VERSION`]; a
//!   mismatch is a typed [`SnapshotError::VersionMismatch`], never a parse
//!   attempt against the wrong layout.
//! * **Digest keying** — the header embeds the caller's FNV-1a key digest;
//!   a snapshot loaded under a different key fails with
//!   [`SnapshotError::ForeignDigest`] before any payload work.
//! * **Replay-state capture rule** — [`crate::Machine::snapshot`] hard-resets
//!   the replay engine first (materializing any in-flight replay exactly,
//!   with zero counter effect) and captures only the master switch and the
//!   lifetime totals; a restored machine re-detects periodicity from scratch,
//!   which the replay bit-identity contract makes report-invisible.
//! * **Fallback semantics** — every decode failure is a typed error so
//!   callers (the campaign snapshot cache) can fall back to a cold run
//!   instead of aborting.

use crate::address_space::Tier;
use crate::config::{CacheParams, LinkParams, MachineConfig, PrefetchParams, TierParams};
use crate::counters::Counters;
use crate::interference::{InterferenceEpoch, InterferenceProfile};
use crate::report::TimelineSample;
use crate::tiering::{HotPromote, PeriodicRebalance, TieringSpec, TieringStats};
use dismem_trace::{AllocationRecord, ObjectHandle, PlacementPolicy};
use serde::Serialize;
use serde_json::{decode_value, encode_value, parse_value, JsonValue};
use std::fmt;

/// Snapshot format version carried in the envelope header and the payload.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Envelope magic: identifies a dismem machine snapshot file.
const MAGIC: [u8; 4] = *b"DMSN";

/// Envelope header length: magic (4) + version (4) + key digest (8) +
/// payload length (8).
const HEADER_LEN: usize = 24;

/// Error raised by the snapshot codec and by [`crate::Machine::snapshot`] /
/// [`crate::Machine::restore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The machine's tiering policy was installed as a raw boxed policy
    /// (no [`TieringSpec`] on record), so it cannot be serialized.
    UnsupportedPolicy,
    /// A flight recorder is installed; recorded machines are not
    /// snapshottable (recorder state is not serializable).
    RecorderInstalled,
    /// The envelope header names a different format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The envelope was written under a different content-address key.
    ForeignDigest {
        /// Key digest found in the header.
        found: u64,
        /// Key digest the caller expected.
        expected: u64,
    },
    /// The input ends before the envelope or payload is complete.
    Truncated,
    /// The payload is structurally invalid (bad magic, checksum mismatch,
    /// malformed JSON/binary, missing or mistyped fields, inconsistent
    /// state).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnsupportedPolicy => {
                write!(f, "tiering policy has no serializable spec")
            }
            SnapshotError::RecorderInstalled => {
                write!(
                    f,
                    "machines with a flight recorder installed cannot be snapshotted"
                )
            }
            SnapshotError::VersionMismatch { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            SnapshotError::ForeignDigest { found, expected } => {
                write!(f, "snapshot keyed {found:016x}, expected {expected:016x}")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn corrupt(msg: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(msg.into())
}

/// FNV-1a over bytes — the same digest scheme the campaign journal and
/// [`MachineConfig::config_digest`] use.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Snapshot state structs. Serialization comes from the vendored serde derive;
// deserialization is the hand-rolled `parse_value` reader below.
// ---------------------------------------------------------------------------

/// One bound page: number, tier and owning allocation.
#[derive(Debug, Clone, Copy, Serialize)]
pub(crate) struct PageBinding {
    pub(crate) page: u64,
    pub(crate) tier: Tier,
    pub(crate) owner: u32,
}

/// One allocation extent (contiguous page range).
#[derive(Debug, Clone, Copy, Serialize)]
pub(crate) struct ExtentState {
    pub(crate) first_page: u64,
    pub(crate) page_count: u64,
    pub(crate) handle: u32,
}

/// One page-histogram bucket.
#[derive(Debug, Clone, Copy, Serialize)]
pub(crate) struct PageCount {
    pub(crate) page: u64,
    pub(crate) count: u64,
}

/// One tracked page's heat (mid-epoch accrual included).
#[derive(Debug, Clone, Copy, Serialize)]
pub(crate) struct HeatEntry {
    pub(crate) page: u64,
    pub(crate) score: f64,
    pub(crate) cur_lines: u64,
}

/// Frozen [`crate::tiering::HotnessTracker`] state.
#[derive(Debug, Clone, Serialize)]
pub(crate) struct HotnessState {
    pub(crate) decay: f64,
    pub(crate) epochs_completed: u64,
    pub(crate) heat: Vec<HeatEntry>,
    pub(crate) anchor_hot: Vec<u64>,
}

/// Frozen [`crate::AddressSpace`] state. Hash-backed members are exported as
/// key-sorted vectors so the serialized form is deterministic.
#[derive(Debug, Clone, Serialize)]
pub(crate) struct AddressSpaceState {
    pub(crate) local_capacity_pages: Option<u64>,
    pub(crate) pool_capacity_pages: Option<u64>,
    pub(crate) allocations: Vec<AllocationRecord>,
    pub(crate) extents: Vec<ExtentState>,
    pub(crate) placements: Vec<crate::address_space::ObjectPlacement>,
    pub(crate) assigned_pages: Vec<u64>,
    pub(crate) next_page: u64,
    pub(crate) page_tier: Vec<PageBinding>,
    pub(crate) local_pages_used: u64,
    pub(crate) pool_pages_used: u64,
    pub(crate) spilled_pages: u64,
    pub(crate) live_bytes: u64,
    pub(crate) peak_bytes: u64,
    pub(crate) histogram: Vec<PageCount>,
    pub(crate) hotness: Option<HotnessState>,
}

/// One set-associative cache level, flattened into parallel arrays:
/// `tags[i]` / `stamps[i]` / `flags[i]` describe line `i`, with flag bits
/// 0=valid, 1=dirty, 2=prefetched, 3=used.
#[derive(Debug, Clone, Serialize)]
pub(crate) struct CacheLevelState {
    pub(crate) sets: u64,
    pub(crate) ways: u64,
    pub(crate) clock: u64,
    pub(crate) tags: Vec<u64>,
    pub(crate) stamps: Vec<u64>,
    pub(crate) flags: Vec<u64>,
}

/// One tracked prefetcher stream.
#[derive(Debug, Clone, Copy, Serialize)]
pub(crate) struct StreamEntryState {
    pub(crate) page: u64,
    pub(crate) last_line: u64,
    pub(crate) run: u32,
    pub(crate) stamp: u64,
    pub(crate) valid: bool,
}

/// Frozen [`crate::prefetch::StreamPrefetcher`] state (the tuning parameters
/// come from the config; only the runtime enable switch is captured here).
#[derive(Debug, Clone, Serialize)]
pub(crate) struct PrefetcherState {
    pub(crate) enabled: bool,
    pub(crate) clock: u64,
    pub(crate) feedback_useful: u64,
    pub(crate) feedback_useless: u64,
    pub(crate) entries: Vec<StreamEntryState>,
}

/// Replay-engine state surviving a snapshot: the master switch and the
/// lifetime totals. Detection/memo state is never captured — the snapshot
/// hard-resets the engine first (see the module docs).
#[derive(Debug, Clone, Copy, Serialize)]
pub(crate) struct ReplayState {
    pub(crate) enabled: bool,
    pub(crate) windows_replayed_total: u64,
    pub(crate) passes_replayed_total: u64,
    pub(crate) stride_elems_replayed_total: u64,
}

/// Frozen [`crate::CacheSim`] state.
#[derive(Debug, Clone, Serialize)]
pub(crate) struct CacheState {
    pub(crate) l2: CacheLevelState,
    pub(crate) llc: CacheLevelState,
    pub(crate) prefetcher: PrefetcherState,
    pub(crate) replay: ReplayState,
}

/// One ping-pong damper entry: page → epoch of its last migration.
#[derive(Debug, Clone, Copy, Serialize)]
pub(crate) struct PageEpoch {
    pub(crate) page: u64,
    pub(crate) epoch: u64,
}

/// Frozen tiering runtime: the policy spec, the epoch clock, the damper
/// history (key-sorted) and the run statistics.
#[derive(Debug, Clone, Serialize)]
pub(crate) struct TieringState {
    pub(crate) spec: TieringSpec,
    pub(crate) epoch_acc: u64,
    pub(crate) epoch: u64,
    pub(crate) last_migrated: Vec<PageEpoch>,
    pub(crate) stats: TieringStats,
}

/// A complete, versioned freeze of one [`crate::Machine`].
///
/// Produced by [`crate::Machine::snapshot`], consumed by
/// [`crate::Machine::restore`]. Round-trips exactly through both the JSON
/// form ([`MachineSnapshot::to_json`] / [`MachineSnapshot::from_json`]) and
/// the binary envelope ([`MachineSnapshot::to_snapshot_bytes`] /
/// [`MachineSnapshot::from_snapshot_bytes`]).
#[derive(Debug, Clone, Serialize)]
pub struct MachineSnapshot {
    pub(crate) version: u32,
    pub(crate) config: MachineConfig,
    pub(crate) interference: InterferenceProfile,
    pub(crate) clock_s: f64,
    pub(crate) chunk: Counters,
    pub(crate) chunk_pool_link_lines: u64,
    pub(crate) batched: bool,
    pub(crate) spilled_seen: u64,
    pub(crate) space: AddressSpaceState,
    pub(crate) cache: CacheState,
    pub(crate) tiering: TieringState,
    pub(crate) phase_names: Vec<String>,
    pub(crate) phase_counters: Vec<Counters>,
    pub(crate) phase_runtimes: Vec<f64>,
    pub(crate) current_phase: Option<usize>,
    pub(crate) total: Counters,
    pub(crate) timeline: Vec<TimelineSample>,
}

impl MachineSnapshot {
    /// The machine configuration frozen in this snapshot.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Simulated time at which the snapshot was taken.
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Serializes to compact JSON (the authoritative text form).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        Serialize::serialize_json(self, &mut out);
        out
    }

    /// Parses a snapshot from its JSON text form.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let value = parse_value(text)
            .map_err(|e| corrupt(format!("json parse: {} at {}", e.message, e.offset)))?;
        Self::from_value(&value)
    }

    /// Encodes the snapshot into the length-prefixed binary envelope, keyed
    /// by `key_digest` (content address of the warm-up prefix). Layout, all
    /// integers little-endian: `"DMSN"` magic, format version (u32), key
    /// digest (u64), payload length (u64), binary payload, FNV-1a payload
    /// checksum (u64).
    pub fn to_snapshot_bytes(&self, key_digest: u64) -> Vec<u8> {
        let json = self.to_json();
        let value = parse_value(&json).expect("snapshot serializer emits valid JSON");
        let payload = encode_value(&value);
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&key_digest.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let checksum = fnv1a64(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a binary envelope produced by
    /// [`MachineSnapshot::to_snapshot_bytes`], verifying magic, version,
    /// key digest, length and checksum — in that order, so tampering with
    /// any single header field yields its specific typed error.
    pub fn from_snapshot_bytes(bytes: &[u8], expected_digest: u64) -> Result<Self, SnapshotError> {
        if bytes.len() < HEADER_LEN {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let mut digest = [0u8; 8];
        digest.copy_from_slice(&bytes[8..16]);
        let digest = u64::from_le_bytes(digest);
        if digest != expected_digest {
            return Err(SnapshotError::ForeignDigest {
                found: digest,
                expected: expected_digest,
            });
        }
        let mut len = [0u8; 8];
        len.copy_from_slice(&bytes[16..24]);
        let payload_len = u64::from_le_bytes(len) as usize;
        let Some(total) = HEADER_LEN
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8))
        else {
            return Err(corrupt("payload length overflows"));
        };
        if bytes.len() < total {
            return Err(SnapshotError::Truncated);
        }
        if bytes.len() > total {
            return Err(corrupt("trailing bytes after checksum"));
        }
        let payload = &bytes[HEADER_LEN..HEADER_LEN + payload_len];
        let mut check = [0u8; 8];
        check.copy_from_slice(&bytes[HEADER_LEN + payload_len..]);
        if u64::from_le_bytes(check) != fnv1a64(payload) {
            return Err(corrupt("checksum mismatch"));
        }
        let value = decode_value(payload).map_err(|e| corrupt(format!("binary payload: {e}")))?;
        let snapshot = Self::from_value(&value)?;
        if snapshot.version != version {
            return Err(corrupt("payload version disagrees with header"));
        }
        Ok(snapshot)
    }

    /// Reads a snapshot from a parsed [`JsonValue`] tree.
    fn from_value(v: &JsonValue) -> Result<Self, SnapshotError> {
        let version = get_u32(v, "version")?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        Ok(Self {
            version,
            config: config_from_value(field(v, "config")?)?,
            interference: interference_from_value(field(v, "interference")?)?,
            clock_s: get_f64(v, "clock_s")?,
            chunk: counters_from_value(field(v, "chunk")?)?,
            chunk_pool_link_lines: get_u64(v, "chunk_pool_link_lines")?,
            batched: get_bool(v, "batched")?,
            spilled_seen: get_u64(v, "spilled_seen")?,
            space: space_from_value(field(v, "space")?)?,
            cache: cache_from_value(field(v, "cache")?)?,
            tiering: tiering_from_value(field(v, "tiering")?)?,
            phase_names: get_arr(v, "phase_names")?
                .iter()
                .map(str_of)
                .collect::<Result<_, _>>()?,
            phase_counters: get_arr(v, "phase_counters")?
                .iter()
                .map(counters_from_value)
                .collect::<Result<_, _>>()?,
            phase_runtimes: get_arr(v, "phase_runtimes")?
                .iter()
                .map(f64_of)
                .collect::<Result<_, _>>()?,
            current_phase: match field(v, "current_phase")? {
                JsonValue::Null => None,
                other => Some(u64_of(other)? as usize),
            },
            total: counters_from_value(field(v, "total")?)?,
            timeline: get_arr(v, "timeline")?
                .iter()
                .map(timeline_from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Reader helpers: typed field access over `JsonValue` with descriptive
// `Corrupt` errors.
// ---------------------------------------------------------------------------

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, SnapshotError> {
    v.get(key)
        .ok_or_else(|| corrupt(format!("missing field '{key}'")))
}

fn u64_of(v: &JsonValue) -> Result<u64, SnapshotError> {
    v.as_u64().ok_or_else(|| corrupt("expected u64"))
}

fn f64_of(v: &JsonValue) -> Result<f64, SnapshotError> {
    v.as_f64().ok_or_else(|| corrupt("expected f64"))
}

fn bool_of(v: &JsonValue) -> Result<bool, SnapshotError> {
    v.as_bool().ok_or_else(|| corrupt("expected bool"))
}

fn str_of(v: &JsonValue) -> Result<String, SnapshotError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| corrupt("expected string"))
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, SnapshotError> {
    u64_of(field(v, key)?).map_err(|_| corrupt(format!("field '{key}' is not a u64")))
}

fn get_u32(v: &JsonValue, key: &str) -> Result<u32, SnapshotError> {
    let raw = get_u64(v, key)?;
    u32::try_from(raw).map_err(|_| corrupt(format!("field '{key}' exceeds u32")))
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, SnapshotError> {
    f64_of(field(v, key)?).map_err(|_| corrupt(format!("field '{key}' is not an f64")))
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, SnapshotError> {
    bool_of(field(v, key)?).map_err(|_| corrupt(format!("field '{key}' is not a bool")))
}

fn get_str(v: &JsonValue, key: &str) -> Result<String, SnapshotError> {
    str_of(field(v, key)?).map_err(|_| corrupt(format!("field '{key}' is not a string")))
}

fn get_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], SnapshotError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| corrupt(format!("field '{key}' is not an array")))
}

fn get_opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, SnapshotError> {
    match field(v, key)? {
        JsonValue::Null => Ok(None),
        other => u64_of(other)
            .map(Some)
            .map_err(|_| corrupt(format!("field '{key}' is not a u64 or null"))),
    }
}

fn u64_arr(v: &JsonValue, key: &str) -> Result<Vec<u64>, SnapshotError> {
    get_arr(v, key)?.iter().map(u64_of).collect()
}

// ---------------------------------------------------------------------------
// Per-type readers, inverting the derive-emitted JSON exactly.
// ---------------------------------------------------------------------------

fn config_from_value(v: &JsonValue) -> Result<MachineConfig, SnapshotError> {
    Ok(MachineConfig {
        peak_flops: get_f64(v, "peak_flops")?,
        cores: get_u32(v, "cores")?,
        mlp: get_f64(v, "mlp")?,
        local: tier_params_from_value(field(v, "local")?)?,
        pool: tier_params_from_value(field(v, "pool")?)?,
        link: LinkParams {
            data_bandwidth_bps: get_f64(field(v, "link")?, "data_bandwidth_bps")?,
            raw_bandwidth_bps: get_f64(field(v, "link")?, "raw_bandwidth_bps")?,
            max_utilization: get_f64(field(v, "link")?, "max_utilization")?,
            bandwidth_contention_factor: get_f64(field(v, "link")?, "bandwidth_contention_factor")?,
        },
        cache: CacheParams {
            l2_bytes: get_u64(field(v, "cache")?, "l2_bytes")?,
            l2_ways: get_u32(field(v, "cache")?, "l2_ways")?,
            llc_bytes: get_u64(field(v, "cache")?, "llc_bytes")?,
            llc_ways: get_u32(field(v, "cache")?, "llc_ways")?,
            line_bytes: get_u64(field(v, "cache")?, "line_bytes")?,
        },
        prefetch: PrefetchParams {
            enabled: get_bool(field(v, "prefetch")?, "enabled")?,
            degree: get_u32(field(v, "prefetch")?, "degree")?,
            trigger: get_u32(field(v, "prefetch")?, "trigger")?,
            max_streams: get_u64(field(v, "prefetch")?, "max_streams")? as usize,
        },
        chunk_bytes: get_u64(v, "chunk_bytes")?,
        chunk_flops: get_u64(v, "chunk_flops")?,
    })
}

fn tier_params_from_value(v: &JsonValue) -> Result<TierParams, SnapshotError> {
    Ok(TierParams {
        name: get_str(v, "name")?,
        capacity_bytes: get_opt_u64(v, "capacity_bytes")?,
        bandwidth_bps: get_f64(v, "bandwidth_bps")?,
        latency_s: get_f64(v, "latency_s")?,
    })
}

fn interference_from_value(v: &JsonValue) -> Result<InterferenceProfile, SnapshotError> {
    match v {
        JsonValue::String(s) if s == "Idle" => Ok(InterferenceProfile::Idle),
        JsonValue::Object(_) => {
            if let Some(level) = v.get("Constant") {
                return Ok(InterferenceProfile::Constant(f64_of(level)?));
            }
            if let Some(epochs) = v.get("Schedule") {
                let epochs = epochs
                    .as_array()
                    .ok_or_else(|| corrupt("Schedule is not an array"))?
                    .iter()
                    .map(|e| {
                        Ok(InterferenceEpoch {
                            start_s: get_f64(e, "start_s")?,
                            loi: get_f64(e, "loi")?,
                        })
                    })
                    .collect::<Result<Vec<_>, SnapshotError>>()?;
                return Ok(InterferenceProfile::Schedule(epochs));
            }
            Err(corrupt("unknown interference profile variant"))
        }
        _ => Err(corrupt("malformed interference profile")),
    }
}

fn counters_from_value(v: &JsonValue) -> Result<Counters, SnapshotError> {
    Ok(Counters {
        flops: get_u64(v, "flops")?,
        demand_read_lines: get_u64(v, "demand_read_lines")?,
        demand_write_lines: get_u64(v, "demand_write_lines")?,
        l2_demand_misses: get_u64(v, "l2_demand_misses")?,
        l2_lines_in: get_u64(v, "l2_lines_in")?,
        pf_issued: get_u64(v, "pf_issued")?,
        pf_useful: get_u64(v, "pf_useful")?,
        useless_hwpf: get_u64(v, "useless_hwpf")?,
        dram_lines_local: get_u64(v, "dram_lines_local")?,
        dram_lines_pool: get_u64(v, "dram_lines_pool")?,
        demand_dram_lines_local: get_u64(v, "demand_dram_lines_local")?,
        demand_dram_lines_pool: get_u64(v, "demand_dram_lines_pool")?,
        writeback_lines_local: get_u64(v, "writeback_lines_local")?,
        writeback_lines_pool: get_u64(v, "writeback_lines_pool")?,
        link_raw_bytes: get_u64(v, "link_raw_bytes")?,
        migration_lines_local: get_u64(v, "migration_lines_local")?,
        migration_lines_pool: get_u64(v, "migration_lines_pool")?,
    })
}

fn timeline_from_value(v: &JsonValue) -> Result<TimelineSample, SnapshotError> {
    Ok(TimelineSample {
        start_s: get_f64(v, "start_s")?,
        duration_s: get_f64(v, "duration_s")?,
        counters: counters_from_value(field(v, "counters")?)?,
        phase: match field(v, "phase")? {
            JsonValue::Null => None,
            other => Some(u64_of(other)? as usize),
        },
    })
}

fn tier_from_value(v: &JsonValue) -> Result<Tier, SnapshotError> {
    match v.as_str() {
        Some("Local") => Ok(Tier::Local),
        Some("Pool") => Ok(Tier::Pool),
        _ => Err(corrupt("unknown tier")),
    }
}

fn policy_from_value(v: &JsonValue) -> Result<PlacementPolicy, SnapshotError> {
    match v {
        JsonValue::String(s) => match s.as_str() {
            "FirstTouch" => Ok(PlacementPolicy::FirstTouch),
            "ForceLocal" => Ok(PlacementPolicy::ForceLocal),
            "ForceRemote" => Ok(PlacementPolicy::ForceRemote),
            other => Err(corrupt(format!("unknown placement policy '{other}'"))),
        },
        JsonValue::Object(_) => {
            let body = v
                .get("Interleave")
                .ok_or_else(|| corrupt("unknown placement policy variant"))?;
            Ok(PlacementPolicy::Interleave {
                local: get_u32(body, "local")?,
                remote: get_u32(body, "remote")?,
            })
        }
        _ => Err(corrupt("malformed placement policy")),
    }
}

fn allocation_from_value(v: &JsonValue) -> Result<AllocationRecord, SnapshotError> {
    Ok(AllocationRecord {
        handle: ObjectHandle(get_u32(v, "handle")?),
        name: get_str(v, "name")?,
        site: get_str(v, "site")?,
        bytes: get_u64(v, "bytes")?,
        order: get_u64(v, "order")? as usize,
        policy: policy_from_value(field(v, "policy")?)?,
        freed: get_bool(v, "freed")?,
    })
}

fn placement_from_value(
    v: &JsonValue,
) -> Result<crate::address_space::ObjectPlacement, SnapshotError> {
    Ok(crate::address_space::ObjectPlacement {
        pages_local: get_u64(v, "pages_local")?,
        pages_pool: get_u64(v, "pages_pool")?,
        dram_lines_local: get_u64(v, "dram_lines_local")?,
        dram_lines_pool: get_u64(v, "dram_lines_pool")?,
    })
}

fn hotness_from_value(v: &JsonValue) -> Result<HotnessState, SnapshotError> {
    Ok(HotnessState {
        decay: get_f64(v, "decay")?,
        epochs_completed: get_u64(v, "epochs_completed")?,
        heat: get_arr(v, "heat")?
            .iter()
            .map(|e| {
                Ok(HeatEntry {
                    page: get_u64(e, "page")?,
                    score: get_f64(e, "score")?,
                    cur_lines: get_u64(e, "cur_lines")?,
                })
            })
            .collect::<Result<_, SnapshotError>>()?,
        anchor_hot: u64_arr(v, "anchor_hot")?,
    })
}

fn space_from_value(v: &JsonValue) -> Result<AddressSpaceState, SnapshotError> {
    Ok(AddressSpaceState {
        local_capacity_pages: get_opt_u64(v, "local_capacity_pages")?,
        pool_capacity_pages: get_opt_u64(v, "pool_capacity_pages")?,
        allocations: get_arr(v, "allocations")?
            .iter()
            .map(allocation_from_value)
            .collect::<Result<_, _>>()?,
        extents: get_arr(v, "extents")?
            .iter()
            .map(|e| {
                Ok(ExtentState {
                    first_page: get_u64(e, "first_page")?,
                    page_count: get_u64(e, "page_count")?,
                    handle: get_u32(e, "handle")?,
                })
            })
            .collect::<Result<_, SnapshotError>>()?,
        placements: get_arr(v, "placements")?
            .iter()
            .map(placement_from_value)
            .collect::<Result<_, _>>()?,
        assigned_pages: u64_arr(v, "assigned_pages")?,
        next_page: get_u64(v, "next_page")?,
        page_tier: get_arr(v, "page_tier")?
            .iter()
            .map(|b| {
                Ok(PageBinding {
                    page: get_u64(b, "page")?,
                    tier: tier_from_value(field(b, "tier")?)?,
                    owner: get_u32(b, "owner")?,
                })
            })
            .collect::<Result<_, SnapshotError>>()?,
        local_pages_used: get_u64(v, "local_pages_used")?,
        pool_pages_used: get_u64(v, "pool_pages_used")?,
        spilled_pages: get_u64(v, "spilled_pages")?,
        live_bytes: get_u64(v, "live_bytes")?,
        peak_bytes: get_u64(v, "peak_bytes")?,
        histogram: get_arr(v, "histogram")?
            .iter()
            .map(|c| {
                Ok(PageCount {
                    page: get_u64(c, "page")?,
                    count: get_u64(c, "count")?,
                })
            })
            .collect::<Result<_, SnapshotError>>()?,
        hotness: match field(v, "hotness")? {
            JsonValue::Null => None,
            other => Some(hotness_from_value(other)?),
        },
    })
}

fn cache_level_from_value(v: &JsonValue) -> Result<CacheLevelState, SnapshotError> {
    let state = CacheLevelState {
        sets: get_u64(v, "sets")?,
        ways: get_u64(v, "ways")?,
        clock: get_u64(v, "clock")?,
        tags: u64_arr(v, "tags")?,
        stamps: u64_arr(v, "stamps")?,
        flags: u64_arr(v, "flags")?,
    };
    let lines = state
        .sets
        .checked_mul(state.ways)
        .ok_or_else(|| corrupt("cache geometry overflows"))? as usize;
    if state.tags.len() != lines || state.stamps.len() != lines || state.flags.len() != lines {
        return Err(corrupt("cache line arrays disagree with geometry"));
    }
    Ok(state)
}

fn cache_from_value(v: &JsonValue) -> Result<CacheState, SnapshotError> {
    let pf = field(v, "prefetcher")?;
    let replay = field(v, "replay")?;
    Ok(CacheState {
        l2: cache_level_from_value(field(v, "l2")?)?,
        llc: cache_level_from_value(field(v, "llc")?)?,
        prefetcher: PrefetcherState {
            enabled: get_bool(pf, "enabled")?,
            clock: get_u64(pf, "clock")?,
            feedback_useful: get_u64(pf, "feedback_useful")?,
            feedback_useless: get_u64(pf, "feedback_useless")?,
            entries: get_arr(pf, "entries")?
                .iter()
                .map(|e| {
                    Ok(StreamEntryState {
                        page: get_u64(e, "page")?,
                        last_line: get_u64(e, "last_line")?,
                        run: get_u32(e, "run")?,
                        stamp: get_u64(e, "stamp")?,
                        valid: get_bool(e, "valid")?,
                    })
                })
                .collect::<Result<_, SnapshotError>>()?,
        },
        replay: ReplayState {
            enabled: get_bool(replay, "enabled")?,
            windows_replayed_total: get_u64(replay, "windows_replayed_total")?,
            passes_replayed_total: get_u64(replay, "passes_replayed_total")?,
            stride_elems_replayed_total: get_u64(replay, "stride_elems_replayed_total")?,
        },
    })
}

fn tiering_spec_from_value(v: &JsonValue) -> Result<TieringSpec, SnapshotError> {
    match v {
        JsonValue::String(s) if s == "Static" => Ok(TieringSpec::Static),
        JsonValue::Object(_) => {
            if let Some(p) = v.get("HotPromote") {
                return Ok(TieringSpec::HotPromote(HotPromote {
                    epoch_lines: get_u64(p, "epoch_lines")?,
                    promote_heat: get_f64(p, "promote_heat")?,
                    demote_heat: get_f64(p, "demote_heat")?,
                    decay: get_f64(p, "decay")?,
                    cooldown_epochs: get_u64(p, "cooldown_epochs")?,
                    max_moves_per_epoch: get_u64(p, "max_moves_per_epoch")?,
                }));
            }
            if let Some(p) = v.get("PeriodicRebalance") {
                return Ok(TieringSpec::PeriodicRebalance(PeriodicRebalance {
                    epoch_lines: get_u64(p, "epoch_lines")?,
                    period_epochs: get_u64(p, "period_epochs")?,
                    top_k: get_u64(p, "top_k")?,
                    decay: get_f64(p, "decay")?,
                    cooldown_epochs: get_u64(p, "cooldown_epochs")?,
                }));
            }
            Err(corrupt("unknown tiering spec variant"))
        }
        _ => Err(corrupt("malformed tiering spec")),
    }
}

fn tiering_from_value(v: &JsonValue) -> Result<TieringState, SnapshotError> {
    let stats = field(v, "stats")?;
    Ok(TieringState {
        spec: tiering_spec_from_value(field(v, "spec")?)?,
        epoch_acc: get_u64(v, "epoch_acc")?,
        epoch: get_u64(v, "epoch")?,
        last_migrated: get_arr(v, "last_migrated")?
            .iter()
            .map(|e| {
                Ok(PageEpoch {
                    page: get_u64(e, "page")?,
                    epoch: get_u64(e, "epoch")?,
                })
            })
            .collect::<Result<_, SnapshotError>>()?,
        stats: TieringStats {
            epochs: get_u64(stats, "epochs")?,
            promotions: get_u64(stats, "promotions")?,
            demotions: get_u64(stats, "demotions")?,
            ping_pongs_damped: get_u64(stats, "ping_pongs_damped")?,
            skipped_capacity: get_u64(stats, "skipped_capacity")?,
            hot_set_shifts: get_u64(stats, "hot_set_shifts")?,
            dwell_epochs_total: get_u64(stats, "dwell_epochs_total")?,
            open_dwell_epochs: get_u64(stats, "open_dwell_epochs")?,
            hot_set_pages_max: get_u64(stats, "hot_set_pages_max")?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Machine;
    use dismem_trace::MemoryEngine;

    fn snapshotted_machine() -> (Machine, MachineSnapshot) {
        let mut m = Machine::new(MachineConfig::test_config());
        m.set_tiering_spec(&TieringSpec::HotPromote(HotPromote::new(4096, 8.0)));
        let a = m.alloc("A", "t", 1 << 20);
        m.phase_start("warm");
        m.touch(a, 1 << 20);
        m.read(a, 0, 1 << 20);
        m.flops(100_000);
        m.phase_end();
        let snap = m.snapshot().expect("snapshot");
        (m, snap)
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let (_, snap) = snapshotted_machine();
        let json = snap.to_json();
        let back = MachineSnapshot::from_json(&json).expect("parse own JSON");
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn binary_round_trip_is_byte_identical() {
        let (_, snap) = snapshotted_machine();
        let key = 0xfeed_face_cafe_beefu64;
        let bytes = snap.to_snapshot_bytes(key);
        let back = MachineSnapshot::from_snapshot_bytes(&bytes, key).expect("decode");
        assert_eq!(back.to_json(), snap.to_json());
        assert_eq!(back.to_snapshot_bytes(key), bytes);
    }

    #[test]
    fn foreign_digest_is_typed() {
        let (_, snap) = snapshotted_machine();
        let bytes = snap.to_snapshot_bytes(1);
        match MachineSnapshot::from_snapshot_bytes(&bytes, 2) {
            Err(SnapshotError::ForeignDigest {
                found: 1,
                expected: 2,
            }) => {}
            other => panic!("expected ForeignDigest, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let (_, snap) = snapshotted_machine();
        let mut bytes = snap.to_snapshot_bytes(1);
        bytes[4] ^= 0xff;
        match MachineSnapshot::from_snapshot_bytes(&bytes, 1) {
            Err(SnapshotError::VersionMismatch { expected, .. }) => {
                assert_eq!(expected, SNAPSHOT_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let (_, snap) = snapshotted_machine();
        let key = 7;
        let bytes = snap.to_snapshot_bytes(key);
        for cut in [
            0,
            3,
            HEADER_LEN - 1,
            HEADER_LEN,
            bytes.len() / 2,
            bytes.len() - 1,
        ] {
            assert!(
                MachineSnapshot::from_snapshot_bytes(&bytes[..cut], key).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let (_, snap) = snapshotted_machine();
        let mut bytes = snap.to_snapshot_bytes(7);
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN - 8) / 2;
        bytes[mid] ^= 0x55;
        match MachineSnapshot::from_snapshot_bytes(&bytes, 7) {
            Err(SnapshotError::Corrupt(msg)) => assert!(msg.contains("checksum")),
            other => panic!("expected Corrupt(checksum), got {other:?}"),
        }
    }

    #[test]
    fn restore_resumes_bit_identically() {
        // The full mid-run/pipeline matrix lives in tests/properties.rs; this
        // is the module-level smoke: restore + finish == plain finish.
        let (mut original, snap) = snapshotted_machine();
        let mut restored = Machine::restore(&snap).expect("restore");
        let a = ObjectHandle(0);
        original.read(a, 0, 1 << 20);
        restored.read(a, 0, 1 << 20);
        assert_eq!(original.finish(), restored.finish());
    }

    #[test]
    fn raw_policy_box_is_unsupported() {
        let mut m = Machine::new(MachineConfig::test_config());
        m.set_tiering(Box::new(crate::tiering::Static));
        assert_eq!(m.snapshot().unwrap_err(), SnapshotError::UnsupportedPolicy);
    }

    #[test]
    fn fnv_digest_matches_config_digest_scheme() {
        let config = MachineConfig::test_config();
        let mut json = String::new();
        Serialize::serialize_json(&config, &mut json);
        assert_eq!(fnv1a64(json.as_bytes()), config.config_digest());
    }
}
