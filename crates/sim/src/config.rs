//! Machine configuration: tier, link, cache, prefetcher and timing parameters.
//!
//! The default configuration, [`MachineConfig::skylake_testbed`], reproduces
//! the paper's emulation platform: a dual-socket Intel Xeon (Skylake-X) where
//! socket 0 is the compute node, socket 1's DRAM is the memory pool, and the
//! UPI interconnect is the pool link (intra-socket 73 GB/s / 111 ns,
//! inter-socket 34 GB/s / 202 ns, raw link saturation around 85 GB/s).

use serde::{Deserialize, Serialize};

/// Parameters of one memory tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierParams {
    /// Human-readable tier name.
    pub name: String,
    /// Usable capacity in bytes; `None` means unbounded (used for Level-1
    /// profiling runs where everything fits locally).
    pub capacity_bytes: Option<u64>,
    /// Sustainable bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Idle (unloaded) access latency in seconds.
    pub latency_s: f64,
}

impl TierParams {
    /// Node-local DDR tier of the paper's testbed.
    pub fn local_ddr() -> Self {
        Self {
            name: "local-ddr".to_string(),
            capacity_bytes: None,
            bandwidth_bps: 73.0e9,
            latency_s: 111.0e-9,
        }
    }

    /// Rack-level memory-pool tier of the paper's testbed (remote socket DRAM
    /// reached over UPI in the emulation).
    pub fn memory_pool() -> Self {
        Self {
            name: "memory-pool".to_string(),
            capacity_bytes: None,
            bandwidth_bps: 34.0e9,
            latency_s: 202.0e-9,
        }
    }

    /// Returns a copy with the given capacity.
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.capacity_bytes = Some(bytes);
        self
    }
}

/// Parameters of the link between the compute node and the memory pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Peak payload (data) bandwidth in bytes per second.
    pub data_bandwidth_bps: f64,
    /// Peak raw link traffic in bytes per second, including protocol overhead
    /// (the paper observes saturation at ~85 GB/s while payload peaks at
    /// ~34 GB/s).
    pub raw_bandwidth_bps: f64,
    /// Maximum utilization used when computing queueing delay, to keep the
    /// M/M/1-style factor finite.
    pub max_utilization: f64,
    /// How strongly background interference eats into the payload bandwidth
    /// the application can still extract from the link (0 = not at all,
    /// 1 = strict partitioning). A single node cannot saturate the link on
    /// its own — its concurrency is limited — so an interferer consuming
    /// LoI of the raw bandwidth removes only part of the application's
    /// achievable payload rate; the rest of the impact arrives as queueing
    /// latency. Calibrated against the paper's Figure 10.
    pub bandwidth_contention_factor: f64,
}

impl LinkParams {
    /// UPI link of the paper's testbed.
    pub fn upi() -> Self {
        Self {
            data_bandwidth_bps: 34.0e9,
            raw_bandwidth_bps: 85.0e9,
            max_utilization: 0.95,
            bandwidth_contention_factor: 0.4,
        }
    }

    /// Ratio of raw link traffic to payload traffic (protocol overhead).
    pub fn protocol_overhead(&self) -> f64 {
        self.raw_bandwidth_bps / self.data_bandwidth_bps
    }
}

/// Cache hierarchy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// L2 capacity in bytes (per simulated node aggregate).
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Last-level cache capacity in bytes.
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: u32,
    /// Cache line size in bytes.
    pub line_bytes: u64,
}

impl CacheParams {
    /// Skylake-X-like hierarchy: 1 MiB L2 per core (scaled), 16.5 MiB shared
    /// non-inclusive LLC (modelled as 16 MiB).
    pub fn skylake() -> Self {
        Self {
            l2_bytes: 1 << 20,
            l2_ways: 16,
            llc_bytes: 16 << 20,
            llc_ways: 16,
            line_bytes: 64,
        }
    }

    /// A hierarchy scaled down proportionally to the reduced problem sizes of
    /// the proxy workloads, preserving the paper's footprint-to-cache ratio
    /// (the real testbed runs multi-GiB problems against a ~16 MiB LLC; the
    /// proxies run tens-of-MiB problems against a 2 MiB LLC).
    pub fn scaled_emulation() -> Self {
        Self {
            l2_bytes: 256 * 1024,
            l2_ways: 8,
            llc_bytes: 2 << 20,
            llc_ways: 16,
            line_bytes: 64,
        }
    }

    /// A deliberately small hierarchy for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            l2_bytes: 8 * 1024,
            l2_ways: 4,
            llc_bytes: 64 * 1024,
            llc_ways: 8,
            line_bytes: 64,
        }
    }

    /// Number of L2 sets.
    pub fn l2_sets(&self) -> usize {
        (self.l2_bytes / (self.line_bytes * self.l2_ways as u64)) as usize
    }

    /// Number of LLC sets.
    pub fn llc_sets(&self) -> usize {
        (self.llc_bytes / (self.line_bytes * self.llc_ways as u64)) as usize
    }
}

/// Hardware stream-prefetcher parameters (the L2 prefetcher the paper toggles
/// via MSR 0x1a4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchParams {
    /// Whether hardware prefetching is enabled.
    pub enabled: bool,
    /// Number of consecutive lines fetched ahead once a stream is confirmed.
    pub degree: u32,
    /// Number of sequential accesses needed to confirm a stream.
    pub trigger: u32,
    /// Maximum number of concurrently tracked streams.
    pub max_streams: usize,
}

impl Default for PrefetchParams {
    fn default() -> Self {
        Self {
            enabled: true,
            degree: 4,
            trigger: 2,
            max_streams: 32,
        }
    }
}

impl PrefetchParams {
    /// Prefetching disabled (the paper's "w.o Prefetch" configuration).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Default::default()
        }
    }
}

/// Complete machine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Peak floating-point throughput in flop/s.
    pub peak_flops: f64,
    /// Number of cores on the compute node (informational; the timing model
    /// works with node-aggregate quantities).
    pub cores: u32,
    /// Node-aggregate memory-level parallelism: how many demand misses can be
    /// outstanding simultaneously. Determines how much latency un-prefetched
    /// misses expose.
    pub mlp: f64,
    /// Node-local memory tier.
    pub local: TierParams,
    /// Memory-pool tier.
    pub pool: TierParams,
    /// Link between node and pool.
    pub link: LinkParams,
    /// Cache hierarchy.
    pub cache: CacheParams,
    /// Hardware prefetcher.
    pub prefetch: PrefetchParams,
    /// Timing-chunk granularity in DRAM-traffic bytes: counters are folded
    /// into execution time whenever this much traffic has accumulated.
    pub chunk_bytes: u64,
    /// Timing-chunk granularity in flops.
    pub chunk_flops: u64,
}

impl MachineConfig {
    /// The paper's emulated disaggregated-memory platform.
    pub fn skylake_testbed() -> Self {
        Self {
            peak_flops: 460.0e9,
            cores: 12,
            mlp: 48.0,
            local: TierParams::local_ddr(),
            pool: TierParams::memory_pool(),
            link: LinkParams::upi(),
            cache: CacheParams::skylake(),
            prefetch: PrefetchParams::default(),
            chunk_bytes: 4 << 20,
            chunk_flops: 32_000_000,
        }
    }

    /// The experiment configuration used by the benchmark harnesses: the
    /// paper's testbed bandwidth/latency/link figures with a cache hierarchy
    /// scaled down in proportion to the proxy workloads' reduced footprints
    /// (see [`CacheParams::scaled_emulation`]).
    pub fn scaled_testbed() -> Self {
        Self {
            cache: CacheParams::scaled_emulation(),
            chunk_bytes: 2 << 20,
            chunk_flops: 16_000_000,
            ..Self::skylake_testbed()
        }
    }

    /// A small, fast configuration for unit tests: tiny caches and coarse
    /// chunks so tests run in microseconds.
    pub fn test_config() -> Self {
        Self {
            peak_flops: 100.0e9,
            cores: 4,
            mlp: 16.0,
            local: TierParams::local_ddr(),
            pool: TierParams::memory_pool(),
            link: LinkParams::upi(),
            cache: CacheParams::tiny(),
            prefetch: PrefetchParams::default(),
            chunk_bytes: 64 * 1024,
            chunk_flops: 1_000_000,
        }
    }

    /// Sets the local-tier capacity in bytes.
    pub fn with_local_capacity(mut self, bytes: u64) -> Self {
        self.local.capacity_bytes = Some(bytes);
        self
    }

    /// Sets the pool-tier capacity in bytes.
    pub fn with_pool_capacity(mut self, bytes: u64) -> Self {
        self.pool.capacity_bytes = Some(bytes);
        self
    }

    /// Configures the tiers so that the local tier holds `local_fraction`
    /// (0–1) of `footprint_bytes` and the pool holds the rest (uncapped).
    ///
    /// This mirrors the paper's `setup_waste` step: local capacity is reduced
    /// to 75 / 50 / 25 % of the application's peak usage so the remainder
    /// spills to the pool.
    pub fn with_pooling(mut self, footprint_bytes: u64, local_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&local_fraction),
            "local_fraction must be within [0, 1], got {local_fraction}"
        );
        let local = (footprint_bytes as f64 * local_fraction).round() as u64;
        // Round up to whole pages so the capacity is usable.
        let page = dismem_trace::PAGE_SIZE;
        let local = local.div_ceil(page) * page;
        self.local.capacity_bytes = Some(local);
        self.pool.capacity_bytes = None;
        self
    }

    /// Enables or disables the hardware prefetcher.
    pub fn with_prefetch(mut self, enabled: bool) -> Self {
        self.prefetch.enabled = enabled;
        self
    }

    /// Stable content digest of this configuration.
    ///
    /// FNV-1a over the serialized JSON form: any field change — tier
    /// capacities, link figures, cache geometry, prefetcher — changes the
    /// digest. The campaign journal stamps every record with the digest of
    /// the spec it ran under, so `resume_campaign` can reject records written
    /// by a process with a different machine configuration instead of
    /// silently mixing incomparable results.
    pub fn config_digest(&self) -> u64 {
        let mut json = String::new();
        serde::Serialize::serialize_json(self, &mut json);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in json.as_bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Ridge point of the machine's roofline (flops per byte of local DRAM
    /// traffic at which it becomes compute bound).
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops / self.local.bandwidth_bps
    }

    /// Effective streaming bandwidth achievable by unprefetched demand misses
    /// against a tier with latency `latency_s`: `mlp * line / latency`.
    pub fn latency_limited_bandwidth(&self, latency_s: f64) -> f64 {
        self.mlp * self.cache.line_bytes as f64 / latency_s
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::skylake_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_testbed_matches_paper_numbers() {
        let c = MachineConfig::skylake_testbed();
        assert_eq!(c.local.bandwidth_bps, 73.0e9);
        assert_eq!(c.pool.bandwidth_bps, 34.0e9);
        assert!((c.local.latency_s - 111e-9).abs() < 1e-12);
        assert!((c.pool.latency_s - 202e-9).abs() < 1e-12);
        assert_eq!(c.link.raw_bandwidth_bps, 85.0e9);
    }

    #[test]
    fn protocol_overhead_is_positive() {
        let l = LinkParams::upi();
        assert!(l.protocol_overhead() > 1.0);
    }

    #[test]
    fn cache_set_counts() {
        let c = CacheParams::skylake();
        assert_eq!(c.l2_sets(), (1 << 20) / (64 * 16));
        assert_eq!(c.llc_sets(), (16 << 20) / (64 * 16));
        let t = CacheParams::tiny();
        assert_eq!(
            t.l2_sets() * t.l2_ways as usize * t.line_bytes as usize,
            8 * 1024
        );
    }

    #[test]
    fn with_pooling_sets_local_capacity() {
        let fp = 100 * dismem_trace::PAGE_SIZE;
        let c = MachineConfig::skylake_testbed().with_pooling(fp, 0.25);
        let cap = c.local.capacity_bytes.unwrap();
        assert_eq!(cap, 25 * dismem_trace::PAGE_SIZE);
        assert!(c.pool.capacity_bytes.is_none());
    }

    #[test]
    #[should_panic(expected = "local_fraction")]
    fn with_pooling_rejects_bad_fraction() {
        let _ = MachineConfig::skylake_testbed().with_pooling(1000, 1.5);
    }

    #[test]
    fn ridge_point_and_latency_bandwidth() {
        let c = MachineConfig::skylake_testbed();
        assert!(c.ridge_point() > 1.0 && c.ridge_point() < 20.0);
        let lat_bw_local = c.latency_limited_bandwidth(c.local.latency_s);
        let lat_bw_pool = c.latency_limited_bandwidth(c.pool.latency_s);
        // Latency-limited bandwidth must be lower than peak and lower for the
        // farther tier.
        assert!(lat_bw_local < c.local.bandwidth_bps);
        assert!(lat_bw_pool < lat_bw_local);
    }

    #[test]
    fn scaled_testbed_keeps_memory_figures_but_shrinks_caches() {
        let full = MachineConfig::skylake_testbed();
        let scaled = MachineConfig::scaled_testbed();
        assert_eq!(scaled.local.bandwidth_bps, full.local.bandwidth_bps);
        assert_eq!(scaled.pool.latency_s, full.pool.latency_s);
        assert!(scaled.cache.llc_bytes < full.cache.llc_bytes);
        assert!(scaled.cache.l2_bytes < full.cache.l2_bytes);
        assert!(scaled.cache.l2_sets() > 0 && scaled.cache.llc_sets() > 0);
    }

    #[test]
    fn prefetch_disabled_constructor() {
        assert!(!PrefetchParams::disabled().enabled);
        assert!(PrefetchParams::default().enabled);
    }

    #[test]
    fn config_digest_is_stable_and_field_sensitive() {
        let a = MachineConfig::test_config();
        let b = MachineConfig::test_config();
        assert_eq!(a.config_digest(), b.config_digest());
        let c = MachineConfig::test_config().with_local_capacity(1 << 20);
        assert_ne!(a.config_digest(), c.config_digest());
        let d = MachineConfig::test_config().with_prefetch(false);
        assert_ne!(a.config_digest(), d.config_digest());
    }
}
