//! Page-granular virtual address space with tiered placement.
//!
//! Pages are bound to a memory tier on first touch, following the placement
//! policy of the owning allocation. The default first-touch policy fills the
//! node-local tier until its capacity is exhausted and then spills to the
//! memory pool — the Linux behaviour the paper's emulation platform relies on
//! (NUMA balancing and THP disabled). Freed pages return their tier capacity,
//! which is what makes allocation order and early frees effective placement
//! optimizations (the BFS case study).

use crate::tiering::HotnessTracker;
use dismem_trace::access::pages_for;
use dismem_trace::{AllocationRecord, ObjectHandle, PageHistogram, PlacementPolicy};
use serde::{Deserialize, Serialize};
// The page-tier map is consulted on every simulated line access; ordered
// consumers go through sorted snapshots (see `bound_pages`).
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

/// Memory tier a page can be bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Node-local memory.
    Local,
    /// Rack-level memory pool (remote).
    Pool,
}

impl Tier {
    /// `true` for [`Tier::Pool`].
    pub fn is_remote(self) -> bool {
        matches!(self, Tier::Pool)
    }
}

/// Per-object placement and traffic summary maintained by the address space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectPlacement {
    /// Pages of the object currently bound to the local tier.
    pub pages_local: u64,
    /// Pages of the object currently bound to the pool tier.
    pub pages_pool: u64,
    /// DRAM line accesses served from the local tier for this object.
    pub dram_lines_local: u64,
    /// DRAM line accesses served from the pool tier for this object.
    pub dram_lines_pool: u64,
}

impl ObjectPlacement {
    /// Fraction of this object's DRAM accesses that went to the pool.
    pub fn remote_access_ratio(&self) -> f64 {
        let total = self.dram_lines_local + self.dram_lines_pool;
        if total == 0 {
            return 0.0;
        }
        self.dram_lines_pool as f64 / total as f64
    }
}

/// Error raised when no tier can hold a newly touched page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Page that could not be placed.
    pub page: u64,
    /// Name of the owning object.
    pub object: String,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: no tier can hold page {} of object '{}'",
            self.page, self.object
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Error raised by [`AddressSpace::free`] for invalid frees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FreeError {
    /// The handle does not name any allocation of this address space.
    UnknownHandle(ObjectHandle),
    /// The object was already freed.
    DoubleFree {
        /// Name of the object being freed twice.
        object: String,
    },
}

impl std::fmt::Display for FreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FreeError::UnknownHandle(h) => write!(f, "free of unknown handle {}", h.0),
            FreeError::DoubleFree { object } => write!(f, "double free of object '{object}'"),
        }
    }
}

impl std::error::Error for FreeError {}

/// Error raised by [`AddressSpace::rebind_page`] when a migration cannot be
/// applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebindError {
    /// The page is not bound to any tier (never touched, or freed).
    Unbound,
    /// The destination tier has no free capacity.
    NoCapacity,
}

impl std::fmt::Display for RebindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebindError::Unbound => write!(f, "page is not bound to a tier"),
            RebindError::NoCapacity => write!(f, "destination tier is full"),
        }
    }
}

impl std::error::Error for RebindError {}

#[derive(Debug, Clone)]
struct Extent {
    first_page: u64,
    page_count: u64,
    handle: ObjectHandle,
}

/// The tiered, page-granular address space.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    local_capacity_pages: Option<u64>,
    pool_capacity_pages: Option<u64>,
    allocations: Vec<AllocationRecord>,
    extents: Vec<Extent>,
    placements: Vec<ObjectPlacement>,
    /// Pages assigned so far per object (drives interleave patterns).
    assigned_pages: Vec<u64>,
    next_page: u64,
    #[allow(clippy::disallowed_types)]
    page_tier: HashMap<u64, (Tier, ObjectHandle)>,
    /// One-entry memo of the last [`AddressSpace::resolve_dram`] result
    /// (page, tier, owner): lines of the same page skip the hash lookup.
    /// Invalidated on free (the only operation that unbinds pages).
    last_resolved: Option<(u64, Tier, ObjectHandle)>,
    local_pages_used: u64,
    pool_pages_used: u64,
    /// Monotone count of local-preferring pages that fell through to the
    /// pool because the local tier was full (capacity spills).
    spilled_pages: u64,
    live_bytes: u64,
    peak_bytes: u64,
    histogram: PageHistogram,
    /// Per-page hotness tracking for the dynamic tiering subsystem; `None`
    /// (the default, and always under the `Static` policy) makes the traffic
    /// recording paths exactly as cheap as before tiering existed.
    hotness: Option<HotnessTracker>,
}

impl AddressSpace {
    /// Creates an address space with the given tier capacities (in bytes;
    /// `None` = unbounded).
    pub fn new(local_capacity_bytes: Option<u64>, pool_capacity_bytes: Option<u64>) -> Self {
        Self {
            local_capacity_pages: local_capacity_bytes.map(pages_for),
            pool_capacity_pages: pool_capacity_bytes.map(pages_for),
            allocations: Vec::new(),
            extents: Vec::new(),
            placements: Vec::new(),
            assigned_pages: Vec::new(),
            next_page: 1, // keep page 0 unused so address 0 is never valid
            #[allow(clippy::disallowed_types)]
            page_tier: HashMap::new(),
            last_resolved: None,
            local_pages_used: 0,
            pool_pages_used: 0,
            spilled_pages: 0,
            live_bytes: 0,
            peak_bytes: 0,
            histogram: PageHistogram::new(),
            hotness: None,
        }
    }

    /// Installs (or removes) the hotness tracker that the DRAM traffic
    /// recording feeds. Installed by [`crate::Machine`] when a dynamic
    /// tiering policy is set.
    pub fn set_hotness(&mut self, tracker: Option<HotnessTracker>) {
        self.hotness = tracker;
    }

    /// The installed hotness tracker, if any.
    pub fn hotness(&self) -> Option<&HotnessTracker> {
        self.hotness.as_ref()
    }

    /// Mutable access to the installed hotness tracker, if any.
    pub fn hotness_mut(&mut self) -> Option<&mut HotnessTracker> {
        self.hotness.as_mut()
    }

    /// Allocates an object and returns its handle. Pages are *not* bound to a
    /// tier yet; binding happens on first touch.
    pub fn alloc(
        &mut self,
        name: &str,
        site: &str,
        bytes: u64,
        policy: PlacementPolicy,
    ) -> ObjectHandle {
        let handle = ObjectHandle(self.allocations.len() as u32);
        let record =
            AllocationRecord::new(handle, name, site, bytes, self.allocations.len(), policy);
        let pages = pages_for(bytes).max(1);
        self.extents.push(Extent {
            first_page: self.next_page,
            page_count: pages,
            handle,
        });
        self.next_page += pages;
        self.allocations.push(record);
        self.placements.push(ObjectPlacement::default());
        self.assigned_pages.push(0);
        self.live_bytes += bytes;
        self.peak_bytes = self.peak_bytes.max(self.live_bytes);
        handle
    }

    /// Frees an object, releasing its bound pages back to their tiers.
    ///
    /// Invalid frees (unknown handle, double free) are reported as a typed
    /// [`FreeError`] so engines can surface them; the address space itself is
    /// left untouched in that case.
    pub fn free(&mut self, handle: ObjectHandle) -> Result<(), FreeError> {
        let idx = handle.index();
        if idx >= self.allocations.len() {
            return Err(FreeError::UnknownHandle(handle));
        }
        if self.allocations[idx].freed {
            return Err(FreeError::DoubleFree {
                object: self.allocations[idx].name.clone(),
            });
        }
        self.allocations[idx].freed = true;
        self.last_resolved = None;
        self.live_bytes = self.live_bytes.saturating_sub(self.allocations[idx].bytes);
        let extent = self.extents[idx].clone();
        for page in extent.first_page..extent.first_page + extent.page_count {
            if let Some((tier, _)) = self.page_tier.remove(&page) {
                match tier {
                    Tier::Local => {
                        self.local_pages_used -= 1;
                        self.placements[idx].pages_local -= 1;
                    }
                    Tier::Pool => {
                        self.pool_pages_used -= 1;
                        self.placements[idx].pages_pool -= 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Base address of an object's first byte.
    pub fn base_addr(&self, handle: ObjectHandle) -> u64 {
        self.extents[handle.index()].first_page * dismem_trace::PAGE_SIZE
    }

    /// Size (bytes) of an object as requested at allocation.
    pub fn object_bytes(&self, handle: ObjectHandle) -> u64 {
        self.allocations[handle.index()].bytes
    }

    /// Resolves the tier serving a DRAM access to `addr`, binding the page on
    /// first touch and updating per-page and per-object accounting.
    pub fn dram_access(&mut self, addr: u64) -> Result<Tier, OutOfMemory> {
        let page = addr / dismem_trace::PAGE_SIZE;
        self.histogram.record(page, 1);
        if let Some(h) = &mut self.hotness {
            h.record(page, 1);
        }
        if let Some(&(tier, owner)) = self.page_tier.get(&page) {
            self.bump_object_traffic(owner, tier);
            return Ok(tier);
        }
        let owner = self.owner_of_page(page).ok_or_else(|| OutOfMemory {
            page,
            object: "<unmapped>".to_string(),
        })?;
        let policy = self.allocations[owner.index()].policy;
        let tier = self.place_page(page, owner, policy)?;
        self.bump_object_traffic(owner, tier);
        Ok(tier)
    }

    /// Resolves the tier and owner serving a DRAM access to `addr`, binding
    /// the page on first touch, *without* recording per-page or per-object
    /// traffic (see [`AddressSpace::record_dram_traffic`]).
    ///
    /// This is the bulk-pipeline half of [`AddressSpace::dram_access`]: a
    /// one-entry memo makes repeated resolutions within the same page O(1),
    /// so a batch of contiguous cache lines pays the hash lookup (and, on
    /// first touch, the placement walk) once per page instead of once per
    /// line.
    pub fn resolve_dram(&mut self, addr: u64) -> Result<(Tier, ObjectHandle), OutOfMemory> {
        let page = addr / dismem_trace::PAGE_SIZE;
        if let Some((p, tier, owner)) = self.last_resolved {
            if p == page {
                return Ok((tier, owner));
            }
        }
        let (tier, owner) = if let Some(&(tier, owner)) = self.page_tier.get(&page) {
            (tier, owner)
        } else {
            let owner = self.owner_of_page(page).ok_or_else(|| OutOfMemory {
                page,
                object: "<unmapped>".to_string(),
            })?;
            let policy = self.allocations[owner.index()].policy;
            (self.place_page(page, owner, policy)?, owner)
        };
        self.last_resolved = Some((page, tier, owner));
        Ok((tier, owner))
    }

    /// Records `lines` DRAM line accesses to `page`, served from `tier` on
    /// behalf of `owner`. Together with [`AddressSpace::resolve_dram`] this
    /// is equivalent to `lines` calls of [`AddressSpace::dram_access`] for
    /// addresses within one page, with the bookkeeping batched.
    pub fn record_dram_traffic(&mut self, owner: ObjectHandle, tier: Tier, page: u64, lines: u64) {
        self.histogram.record(page, lines);
        if let Some(h) = &mut self.hotness {
            h.record(page, lines);
        }
        let p = &mut self.placements[owner.index()];
        match tier {
            Tier::Local => p.dram_lines_local += lines,
            Tier::Pool => p.dram_lines_pool += lines,
        }
    }

    /// Tier currently bound to the page containing `addr`, if any.
    pub fn tier_of(&self, addr: u64) -> Option<Tier> {
        self.page_tier
            .get(&(addr / dismem_trace::PAGE_SIZE))
            .map(|&(t, _)| t)
    }

    /// Tier currently bound to a page number, if any.
    pub fn tier_of_page(&self, page: u64) -> Option<Tier> {
        self.page_tier.get(&page).map(|&(t, _)| t)
    }

    /// Iterates over every bound page and its tier, in no particular order
    /// (callers that need determinism must sort).
    pub fn bound_pages(&self) -> impl Iterator<Item = (u64, Tier)> + '_ {
        // dismem-lint: allow(hash-iteration) — accessor documented as
        // unordered; the tiering epoch sorts the samples it builds from this.
        self.page_tier
            .iter()
            .map(|(&page, &(tier, _))| (page, tier))
    }

    /// Rebinds an already-bound page to another tier — the migration
    /// primitive of the dynamic tiering subsystem, and the only way a page
    /// changes tier after its first touch.
    ///
    /// Keeps every piece of derived state consistent: tier page counts, the
    /// owning object's [`ObjectPlacement`] page counts, and the resolve memo.
    /// Extents, the page histogram, per-object traffic counters and the
    /// first-touch interleave cursor (`assigned_pages`) are untouched — a
    /// migration moves data, it does not re-run placement. Returns the tier
    /// the page was bound to before.
    pub fn rebind_page(&mut self, page: u64, to: Tier) -> Result<Tier, RebindError> {
        let &(from, owner) = self.page_tier.get(&page).ok_or(RebindError::Unbound)?;
        if from == to {
            return Ok(from);
        }
        match to {
            Tier::Local if !self.local_has_room() => return Err(RebindError::NoCapacity),
            Tier::Pool if !self.pool_has_room() => return Err(RebindError::NoCapacity),
            _ => {}
        }
        let placement = &mut self.placements[owner.index()];
        match from {
            Tier::Local => {
                self.local_pages_used -= 1;
                placement.pages_local -= 1;
            }
            Tier::Pool => {
                self.pool_pages_used -= 1;
                placement.pages_pool -= 1;
            }
        }
        match to {
            Tier::Local => {
                self.local_pages_used += 1;
                placement.pages_local += 1;
            }
            Tier::Pool => {
                self.pool_pages_used += 1;
                placement.pages_pool += 1;
            }
        }
        self.page_tier.insert(page, (to, owner));
        self.last_resolved = None;
        Ok(from)
    }

    fn bump_object_traffic(&mut self, owner: ObjectHandle, tier: Tier) {
        let p = &mut self.placements[owner.index()];
        match tier {
            Tier::Local => p.dram_lines_local += 1,
            Tier::Pool => p.dram_lines_pool += 1,
        }
    }

    fn owner_of_page(&self, page: u64) -> Option<ObjectHandle> {
        // Extents are appended in increasing page order, so binary search works.
        let idx = self
            .extents
            .partition_point(|e| e.first_page + e.page_count <= page);
        let extent = self.extents.get(idx)?;
        if page >= extent.first_page && page < extent.first_page + extent.page_count {
            Some(extent.handle)
        } else {
            None
        }
    }

    fn local_has_room(&self) -> bool {
        match self.local_capacity_pages {
            Some(cap) => self.local_pages_used < cap,
            None => true,
        }
    }

    fn pool_has_room(&self) -> bool {
        match self.pool_capacity_pages {
            Some(cap) => self.pool_pages_used < cap,
            None => true,
        }
    }

    fn place_page(
        &mut self,
        page: u64,
        owner: ObjectHandle,
        policy: PlacementPolicy,
    ) -> Result<Tier, OutOfMemory> {
        let prefer_local = match policy {
            PlacementPolicy::FirstTouch | PlacementPolicy::ForceLocal => true,
            PlacementPolicy::ForceRemote => false,
            PlacementPolicy::Interleave { local, remote } => {
                let idx = self.assigned_pages[owner.index()];
                // Widen before adding: `local + remote` may exceed `u32::MAX`
                // (the constructor only rejects an all-zero ratio).
                let period = local as u64 + remote as u64;
                (idx % period) < local as u64
            }
        };
        let tier = if prefer_local {
            if self.local_has_room() {
                Tier::Local
            } else if self.pool_has_room() {
                self.spilled_pages += 1;
                Tier::Pool
            } else {
                return Err(self.oom(page, owner));
            }
        } else if self.pool_has_room() {
            Tier::Pool
        } else if self.local_has_room() {
            Tier::Local
        } else {
            return Err(self.oom(page, owner));
        };
        match tier {
            Tier::Local => {
                self.local_pages_used += 1;
                self.placements[owner.index()].pages_local += 1;
            }
            Tier::Pool => {
                self.pool_pages_used += 1;
                self.placements[owner.index()].pages_pool += 1;
            }
        }
        self.assigned_pages[owner.index()] += 1;
        self.page_tier.insert(page, (tier, owner));
        Ok(tier)
    }

    fn oom(&self, page: u64, owner: ObjectHandle) -> OutOfMemory {
        OutOfMemory {
            page,
            object: self.allocations[owner.index()].name.clone(),
        }
    }

    /// Allocation records in allocation order.
    pub fn allocations(&self) -> &[AllocationRecord] {
        &self.allocations
    }

    /// Placement summary for one object.
    pub fn placement(&self, handle: ObjectHandle) -> ObjectPlacement {
        self.placements[handle.index()]
    }

    /// Placement summaries for all objects, in allocation order.
    pub fn placements(&self) -> &[ObjectPlacement] {
        &self.placements
    }

    /// Pages currently bound to the local tier.
    pub fn local_pages_used(&self) -> u64 {
        self.local_pages_used
    }

    /// Pages currently bound to the pool tier.
    pub fn pool_pages_used(&self) -> u64 {
        self.pool_pages_used
    }

    /// Monotone count of pages that preferred the local tier but were placed
    /// in the pool because local capacity was exhausted.
    pub fn spilled_pages(&self) -> u64 {
        self.spilled_pages
    }

    /// Peak bytes of live allocations observed so far.
    pub fn peak_footprint_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Bytes of currently live allocations.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Page-access histogram over all DRAM accesses.
    pub fn histogram(&self) -> &PageHistogram {
        &self.histogram
    }

    /// Ratio of pool capacity usage to total bound pages — the paper's remote
    /// capacity ratio `R^remote_cap`.
    pub fn remote_capacity_ratio(&self) -> f64 {
        let total = self.local_pages_used + self.pool_pages_used;
        if total == 0 {
            return 0.0;
        }
        self.pool_pages_used as f64 / total as f64
    }

    /// Exports the complete address-space state for the machine snapshot
    /// codec. Hash-backed members leave as key-sorted vectors so the
    /// serialized form is deterministic; the resolve memo is transient and
    /// not captured.
    pub(crate) fn snapshot_state(&self) -> crate::snapshot::AddressSpaceState {
        use crate::snapshot::{
            AddressSpaceState, ExtentState, HeatEntry, HotnessState, PageBinding, PageCount,
        };
        // dismem-lint: allow(hash-iteration) — bindings are sorted by page
        // number immediately below.
        let mut page_tier: Vec<PageBinding> = self
            .page_tier
            .iter()
            .map(|(&page, &(tier, owner))| PageBinding {
                page,
                tier,
                owner: owner.0,
            })
            .collect();
        page_tier.sort_unstable_by_key(|b| b.page);
        let mut histogram: Vec<PageCount> = self
            .histogram
            .iter()
            .map(|(page, count)| PageCount { page, count })
            .collect();
        histogram.sort_unstable_by_key(|c| c.page);
        AddressSpaceState {
            local_capacity_pages: self.local_capacity_pages,
            pool_capacity_pages: self.pool_capacity_pages,
            allocations: self.allocations.clone(),
            extents: self
                .extents
                .iter()
                .map(|e| ExtentState {
                    first_page: e.first_page,
                    page_count: e.page_count,
                    handle: e.handle.0,
                })
                .collect(),
            placements: self.placements.clone(),
            assigned_pages: self.assigned_pages.clone(),
            next_page: self.next_page,
            page_tier,
            local_pages_used: self.local_pages_used,
            pool_pages_used: self.pool_pages_used,
            spilled_pages: self.spilled_pages,
            live_bytes: self.live_bytes,
            peak_bytes: self.peak_bytes,
            histogram,
            hotness: self.hotness.as_ref().map(|t| HotnessState {
                decay: t.snapshot_decay(),
                epochs_completed: t.epochs_completed(),
                heat: t
                    .snapshot_heat()
                    .into_iter()
                    .map(|(page, score, cur_lines)| HeatEntry {
                        page,
                        score,
                        cur_lines,
                    })
                    .collect(),
                anchor_hot: t.snapshot_anchor(),
            }),
        }
    }

    /// Rebuilds an address space from snapshot state, inverting
    /// [`AddressSpace::snapshot_state`]. Cross-checks the internal accounting
    /// and reports inconsistencies as a typed error instead of panicking on a
    /// hostile input.
    pub(crate) fn from_snapshot_state(
        state: &crate::snapshot::AddressSpaceState,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let corrupt = |msg: &str| SnapshotError::Corrupt(format!("address space: {msg}"));
        let objects = state.allocations.len();
        if state.extents.len() != objects
            || state.placements.len() != objects
            || state.assigned_pages.len() != objects
        {
            return Err(corrupt("per-object vectors disagree in length"));
        }
        let mut local = 0u64;
        let mut pool = 0u64;
        #[allow(clippy::disallowed_types)]
        let mut page_tier: HashMap<u64, (Tier, ObjectHandle)> =
            HashMap::with_capacity(state.page_tier.len());
        for binding in &state.page_tier {
            if binding.owner as usize >= objects {
                return Err(corrupt("page bound to unknown object"));
            }
            match binding.tier {
                Tier::Local => local += 1,
                Tier::Pool => pool += 1,
            }
            if page_tier
                .insert(binding.page, (binding.tier, ObjectHandle(binding.owner)))
                .is_some()
            {
                return Err(corrupt("page bound twice"));
            }
        }
        if local != state.local_pages_used || pool != state.pool_pages_used {
            return Err(corrupt("tier page counts disagree with bindings"));
        }
        let mut histogram = PageHistogram::new();
        for bucket in &state.histogram {
            histogram.record(bucket.page, bucket.count);
        }
        Ok(Self {
            local_capacity_pages: state.local_capacity_pages,
            pool_capacity_pages: state.pool_capacity_pages,
            allocations: state.allocations.clone(),
            extents: state
                .extents
                .iter()
                .map(|e| Extent {
                    first_page: e.first_page,
                    page_count: e.page_count,
                    handle: ObjectHandle(e.handle),
                })
                .collect(),
            placements: state.placements.clone(),
            assigned_pages: state.assigned_pages.clone(),
            next_page: state.next_page,
            page_tier,
            last_resolved: None,
            local_pages_used: state.local_pages_used,
            pool_pages_used: state.pool_pages_used,
            spilled_pages: state.spilled_pages,
            live_bytes: state.live_bytes,
            peak_bytes: state.peak_bytes,
            histogram,
            hotness: state.hotness.as_ref().map(|h| {
                let heat: Vec<(u64, f64, u64)> = h
                    .heat
                    .iter()
                    .map(|e| (e.page, e.score, e.cur_lines))
                    .collect();
                HotnessTracker::from_snapshot(h.decay, h.epochs_completed, &heat, &h.anchor_hot)
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::PAGE_SIZE;

    fn addr_of(space: &AddressSpace, h: ObjectHandle, offset: u64) -> u64 {
        space.base_addr(h) + offset
    }

    #[test]
    fn first_touch_spills_to_pool_when_local_full() {
        // Local capacity: 2 pages.
        let mut space = AddressSpace::new(Some(2 * PAGE_SIZE), None);
        let a = space.alloc("A", "t", 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        for p in 0..4 {
            space
                .dram_access(addr_of(&space, a, p * PAGE_SIZE))
                .unwrap();
        }
        assert_eq!(space.local_pages_used(), 2);
        assert_eq!(space.pool_pages_used(), 2);
        let pl = space.placement(a);
        assert_eq!(pl.pages_local, 2);
        assert_eq!(pl.pages_pool, 2);
        assert!((space.remote_capacity_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn force_remote_goes_to_pool_even_with_local_room() {
        let mut space = AddressSpace::new(Some(100 * PAGE_SIZE), None);
        let a = space.alloc("A", "t", 2 * PAGE_SIZE, PlacementPolicy::ForceRemote);
        space.dram_access(addr_of(&space, a, 0)).unwrap();
        space.dram_access(addr_of(&space, a, PAGE_SIZE)).unwrap();
        assert_eq!(space.local_pages_used(), 0);
        assert_eq!(space.pool_pages_used(), 2);
    }

    #[test]
    fn interleave_alternates_tiers() {
        let mut space = AddressSpace::new(None, None);
        let a = space.alloc("A", "t", 6 * PAGE_SIZE, PlacementPolicy::interleave(1, 2));
        for p in 0..6 {
            space
                .dram_access(addr_of(&space, a, p * PAGE_SIZE))
                .unwrap();
        }
        let pl = space.placement(a);
        assert_eq!(pl.pages_local, 2);
        assert_eq!(pl.pages_pool, 4);
    }

    #[test]
    fn free_releases_local_capacity_for_later_allocations() {
        // The BFS case-study mechanism: freeing an init-time object lets later
        // dynamic allocations land locally.
        let mut space = AddressSpace::new(Some(2 * PAGE_SIZE), None);
        let temp = space.alloc("temp", "init", 2 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        space.dram_access(addr_of(&space, temp, 0)).unwrap();
        space.dram_access(addr_of(&space, temp, PAGE_SIZE)).unwrap();
        assert_eq!(space.local_pages_used(), 2);
        space.free(temp).unwrap();
        assert_eq!(space.local_pages_used(), 0);

        let frontier = space.alloc(
            "frontier",
            "bfs",
            2 * PAGE_SIZE,
            PlacementPolicy::FirstTouch,
        );
        space.dram_access(addr_of(&space, frontier, 0)).unwrap();
        space
            .dram_access(addr_of(&space, frontier, PAGE_SIZE))
            .unwrap();
        let pl = space.placement(frontier);
        assert_eq!(pl.pages_local, 2);
        assert_eq!(pl.pages_pool, 0);
    }

    #[test]
    fn repeated_access_does_not_rebind_pages() {
        let mut space = AddressSpace::new(Some(PAGE_SIZE), None);
        let a = space.alloc("A", "t", 2 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        let t0 = space.dram_access(addr_of(&space, a, 0)).unwrap();
        let t1 = space.dram_access(addr_of(&space, a, PAGE_SIZE)).unwrap();
        assert_eq!(t0, Tier::Local);
        assert_eq!(t1, Tier::Pool);
        // Accessing again keeps the original binding and counts traffic.
        assert_eq!(
            space.dram_access(addr_of(&space, a, 0)).unwrap(),
            Tier::Local
        );
        assert_eq!(
            space.dram_access(addr_of(&space, a, PAGE_SIZE)).unwrap(),
            Tier::Pool
        );
        let pl = space.placement(a);
        assert_eq!(pl.dram_lines_local, 2);
        assert_eq!(pl.dram_lines_pool, 2);
        assert!((pl.remote_access_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oom_when_both_tiers_full() {
        let mut space = AddressSpace::new(Some(PAGE_SIZE), Some(PAGE_SIZE));
        let a = space.alloc("A", "t", 3 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        space.dram_access(addr_of(&space, a, 0)).unwrap();
        space.dram_access(addr_of(&space, a, PAGE_SIZE)).unwrap();
        let err = space
            .dram_access(addr_of(&space, a, 2 * PAGE_SIZE))
            .unwrap_err();
        assert_eq!(err.object, "A");
        assert!(err.to_string().contains("out of memory"));
    }

    #[test]
    fn double_free_and_unknown_handle_are_typed_errors() {
        let mut space = AddressSpace::new(None, None);
        let a = space.alloc("A", "t", PAGE_SIZE, PlacementPolicy::FirstTouch);
        space.dram_access(addr_of(&space, a, 0)).unwrap();
        space.free(a).unwrap();
        let err = space.free(a).unwrap_err();
        assert_eq!(
            err,
            FreeError::DoubleFree {
                object: "A".to_string()
            }
        );
        assert!(err.to_string().contains("double free of object 'A'"));
        // The failed free must not disturb accounting.
        assert_eq!(space.local_pages_used(), 0);
        let unknown = ObjectHandle(42);
        let err = space.free(unknown).unwrap_err();
        assert_eq!(err, FreeError::UnknownHandle(unknown));
        assert!(err.to_string().contains("unknown handle 42"));
    }

    #[test]
    fn rebind_page_migrates_between_tiers_consistently() {
        let mut space = AddressSpace::new(Some(2 * PAGE_SIZE), Some(4 * PAGE_SIZE));
        let a = space.alloc("A", "t", 4 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        for p in 0..4 {
            space
                .dram_access(addr_of(&space, a, p * PAGE_SIZE))
                .unwrap();
        }
        let first_page = space.base_addr(a) / PAGE_SIZE;
        assert_eq!(space.tier_of_page(first_page + 2), Some(Tier::Pool));
        // Local is full: promotion must be refused until a demotion frees room.
        assert_eq!(
            space.rebind_page(first_page + 2, Tier::Local),
            Err(RebindError::NoCapacity)
        );
        assert_eq!(space.rebind_page(first_page, Tier::Pool), Ok(Tier::Local));
        assert_eq!(
            space.rebind_page(first_page + 2, Tier::Local),
            Ok(Tier::Pool)
        );
        assert_eq!(space.tier_of_page(first_page), Some(Tier::Pool));
        assert_eq!(space.tier_of_page(first_page + 2), Some(Tier::Local));
        let pl = space.placement(a);
        assert_eq!(pl.pages_local, 2);
        assert_eq!(pl.pages_pool, 2);
        assert_eq!(space.local_pages_used(), 2);
        assert_eq!(space.pool_pages_used(), 2);
        // Same-tier rebind is a no-op; unbound pages are typed errors.
        assert_eq!(space.rebind_page(first_page, Tier::Pool), Ok(Tier::Pool));
        assert_eq!(
            space.rebind_page(first_page + 100, Tier::Local),
            Err(RebindError::Unbound)
        );
        // Traffic keeps flowing to the migrated page's new tier.
        assert_eq!(
            space
                .dram_access(addr_of(&space, a, 2 * PAGE_SIZE))
                .unwrap(),
            Tier::Local
        );
    }

    #[test]
    fn free_after_partial_rebind_releases_the_right_tiers() {
        let mut space = AddressSpace::new(Some(4 * PAGE_SIZE), None);
        let a = space.alloc("A", "t", 4 * PAGE_SIZE, PlacementPolicy::interleave(1, 1));
        for p in 0..4 {
            space
                .dram_access(addr_of(&space, a, p * PAGE_SIZE))
                .unwrap();
        }
        let first_page = space.base_addr(a) / PAGE_SIZE;
        // Promote one pool page, demote one local page, then free the object.
        space.rebind_page(first_page + 1, Tier::Local).unwrap();
        space.rebind_page(first_page, Tier::Pool).unwrap();
        space.free(a).unwrap();
        assert_eq!(space.local_pages_used(), 0);
        assert_eq!(space.pool_pages_used(), 0);
        let pl = space.placement(a);
        assert_eq!(pl.pages_local, 0);
        assert_eq!(pl.pages_pool, 0);
    }

    #[test]
    fn hotness_tracker_follows_dram_traffic() {
        use crate::tiering::HotnessTracker;
        let mut space = AddressSpace::new(None, None);
        space.set_hotness(Some(HotnessTracker::new(0.5)));
        let a = space.alloc("A", "t", 2 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        let page = space.base_addr(a) / PAGE_SIZE;
        space.dram_access(addr_of(&space, a, 0)).unwrap();
        space.dram_access(addr_of(&space, a, 64)).unwrap();
        let (tier, owner) = space.resolve_dram(addr_of(&space, a, PAGE_SIZE)).unwrap();
        space.record_dram_traffic(owner, tier, page + 1, 5);
        let tracker = space.hotness_mut().unwrap();
        tracker.end_epoch();
        assert_eq!(tracker.heat_of(page), 2.0);
        assert_eq!(tracker.heat_of(page + 1), 5.0);
    }

    #[test]
    fn interleave_period_survives_u32_max_ratio() {
        // `local + remote` overflows u32; the widened period must still place
        // the first `local` pages on the local tier.
        let mut space = AddressSpace::new(None, None);
        let a = space.alloc(
            "A",
            "t",
            4 * PAGE_SIZE,
            PlacementPolicy::interleave(u32::MAX, u32::MAX),
        );
        for p in 0..4 {
            space
                .dram_access(addr_of(&space, a, p * PAGE_SIZE))
                .unwrap();
        }
        let pl = space.placement(a);
        assert_eq!(pl.pages_local, 4);
        assert_eq!(pl.pages_pool, 0);
    }

    #[test]
    fn peak_footprint_tracks_live_bytes() {
        let mut space = AddressSpace::new(None, None);
        let a = space.alloc("A", "t", 1000, PlacementPolicy::FirstTouch);
        let _b = space.alloc("B", "t", 2000, PlacementPolicy::FirstTouch);
        space.free(a).unwrap();
        let _c = space.alloc("C", "t", 500, PlacementPolicy::FirstTouch);
        assert_eq!(space.peak_footprint_bytes(), 3000);
        assert_eq!(space.live_bytes(), 2500);
    }

    #[test]
    fn owner_lookup_is_correct_across_objects() {
        let mut space = AddressSpace::new(None, None);
        let a = space.alloc("A", "t", 2 * PAGE_SIZE, PlacementPolicy::FirstTouch);
        let b = space.alloc("B", "t", 2 * PAGE_SIZE, PlacementPolicy::ForceRemote);
        space.dram_access(addr_of(&space, a, 0)).unwrap();
        space.dram_access(addr_of(&space, b, 0)).unwrap();
        assert_eq!(space.placement(a).pages_local, 1);
        assert_eq!(space.placement(b).pages_pool, 1);
    }

    #[test]
    fn histogram_counts_dram_accesses() {
        let mut space = AddressSpace::new(None, None);
        let a = space.alloc("A", "t", PAGE_SIZE, PlacementPolicy::FirstTouch);
        for _ in 0..5 {
            space.dram_access(addr_of(&space, a, 0)).unwrap();
        }
        assert_eq!(space.histogram().total_accesses(), 5);
        assert_eq!(space.histogram().touched_pages(), 1);
    }
}
