//! The performance-counter set produced by the simulator.
//!
//! The names mirror the hardware events the paper's profiler programs on the
//! Skylake testbed (`PF_L2_DATA_RD`/`PF_L2_RFO`, `L2_LINES_IN`,
//! `USELESS_HWPF`, `OFFCORE_RESPONSE:LOCAL_DRAM`/`REMOTE_DRAM`, UPI traffic),
//! and the derived metrics use the same formulas (Equations 1 and 2).

use serde::{Deserialize, Serialize};

/// Counter values accumulated over a phase or a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Floating-point operations executed.
    pub flops: u64,
    /// Demand cache-line references issued by the core (reads).
    pub demand_read_lines: u64,
    /// Demand cache-line references issued by the core (writes / RFO).
    pub demand_write_lines: u64,
    /// Demand references that missed L2.
    pub l2_demand_misses: u64,
    /// Lines filled into L2 from any source (demand + prefetch), the
    /// `L2_LINES_IN.ALL` event.
    pub l2_lines_in: u64,
    /// Prefetch requests issued by the L2 hardware prefetcher
    /// (`PF_L2_DATA_RD + PF_L2_RFO`).
    pub pf_issued: u64,
    /// Prefetched lines that were later hit by a demand access.
    pub pf_useful: u64,
    /// Prefetched lines evicted (or left over) without ever being used
    /// (`USELESS_HWPF`).
    pub useless_hwpf: u64,
    /// Lines read from the local tier (demand + prefetch LLC misses).
    pub dram_lines_local: u64,
    /// Lines read from the pool tier.
    pub dram_lines_pool: u64,
    /// Demand (non-prefetch) LLC misses served by the local tier; these expose
    /// their full latency to the core.
    pub demand_dram_lines_local: u64,
    /// Demand LLC misses served by the pool tier.
    pub demand_dram_lines_pool: u64,
    /// Dirty lines written back to the local tier.
    pub writeback_lines_local: u64,
    /// Dirty lines written back to the pool tier.
    pub writeback_lines_pool: u64,
    /// Raw traffic placed on the pool link in bytes (payload × protocol
    /// overhead), the analogue of the UPI `sktXtraffic` counters. Includes
    /// the raw bytes of page migrations, which cross the link by definition.
    pub link_raw_bytes: u64,
    /// Cache lines moved through the local tier by page migrations (every
    /// promotion/demotion reads one side and writes the other, so each
    /// migrated page adds a page's worth of lines to *both* tiers). Kept
    /// separate from the access counters so the paper's remote-access and
    /// prefetch metrics stay application-traffic-only.
    pub migration_lines_local: u64,
    /// Cache lines moved through the pool tier by page migrations.
    pub migration_lines_pool: u64,
}

impl Counters {
    /// Adds another counter set into this one.
    pub fn add(&mut self, other: &Counters) {
        self.flops += other.flops;
        self.demand_read_lines += other.demand_read_lines;
        self.demand_write_lines += other.demand_write_lines;
        self.l2_demand_misses += other.l2_demand_misses;
        self.l2_lines_in += other.l2_lines_in;
        self.pf_issued += other.pf_issued;
        self.pf_useful += other.pf_useful;
        self.useless_hwpf += other.useless_hwpf;
        self.dram_lines_local += other.dram_lines_local;
        self.dram_lines_pool += other.dram_lines_pool;
        self.demand_dram_lines_local += other.demand_dram_lines_local;
        self.demand_dram_lines_pool += other.demand_dram_lines_pool;
        self.writeback_lines_local += other.writeback_lines_local;
        self.writeback_lines_pool += other.writeback_lines_pool;
        self.link_raw_bytes += other.link_raw_bytes;
        self.migration_lines_local += other.migration_lines_local;
        self.migration_lines_pool += other.migration_lines_pool;
    }

    /// Field-wise difference `self - earlier`. Every counter is monotonically
    /// non-decreasing over a run, so the subtraction never underflows when
    /// `earlier` is a snapshot taken before `self`; the replay engine uses
    /// this to fingerprint per-window counter deltas.
    pub fn delta_from(&self, earlier: &Counters) -> Counters {
        Counters {
            flops: self.flops - earlier.flops,
            demand_read_lines: self.demand_read_lines - earlier.demand_read_lines,
            demand_write_lines: self.demand_write_lines - earlier.demand_write_lines,
            l2_demand_misses: self.l2_demand_misses - earlier.l2_demand_misses,
            l2_lines_in: self.l2_lines_in - earlier.l2_lines_in,
            pf_issued: self.pf_issued - earlier.pf_issued,
            pf_useful: self.pf_useful - earlier.pf_useful,
            useless_hwpf: self.useless_hwpf - earlier.useless_hwpf,
            dram_lines_local: self.dram_lines_local - earlier.dram_lines_local,
            dram_lines_pool: self.dram_lines_pool - earlier.dram_lines_pool,
            demand_dram_lines_local: self.demand_dram_lines_local - earlier.demand_dram_lines_local,
            demand_dram_lines_pool: self.demand_dram_lines_pool - earlier.demand_dram_lines_pool,
            writeback_lines_local: self.writeback_lines_local - earlier.writeback_lines_local,
            writeback_lines_pool: self.writeback_lines_pool - earlier.writeback_lines_pool,
            link_raw_bytes: self.link_raw_bytes - earlier.link_raw_bytes,
            migration_lines_local: self.migration_lines_local - earlier.migration_lines_local,
            migration_lines_pool: self.migration_lines_pool - earlier.migration_lines_pool,
        }
    }

    /// Total demand cache-line references.
    pub fn demand_lines(&self) -> u64 {
        self.demand_read_lines + self.demand_write_lines
    }

    /// Bytes transferred from the local tier (reads + writebacks), given the
    /// cache-line size.
    pub fn bytes_local(&self, line_bytes: u64) -> u64 {
        (self.dram_lines_local + self.writeback_lines_local) * line_bytes
    }

    /// Bytes transferred from/to the pool tier (reads + writebacks).
    pub fn bytes_pool(&self, line_bytes: u64) -> u64 {
        (self.dram_lines_pool + self.writeback_lines_pool) * line_bytes
    }

    /// Total DRAM traffic in bytes across both tiers.
    pub fn bytes_dram(&self, line_bytes: u64) -> u64 {
        self.bytes_local(line_bytes) + self.bytes_pool(line_bytes)
    }

    /// Arithmetic intensity in flops per byte of DRAM traffic
    /// (`AI = FLOPS / (Byte_LM + Byte_RM)`).
    pub fn arithmetic_intensity(&self, line_bytes: u64) -> f64 {
        let bytes = self.bytes_dram(line_bytes);
        if bytes == 0 {
            return f64::INFINITY;
        }
        self.flops as f64 / bytes as f64
    }

    /// Ratio of memory accesses (bytes) served by the pool tier — the paper's
    /// remote access ratio `R^remote_access`.
    pub fn remote_access_ratio(&self, line_bytes: u64) -> f64 {
        let total = self.bytes_dram(line_bytes);
        if total == 0 {
            return 0.0;
        }
        self.bytes_pool(line_bytes) as f64 / total as f64
    }

    /// Prefetch accuracy (Equation 1): fraction of prefetched lines that were
    /// actually used.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.pf_issued == 0 {
            return 0.0;
        }
        (self.pf_issued - self.useless_hwpf.min(self.pf_issued)) as f64 / self.pf_issued as f64
    }

    /// Prefetch coverage (Equation 2): fraction of L2 line fills that were
    /// prefetched instead of demanded.
    pub fn prefetch_coverage(&self) -> f64 {
        let useless = self.useless_hwpf.min(self.pf_issued);
        let denom = self.l2_lines_in.saturating_sub(useless);
        if denom == 0 {
            return 0.0;
        }
        (self.pf_issued - useless) as f64 / denom as f64
    }

    /// Demand LLC misses (lines whose latency is exposed to the core).
    pub fn demand_dram_lines(&self) -> u64 {
        self.demand_dram_lines_local + self.demand_dram_lines_pool
    }

    /// Bytes moved by page migrations, summed over both tiers (each migrated
    /// page contributes one page of traffic per tier). Excluded from
    /// [`Counters::bytes_dram`] and the remote-access ratio — migration
    /// traffic competes for bandwidth (the timing model charges it) but is
    /// not an application access.
    pub fn migration_bytes(&self, line_bytes: u64) -> u64 {
        (self.migration_lines_local + self.migration_lines_pool) * line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counters {
        Counters {
            flops: 1000,
            demand_read_lines: 80,
            demand_write_lines: 20,
            l2_demand_misses: 40,
            l2_lines_in: 100,
            pf_issued: 60,
            pf_useful: 50,
            useless_hwpf: 10,
            dram_lines_local: 70,
            dram_lines_pool: 30,
            demand_dram_lines_local: 25,
            demand_dram_lines_pool: 15,
            writeback_lines_local: 5,
            writeback_lines_pool: 5,
            link_raw_bytes: 8960,
            migration_lines_local: 64,
            migration_lines_pool: 64,
        }
    }

    #[test]
    fn add_accumulates_all_fields() {
        let mut a = sample();
        a.add(&sample());
        assert_eq!(a.flops, 2000);
        assert_eq!(a.l2_lines_in, 200);
        assert_eq!(a.link_raw_bytes, 17920);
        assert_eq!(a.demand_lines(), 200);
    }

    #[test]
    fn byte_accounting() {
        let c = sample();
        assert_eq!(c.bytes_local(64), (70 + 5) * 64);
        assert_eq!(c.bytes_pool(64), (30 + 5) * 64);
        assert_eq!(c.bytes_dram(64), 110 * 64);
        // Migration traffic is accounted separately from application bytes.
        assert_eq!(c.migration_bytes(64), 128 * 64);
    }

    #[test]
    fn arithmetic_intensity_formula() {
        let c = sample();
        let ai = c.arithmetic_intensity(64);
        assert!((ai - 1000.0 / (110.0 * 64.0)).abs() < 1e-12);
        let empty = Counters::default();
        assert!(empty.arithmetic_intensity(64).is_infinite());
    }

    #[test]
    fn remote_access_ratio_formula() {
        let c = sample();
        let r = c.remote_access_ratio(64);
        assert!((r - 35.0 / 110.0).abs() < 1e-12);
        assert_eq!(Counters::default().remote_access_ratio(64), 0.0);
    }

    #[test]
    fn prefetch_accuracy_and_coverage_formulas() {
        let c = sample();
        // accuracy = (60 - 10) / 60
        assert!((c.prefetch_accuracy() - 50.0 / 60.0).abs() < 1e-12);
        // coverage = (60 - 10) / (100 - 10)
        assert!((c.prefetch_coverage() - 50.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn prefetch_metrics_degenerate_cases() {
        let c = Counters::default();
        assert_eq!(c.prefetch_accuracy(), 0.0);
        assert_eq!(c.prefetch_coverage(), 0.0);
        // More useless than issued must not underflow.
        let weird = Counters {
            pf_issued: 5,
            useless_hwpf: 9,
            l2_lines_in: 4,
            ..Default::default()
        };
        assert_eq!(weird.prefetch_accuracy(), 0.0);
        assert_eq!(weird.prefetch_coverage(), 0.0);
    }
}
