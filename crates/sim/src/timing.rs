//! Execution-time model.
//!
//! Time is computed per *chunk* of work (a bounded amount of flops and DRAM
//! traffic) using an extended roofline: a chunk takes as long as its slowest
//! resource — compute, local-tier bandwidth, pool bandwidth (reduced by link
//! interference), or exposed miss latency (demand misses not covered by the
//! prefetcher, divided by the node's memory-level parallelism and inflated by
//! link queueing for pool misses). This is the quantitative backbone behind
//! the paper's observations that interference sensitivity grows with pool
//! traffic and shrinks with arithmetic intensity (Section 6.1), and that
//! prefetching is performance-critical for HPC workloads (Section 4.2).

use crate::config::MachineConfig;
use crate::counters::Counters;
use crate::link::LinkModel;
use serde::{Deserialize, Serialize};

/// Per-chunk timing breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Time the chunk would take if only compute mattered.
    pub compute_s: f64,
    /// Time to move the chunk's local-tier traffic at local bandwidth.
    pub local_bw_s: f64,
    /// Time to move the chunk's pool traffic at the interference-reduced
    /// pool bandwidth.
    pub pool_bw_s: f64,
    /// Time to cover exposed demand-miss latency (MLP-limited).
    pub latency_s: f64,
    /// The resulting chunk duration: the maximum of the four components.
    pub total_s: f64,
    /// Link utilization used for the queueing model (background + own).
    pub link_utilization: f64,
}

impl TimeBreakdown {
    /// Name of the dominating component.
    pub fn bottleneck(&self) -> &'static str {
        let m = self.total_s;
        if m == 0.0 {
            "idle"
        } else if self.compute_s >= m {
            "compute"
        } else if self.pool_bw_s >= m {
            "pool-bandwidth"
        } else if self.local_bw_s >= m {
            "local-bandwidth"
        } else {
            "latency"
        }
    }
}

/// The chunk-level timing model.
#[derive(Debug, Clone)]
pub struct TimingModel {
    config: MachineConfig,
    link: LinkModel,
}

impl TimingModel {
    /// Creates a timing model for a machine configuration.
    pub fn new(config: MachineConfig) -> Self {
        let link = LinkModel::new(config.link);
        Self { config, link }
    }

    /// The underlying machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The link model.
    pub fn link(&self) -> &LinkModel {
        &self.link
    }

    /// Computes the duration of a chunk of work under a background level of
    /// interference `loi` (0–1 of peak raw link traffic).
    ///
    /// The latency component is solved self-consistently: the queueing delay
    /// on the pool link depends on the link utilization, which in turn depends
    /// on how long the chunk takes. The equation `t = max(t_base, t_lat(t))`
    /// has a unique solution because `t_lat` decreases as `t` grows; it is
    /// found by bisection.
    pub fn chunk_time(&self, chunk: &Counters, loi: f64) -> TimeBreakdown {
        let line = self.config.cache.line_bytes;
        // Page-migration traffic competes for the same tier bandwidth as the
        // application's accesses (each migrated page is read from one tier
        // and written to the other), and its raw bytes are already part of
        // `link_raw_bytes`, so migrations also queue on the pool link. Their
        // latency is never exposed to the core: migrations are asynchronous
        // background copies.
        let bytes_local = (chunk.bytes_local(line) + chunk.migration_lines_local * line) as f64;
        let bytes_pool = (chunk.bytes_pool(line) + chunk.migration_lines_pool * line) as f64;

        let compute_s = chunk.flops as f64 / self.config.peak_flops;
        let local_bw_s = bytes_local / self.config.local.bandwidth_bps;

        let pool_bw_avail = self
            .link
            .available_data_bandwidth(self.config.pool.bandwidth_bps, loi);
        let pool_bw_s = bytes_pool / pool_bw_avail;

        let t_base = compute_s.max(local_bw_s).max(pool_bw_s);

        let local_latency_total =
            chunk.demand_dram_lines_local as f64 * self.config.local.latency_s;
        let pool_demand_lines = chunk.demand_dram_lines_pool as f64;
        let raw_bytes = chunk.link_raw_bytes as f64;

        // Latency term as a function of the assumed chunk duration `t`.
        let latency_at = |t: f64| -> (f64, f64) {
            let raw_rate = if t > 0.0 { raw_bytes / t } else { 0.0 };
            let utilization = self.link.utilization(raw_rate, loi);
            let pool_latency = self
                .link
                .effective_latency(self.config.pool.latency_s, utilization);
            let lat = (local_latency_total + pool_demand_lines * pool_latency) / self.config.mlp;
            (lat, utilization)
        };

        // Bracket the fixed point: at `lo` the residual is non-negative, at
        // `hi` (latency computed with the utilization cap) it is non-positive.
        let worst_latency = self
            .link
            .effective_latency(self.config.pool.latency_s, f64::INFINITY);
        let lat_upper = (local_latency_total + pool_demand_lines * worst_latency) / self.config.mlp;
        let mut lo = t_base;
        let mut hi = t_base.max(lat_upper);

        let (mut latency_s, mut utilization) = latency_at(hi.max(1e-30));
        if hi > 0.0 && lo < hi {
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let (lat, util) = latency_at(mid);
                let implied = t_base.max(lat);
                latency_s = lat;
                utilization = util;
                if implied > mid {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        } else {
            let (lat, util) = latency_at(t_base.max(1e-30));
            latency_s = lat;
            utilization = util;
        }

        let total_s = t_base.max(latency_s);
        TimeBreakdown {
            compute_s,
            local_bw_s,
            pool_bw_s,
            latency_s,
            total_s,
            link_utilization: utilization,
        }
    }

    /// Convenience: total time of a sequence of chunks under constant
    /// interference.
    pub fn total_time(&self, chunks: &[Counters], loi: f64) -> f64 {
        chunks.iter().map(|c| self.chunk_time(c, loi).total_s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TimingModel {
        TimingModel::new(MachineConfig::skylake_testbed())
    }

    fn local_streaming_chunk() -> Counters {
        // 64 MiB of local traffic, fully prefetched (no exposed demand misses),
        // negligible flops.
        Counters {
            flops: 1_000_000,
            dram_lines_local: 1_048_576,
            l2_lines_in: 1_048_576,
            pf_issued: 1_048_576,
            ..Default::default()
        }
    }

    fn pool_streaming_chunk() -> Counters {
        Counters {
            flops: 1_000_000,
            dram_lines_pool: 1_048_576,
            link_raw_bytes: (1_048_576u64 * 64) * 85 / 34,
            ..Default::default()
        }
    }

    #[test]
    fn local_streaming_is_bandwidth_bound() {
        let m = model();
        let b = m.chunk_time(&local_streaming_chunk(), 0.0);
        let expected = (1_048_576.0 * 64.0) / 73.0e9;
        assert!((b.total_s - expected).abs() / expected < 1e-9);
        assert_eq!(b.bottleneck(), "local-bandwidth");
    }

    #[test]
    fn compute_bound_chunk_ignores_interference() {
        let m = model();
        let chunk = Counters {
            flops: 10_000_000_000,
            dram_lines_local: 1000,
            dram_lines_pool: 1000,
            link_raw_bytes: 1000 * 64 * 85 / 34,
            ..Default::default()
        };
        let t0 = m.chunk_time(&chunk, 0.0).total_s;
        let t50 = m.chunk_time(&chunk, 0.5).total_s;
        assert_eq!(m.chunk_time(&chunk, 0.0).bottleneck(), "compute");
        assert!(
            (t50 - t0).abs() / t0 < 1e-9,
            "compute-bound time must not change"
        );
    }

    #[test]
    fn pool_streaming_slows_down_with_interference() {
        let m = model();
        let chunk = pool_streaming_chunk();
        let t0 = m.chunk_time(&chunk, 0.0).total_s;
        let t25 = m.chunk_time(&chunk, 0.25).total_s;
        let t50 = m.chunk_time(&chunk, 0.5).total_s;
        assert!(t25 > t0);
        assert!(t50 > t25);
    }

    #[test]
    fn exposed_misses_cost_more_on_the_pool() {
        let m = model();
        let local = Counters {
            demand_dram_lines_local: 100_000,
            dram_lines_local: 100_000,
            ..Default::default()
        };
        let pool = Counters {
            demand_dram_lines_pool: 100_000,
            dram_lines_pool: 100_000,
            link_raw_bytes: 100_000 * 64 * 85 / 34,
            ..Default::default()
        };
        let tl = m.chunk_time(&local, 0.0);
        let tp = m.chunk_time(&pool, 0.0);
        assert!(tp.latency_s > tl.latency_s);
    }

    #[test]
    fn unprefetched_stream_is_slower_than_prefetched() {
        let m = model();
        let prefetched = local_streaming_chunk();
        let mut demand = prefetched;
        demand.pf_issued = 0;
        demand.demand_dram_lines_local = demand.dram_lines_local;
        let tp = m.chunk_time(&prefetched, 0.0).total_s;
        let td = m.chunk_time(&demand, 0.0).total_s;
        assert!(
            td > tp * 1.2,
            "exposing miss latency must cost noticeably more: {td} vs {tp}"
        );
    }

    #[test]
    fn latency_term_grows_with_interference_queueing() {
        let m = model();
        let chunk = Counters {
            demand_dram_lines_pool: 500_000,
            dram_lines_pool: 500_000,
            link_raw_bytes: 500_000 * 64 * 85 / 34,
            ..Default::default()
        };
        let b0 = m.chunk_time(&chunk, 0.0);
        let b50 = m.chunk_time(&chunk, 0.5);
        assert!(b50.latency_s > b0.latency_s * 1.5);
        assert!(b50.link_utilization > b0.link_utilization);
    }

    #[test]
    fn empty_chunk_takes_no_time() {
        let m = model();
        let b = m.chunk_time(&Counters::default(), 0.3);
        assert_eq!(b.total_s, 0.0);
        assert_eq!(b.bottleneck(), "idle");
    }

    #[test]
    fn migration_traffic_extends_the_bandwidth_terms() {
        let m = model();
        let base = pool_streaming_chunk();
        let mut with_migrations = base;
        // A big burst of migrations: a page's worth of lines on both tiers
        // per migrated page.
        with_migrations.migration_lines_pool = 2_000_000;
        with_migrations.migration_lines_local = 2_000_000;
        let t0 = m.chunk_time(&base, 0.0);
        let t1 = m.chunk_time(&with_migrations, 0.0);
        assert!(
            t1.pool_bw_s > t0.pool_bw_s * 2.0,
            "migration bytes must consume pool bandwidth"
        );
        assert!(t1.local_bw_s > t0.local_bw_s);
        assert!(t1.total_s > t0.total_s);
        // A migration-only chunk still takes time.
        let migration_only = Counters {
            migration_lines_local: 100_000,
            migration_lines_pool: 100_000,
            link_raw_bytes: 100_000 * 64 * 85 / 34,
            ..Default::default()
        };
        assert!(m.chunk_time(&migration_only, 0.0).total_s > 0.0);
    }

    #[test]
    fn total_time_sums_chunks() {
        let m = model();
        let chunks = vec![local_streaming_chunk(), pool_streaming_chunk()];
        let sum = m.total_time(&chunks, 0.0);
        let manual = m.chunk_time(&chunks[0], 0.0).total_s + m.chunk_time(&chunks[1], 0.0).total_s;
        assert!((sum - manual).abs() < 1e-15);
    }
}
