//! Model of the link between the compute node and the memory pool.
//!
//! The link is the shared resource behind the paper's Level-3 analysis:
//! multiple nodes attached to the same pool compete for it, so a background
//! "level of interference" (LoI, a fraction of the peak raw link traffic)
//! both reduces the bandwidth available to the application and inflates the
//! access latency through queueing.

use crate::config::LinkParams;
use serde::{Deserialize, Serialize};

/// Link bandwidth/latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    params: LinkParams,
}

impl LinkModel {
    /// Creates a link model.
    pub fn new(params: LinkParams) -> Self {
        Self { params }
    }

    /// Underlying parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Raw link traffic produced by `payload_bytes` of pool data, including
    /// protocol overhead.
    pub fn raw_bytes(&self, payload_bytes: u64) -> u64 {
        (payload_bytes as f64 * self.params.protocol_overhead()).round() as u64
    }

    /// Payload bandwidth available to the application when interferers keep
    /// the link `background_loi` (0–1) busy.
    ///
    /// The interferer's traffic removes only
    /// `bandwidth_contention_factor × LoI` of the application's achievable
    /// payload rate (a single node cannot saturate the link on its own; most
    /// of the remaining impact shows up as queueing latency instead). The
    /// result never drops below 5% of the peak: even a fully saturated link
    /// keeps draining requests.
    pub fn available_data_bandwidth(&self, pool_bandwidth_bps: f64, background_loi: f64) -> f64 {
        let peak = pool_bandwidth_bps.min(self.params.data_bandwidth_bps);
        let share = (1.0
            - self.params.bandwidth_contention_factor * background_loi.clamp(0.0, 1.0))
        .max(0.05);
        peak * share
    }

    /// Total link utilization (0–max_utilization) from the background LoI and
    /// the application's own raw traffic rate.
    pub fn utilization(&self, app_raw_bytes_per_s: f64, background_loi: f64) -> f64 {
        let app = app_raw_bytes_per_s / self.params.raw_bandwidth_bps;
        (background_loi.clamp(0.0, 1.0) + app.max(0.0)).min(self.params.max_utilization)
    }

    /// M/M/1-style queueing multiplier applied to the pool latency at a given
    /// link utilization: `1 / (1 - rho)`, with `rho` capped at
    /// `max_utilization` so the factor stays finite.
    pub fn queueing_factor(&self, utilization: f64) -> f64 {
        let rho = utilization.clamp(0.0, self.params.max_utilization);
        1.0 / (1.0 - rho)
    }

    /// Effective pool access latency at a given link utilization.
    pub fn effective_latency(&self, base_latency_s: f64, utilization: f64) -> f64 {
        base_latency_s * self.queueing_factor(utilization)
    }

    /// Fraction of the peak raw bandwidth consumed by a measured raw traffic
    /// rate — the "measured LoI" of the paper's Figure 11 (left).
    pub fn loi_of_rate(&self, raw_bytes_per_s: f64) -> f64 {
        raw_bytes_per_s / self.params.raw_bandwidth_bps
    }

    /// Raw link traffic of migrating `pages` whole pages between the tiers.
    /// Every promotion and demotion crosses the link (one side of the copy is
    /// always the pool), so the payload is `pages × PAGE_SIZE` plus protocol
    /// overhead.
    pub fn migration_raw_bytes(&self, pages: u64) -> u64 {
        self.raw_bytes(pages * dismem_trace::PAGE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> LinkModel {
        LinkModel::new(LinkParams::upi())
    }

    #[test]
    fn raw_bytes_include_protocol_overhead() {
        let l = link();
        let raw = l.raw_bytes(1_000_000);
        assert!(raw > 1_000_000);
        assert_eq!(raw, (1_000_000.0_f64 * (85.0 / 34.0)).round() as u64);
    }

    #[test]
    fn available_bandwidth_decreases_with_loi() {
        let l = link();
        let b0 = l.available_data_bandwidth(34.0e9, 0.0);
        let b50 = l.available_data_bandwidth(34.0e9, 0.5);
        let b100 = l.available_data_bandwidth(34.0e9, 1.0);
        assert_eq!(b0, 34.0e9);
        // Contention factor 0.4: a 50% interferer removes 20% of the payload
        // bandwidth the node can extract.
        assert!((b50 - 34.0e9 * 0.8).abs() < 1.0);
        assert!(b100 > 0.0, "bandwidth floor keeps the link draining");
        assert!(b0 > b50 && b50 > b100);
    }

    #[test]
    fn available_bandwidth_capped_by_link_not_tier() {
        let l = link();
        // Tier faster than the link: the link is the limit.
        assert_eq!(l.available_data_bandwidth(100.0e9, 0.0), 34.0e9);
    }

    #[test]
    fn queueing_factor_monotonic_and_capped() {
        let l = link();
        assert!((l.queueing_factor(0.0) - 1.0).abs() < 1e-12);
        assert!(l.queueing_factor(0.5) > l.queueing_factor(0.25));
        let at_cap = l.queueing_factor(0.95);
        let beyond = l.queueing_factor(2.0);
        assert_eq!(at_cap, beyond, "utilization must be capped");
        assert!(at_cap <= 21.0);
    }

    #[test]
    fn utilization_combines_background_and_app() {
        let l = link();
        let u = l.utilization(8.5e9, 0.3);
        assert!((u - 0.4).abs() < 1e-9);
        assert!(l.utilization(1e12, 0.5) <= 0.95);
    }

    #[test]
    fn effective_latency_grows_with_utilization() {
        let l = link();
        let base = 202e-9;
        assert!((l.effective_latency(base, 0.0) - base).abs() < 1e-15);
        assert!(l.effective_latency(base, 0.5) > 1.9 * base);
    }

    #[test]
    fn loi_of_rate_roundtrip() {
        let l = link();
        assert!((l.loi_of_rate(42.5e9) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn migration_raw_bytes_charges_whole_pages_with_overhead() {
        let l = link();
        let raw = l.migration_raw_bytes(10);
        assert_eq!(raw, l.raw_bytes(10 * dismem_trace::PAGE_SIZE));
        assert!(raw > 10 * dismem_trace::PAGE_SIZE);
    }
}
