//! Dynamic tiering: page hotness tracking, promotion/demotion policies and
//! the migration bookkeeping that backs them.
//!
//! The paper's emulation platform pins every page to a tier at first touch
//! (NUMA balancing disabled), and [`crate::AddressSpace`] reproduces exactly
//! that. Real disaggregated deployments, however, migrate pages at runtime:
//! the OS promotes hot pages from the far tier into node-local DRAM
//! (TPP-style hot-page promotion) and demotes cold local pages to the pool
//! under capacity pressure (AutoNUMA-style sampling and rebalancing). This
//! module adds that axis to the simulator:
//!
//! * a [`HotnessTracker`] — an epoch-based, exponentially decayed per-page
//!   DRAM-traffic counter fed from both the per-line and the batched access
//!   pipelines (the feed point is the address space's traffic recording, so
//!   the two pipelines observe bit-identical heat: per-epoch accrual is pure
//!   integer addition, which commutes, and the decayed score is only folded
//!   at epoch boundaries, which both pipelines reach at the same chunk
//!   closes);
//! * the [`TieringPolicy`] trait with three shipped policies — [`Static`]
//!   (no epochs, no migrations: the pre-tiering reference behaviour),
//!   [`HotPromote`] (threshold promotion of hot pool pages with
//!   capacity-pressure demotion and a ping-pong damper) and
//!   [`PeriodicRebalance`] (sampled top-k hot/cold swap every N epochs);
//! * [`TieringSpec`] — a serializable description of a policy configuration,
//!   used by campaign sweeps and benchmark harnesses to name policies in
//!   committed JSON.
//!
//! # Epochs and determinism
//!
//! A tiering epoch completes after [`TieringPolicy::epoch_lines`] DRAM lines
//! of application traffic, checked when the machine closes a timing chunk.
//! Chunk-close decisions are bit-identical across the per-line, batched and
//! replay pipelines (the workspace property tests enforce this), heat is
//! accumulated in integers, and policy decisions sort their candidates with a
//! total order — so the whole subsystem is deterministic and
//! pipeline-independent: a tiering run produces the same `RunReport` on all
//! three pipelines.
//!
//! # Interaction with the replay engine
//!
//! Tier bindings are part of the environment the steady-state replay engine's
//! fingerprints implicitly assume: a replayed window re-emits its DRAM
//! transactions against the *current* bindings. Migration epochs therefore
//! only ever fire between cache walks (at chunk closes), and any epoch that
//! actually moves a page hard-resets the replay engine — in-flight replay is
//! materialized to the exact cache state and all detection state (including
//! an armed snapshot) is dropped before the next walk starts. With the
//! [`Static`] policy no epoch ever fires and the machine is bit-identical to
//! the pre-tiering simulator.
//!
//! Both contracts — the epoch/chunk-close rule and the migration/replay
//! hard-reset — are part of the workspace-wide invariants documented in
//! `docs/ARCHITECTURE.md` at the repository root and enforced by
//! `tests/properties.rs`.

use crate::address_space::Tier;
use serde::{Deserialize, Serialize};
// Hotness tracking is on the per-epoch hot path and only ever leaves the
// hash containers through sorted samples or order-insensitive folds
// (enforced by dismem-lint's hash-iteration rule).
#[allow(clippy::disallowed_types)]
use std::collections::{HashMap, HashSet};

/// Heat scores below this are pruned at epoch boundaries, keeping the tracker
/// O(recently touched pages).
const HEAT_FLOOR: f64 = 1e-3;

/// A page belongs to the epoch's *hot set* when its decayed score is at least
/// this fraction of the epoch's maximum score. Fraction-of-max membership is
/// scale-invariant: an epoch without traffic decays every score (and the
/// maximum) by the same factor, so the hot set — and therefore the dwell
/// clock — only moves when the access pattern actually moves.
const HOT_SET_FRACTION: f64 = 0.5;

#[derive(Debug, Clone, Copy, Default)]
struct PageHeat {
    /// Decayed score as of the last completed epoch.
    score: f64,
    /// DRAM lines recorded against the page in the current epoch (integer
    /// accrual: additions commute, so the batched pipeline's per-page bulk
    /// recording and the per-line pipeline's event-by-event recording agree
    /// bit for bit at every epoch boundary).
    cur_lines: u64,
}

/// One epoch's hot-set observation, returned by [`HotnessTracker::end_epoch`]
/// and folded into the run's phase-dwell statistics by the machine.
///
/// The *hot set* is the set of pages whose decayed score is within
/// half (`HOT_SET_FRACTION`) of the epoch's maximum. Each dwell is
/// *anchored* on
/// the hot set observed when it started, and the hot set *shifts* — closing
/// the dwell — once a strict majority of the anchor's pages is no longer hot.
/// Anchoring against the dwell's start (rather than the previous epoch)
/// makes the detector robust to gradual hand-overs: a working set that
/// migrates region by region still registers a shift once most of the
/// original set has gone cold, while epoch-over-epoch comparison would never
/// see the overlap drop. The number of epochs between two shifts is one
/// *phase dwell* — the time a hot working set stays put, which is exactly
/// the window a page migration has to amortize in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotSetDelta {
    /// Pages in the hot set as of the epoch that just completed.
    pub pages: u64,
    /// Whether the hot set moved away from the current dwell's anchor set
    /// (no strict majority of the anchor's pages is still hot). Always `false`
    /// while no dwell is open (no hot set has been observed yet).
    pub shifted: bool,
}

/// Epoch-based per-page hotness tracker with exponential decay.
///
/// `record` is O(1) per (page, lines) batch; `end_epoch` is O(tracked pages),
/// and pruning keeps the tracked set proportional to the recently touched
/// working set rather than the footprint.
#[derive(Debug, Clone)]
pub struct HotnessTracker {
    decay: f64,
    epochs_completed: u64,
    #[allow(clippy::disallowed_types)]
    heat: HashMap<u64, PageHeat>,
    /// Anchor hot set of the open dwell (the hot set observed when the dwell
    /// started), kept to detect hot-set shifts. Empty while no dwell is open.
    #[allow(clippy::disallowed_types)]
    anchor_hot: HashSet<u64>,
}

impl HotnessTracker {
    /// Creates a tracker with the given per-epoch decay factor (0–1; the
    /// score of a page that stops being touched halves every epoch at 0.5).
    pub fn new(decay: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&decay),
            "decay must be within [0, 1), got {decay}"
        );
        Self {
            decay,
            epochs_completed: 0,
            #[allow(clippy::disallowed_types)]
            heat: HashMap::new(),
            #[allow(clippy::disallowed_types)]
            anchor_hot: HashSet::new(),
        }
    }

    /// Records `lines` DRAM line transactions against `page` in the current
    /// epoch.
    #[inline]
    pub fn record(&mut self, page: u64, lines: u64) {
        self.heat.entry(page).or_default().cur_lines += lines;
    }

    /// Completes the current epoch: folds the epoch's integer line counts
    /// into the decayed scores, prunes pages that have gone cold, and reports
    /// the epoch's hot set and whether it shifted (see [`HotSetDelta`]).
    ///
    /// Dwell detection is purely observational — it never changes a score —
    /// and every input (scores, epoch boundaries) is bit-identical across the
    /// per-line, batched and replay pipelines, so the returned delta is too.
    pub fn end_epoch(&mut self) -> HotSetDelta {
        let decay = self.decay;
        // dismem-lint: allow(hash-iteration) — per-page decay touches every
        // entry independently; no cross-entry state, so order cannot matter.
        for h in self.heat.values_mut() {
            h.score = h.score * decay + h.cur_lines as f64;
            h.cur_lines = 0;
        }
        self.heat.retain(|_, h| h.score >= HEAT_FLOOR);
        self.epochs_completed += 1;

        // dismem-lint: allow(hash-iteration) — max over f64 scores is
        // commutative and associative (no NaNs: scores are sums of counts).
        let max = self.heat.values().map(|h| h.score).fold(0.0f64, f64::max);
        #[allow(clippy::disallowed_types)]
        let hot: HashSet<u64> = if max > 0.0 {
            self.heat
                .iter()
                .filter(|(_, h)| h.score >= HOT_SET_FRACTION * max)
                .map(|(&page, _)| page)
                .collect()
        } else {
            HashSet::new()
        };
        let pages = hot.len() as u64;
        let shifted = if self.anchor_hot.is_empty() {
            // No dwell open: the first non-empty hot set becomes the anchor.
            self.anchor_hot = hot;
            false
        } else {
            let still_hot = self.anchor_hot.iter().filter(|p| hot.contains(p)).count();
            let shifted = (still_hot * 2) <= self.anchor_hot.len();
            if shifted {
                // The dwell closed: the new hot set anchors the next one.
                self.anchor_hot = hot;
            }
            shifted
        };
        HotSetDelta { pages, shifted }
    }

    /// Decayed heat of a page as of the last completed epoch (0 for pages
    /// never touched or already pruned).
    pub fn heat_of(&self, page: u64) -> f64 {
        self.heat.get(&page).map_or(0.0, |h| h.score)
    }

    /// Number of epochs completed so far.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    /// Number of pages currently tracked.
    pub fn tracked_pages(&self) -> usize {
        self.heat.len()
    }

    /// Per-epoch decay factor the tracker was built with.
    pub(crate) fn snapshot_decay(&self) -> f64 {
        self.decay
    }

    /// Heat table as sorted `(page, score, cur_lines)` triples — the
    /// deterministic export used by the machine snapshot codec. `cur_lines`
    /// is included so a snapshot taken mid-epoch restores the un-folded
    /// integer accrual exactly.
    pub(crate) fn snapshot_heat(&self) -> Vec<(u64, f64, u64)> {
        let mut entries: Vec<(u64, f64, u64)> = self
            .heat
            .iter()
            .map(|(&page, h)| (page, h.score, h.cur_lines))
            .collect();
        entries.sort_by_key(|&(page, _, _)| page);
        entries
    }

    /// The open dwell's anchor hot set, sorted.
    pub(crate) fn snapshot_anchor(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self.anchor_hot.iter().copied().collect();
        pages.sort_unstable();
        pages
    }

    /// Rebuilds a tracker from snapshot state, inverting [`Self::snapshot_heat`]
    /// and [`Self::snapshot_anchor`].
    pub(crate) fn from_snapshot(
        decay: f64,
        epochs_completed: u64,
        heat: &[(u64, f64, u64)],
        anchor_hot: &[u64],
    ) -> Self {
        let mut tracker = Self::new(decay);
        tracker.epochs_completed = epochs_completed;
        // dismem-lint: allow(hash-iteration) — `heat` here is the sorted snapshot slice parameter, not the map field
        for &(page, score, cur_lines) in heat {
            tracker.heat.insert(page, PageHeat { score, cur_lines });
        }
        // dismem-lint: allow(hash-iteration) — `anchor_hot` here is the sorted snapshot slice parameter, not the set field
        tracker.anchor_hot = anchor_hot.iter().copied().collect();
        tracker
    }
}

/// One page's heat and current binding, handed to [`TieringPolicy::plan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageSample {
    /// Virtual page number.
    pub page: u64,
    /// Tier the page is currently bound to.
    pub tier: Tier,
    /// Decayed heat as of the epoch that just completed.
    pub heat: f64,
    /// Whether the page is still inside the ping-pong cooldown window from a
    /// previous migration. An order targeting a cooling page will be refused
    /// by the migration engine, so policies should not plan one — and in
    /// particular should not demote other pages to make room for it.
    pub cooling: bool,
}

/// Tier occupancy at the time a policy plans an epoch.
#[derive(Debug, Clone, Copy)]
pub struct TierOccupancy {
    /// Pages currently bound to the local tier.
    pub local_used: u64,
    /// Local-tier capacity in pages (`None` = unbounded).
    pub local_capacity: Option<u64>,
    /// Pages currently bound to the pool tier.
    pub pool_used: u64,
    /// Pool-tier capacity in pages (`None` = unbounded).
    pub pool_capacity: Option<u64>,
}

impl TierOccupancy {
    /// Free local pages (`u64::MAX` when unbounded).
    pub fn local_free(&self) -> u64 {
        match self.local_capacity {
            Some(cap) => cap.saturating_sub(self.local_used),
            None => u64::MAX,
        }
    }

    /// Free pool pages (`u64::MAX` when unbounded).
    pub fn pool_free(&self) -> u64 {
        match self.pool_capacity {
            Some(cap) => cap.saturating_sub(self.pool_used),
            None => u64::MAX,
        }
    }
}

/// One migration decided by a policy: rebind `page` to `to`.
///
/// Orders are applied in sequence; a policy that needs to make room for a
/// promotion emits the corresponding demotion *before* it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationOrder {
    /// Page to migrate.
    pub page: u64,
    /// Destination tier.
    pub to: Tier,
}

/// A dynamic tiering policy: decides which pages to migrate at each hotness
/// epoch.
///
/// Implementations must be deterministic functions of their inputs — the
/// sample list is sorted hottest-first with the page number as tie-break, so
/// iterating it front-to-back (hot) or back-to-front (cold) is reproducible
/// across runs and pipelines.
pub trait TieringPolicy: Send + Sync {
    /// Short policy name, used in reports and committed JSON.
    fn name(&self) -> &'static str;

    /// Application DRAM lines per hotness epoch, or `None` for a static
    /// policy: no hotness tracking, no epochs, no migrations — the machine
    /// behaves exactly as it did before the tiering subsystem existed.
    fn epoch_lines(&self) -> Option<u64>;

    /// Per-epoch exponential decay factor for the hotness tracker.
    fn decay(&self) -> f64 {
        0.5
    }

    /// Epochs a migrated page must wait before it may migrate again. Pages
    /// inside the window are flagged [`PageSample::cooling`]; the migration
    /// engine additionally refuses orders against them (counting the refusal
    /// as a damped ping-pong), as a backstop for policies that ignore the
    /// flag. The shipped policies consult the flag up front, so they never
    /// waste capacity-making demotions on a promotion the damper would
    /// refuse.
    fn cooldown_epochs(&self) -> u64 {
        0
    }

    /// Plans the migrations for the epoch that just completed. `samples`
    /// lists every currently bound page, sorted by descending heat (page
    /// number ascending as tie-break).
    fn plan(
        &mut self,
        epoch: u64,
        samples: &[PageSample],
        occupancy: &TierOccupancy,
    ) -> Vec<MigrationOrder>;
}

/// The reference policy: first-touch pinning forever, exactly the behaviour
/// of the simulator before the tiering subsystem existed. No hotness tracking
/// and no epochs, so a machine running `Static` is bit-identical (and equally
/// fast) to one that never heard of tiering.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Static;

impl TieringPolicy for Static {
    fn name(&self) -> &'static str {
        "static"
    }

    fn epoch_lines(&self) -> Option<u64> {
        None
    }

    fn plan(&mut self, _: u64, _: &[PageSample], _: &TierOccupancy) -> Vec<MigrationOrder> {
        Vec::new()
    }
}

/// TPP-style hot-page promotion with capacity-pressure demotion.
///
/// Every epoch, pool pages whose decayed heat reaches `promote_heat` are
/// promoted (hottest first, at most `max_moves_per_epoch`). When the local
/// tier lacks room, the coldest local pages whose heat is at or below
/// `demote_heat` are demoted to make space — promotion never evicts a warm
/// local page. The ping-pong damper (`cooldown_epochs`) suppresses
/// re-migration of recently moved pages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotPromote {
    /// Application DRAM lines per hotness epoch.
    pub epoch_lines: u64,
    /// Heat at which a pool page becomes a promotion candidate.
    pub promote_heat: f64,
    /// Heat at or below which a local page may be demoted under pressure.
    pub demote_heat: f64,
    /// Per-epoch decay factor of the hotness tracker.
    pub decay: f64,
    /// Ping-pong damper: epochs a migrated page must rest.
    pub cooldown_epochs: u64,
    /// Upper bound on promotions per epoch (bounds per-epoch link burst).
    pub max_moves_per_epoch: u64,
}

impl HotPromote {
    /// A promotion-threshold policy with damper defaults: demotion threshold
    /// at a quarter of the promotion threshold, decay 0.5, cooldown 2 epochs,
    /// at most 4096 promotions per epoch.
    pub fn new(epoch_lines: u64, promote_heat: f64) -> Self {
        Self {
            epoch_lines,
            promote_heat,
            demote_heat: promote_heat / 4.0,
            decay: 0.5,
            cooldown_epochs: 2,
            max_moves_per_epoch: 4096,
        }
    }
}

impl TieringPolicy for HotPromote {
    fn name(&self) -> &'static str {
        "hot-promote"
    }

    fn epoch_lines(&self) -> Option<u64> {
        Some(self.epoch_lines)
    }

    fn decay(&self) -> f64 {
        self.decay
    }

    fn cooldown_epochs(&self) -> u64 {
        self.cooldown_epochs
    }

    fn plan(
        &mut self,
        _epoch: u64,
        samples: &[PageSample],
        occupancy: &TierOccupancy,
    ) -> Vec<MigrationOrder> {
        let mut promotions: Vec<u64> = samples
            .iter()
            .filter(|s| s.tier == Tier::Pool && s.heat >= self.promote_heat && !s.cooling)
            .take(self.max_moves_per_epoch as usize)
            .map(|s| s.page)
            .collect();
        if promotions.is_empty() {
            return Vec::new();
        }
        let mut orders = Vec::new();
        let room = occupancy.local_free();
        if (promotions.len() as u64) > room {
            let need = promotions.len() as u64 - room;
            // Coldest local pages first (samples are sorted hottest-first).
            let demotions: Vec<u64> = samples
                .iter()
                .rev()
                .filter(|s| s.tier == Tier::Local && s.heat <= self.demote_heat && !s.cooling)
                .take(need as usize)
                .map(|s| s.page)
                .collect();
            if (demotions.len() as u64) < need {
                // Not enough cold pages to make room: promote only what fits.
                promotions.truncate((room + demotions.len() as u64) as usize);
            }
            orders.extend(demotions.into_iter().map(|page| MigrationOrder {
                page,
                to: Tier::Pool,
            }));
        }
        orders.extend(promotions.into_iter().map(|page| MigrationOrder {
            page,
            to: Tier::Local,
        }));
        orders
    }
}

/// AutoNUMA-style periodic rebalancing: every `period_epochs` epochs, the
/// `top_k` hottest pool pages are compared against the coldest local pages
/// and swapped pairwise whenever the pool page is strictly hotter (free local
/// room is consumed first, without demotions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodicRebalance {
    /// Application DRAM lines per hotness epoch.
    pub epoch_lines: u64,
    /// Rebalance every this many epochs.
    pub period_epochs: u64,
    /// Sampled swap candidates per rebalance.
    pub top_k: u64,
    /// Per-epoch decay factor of the hotness tracker.
    pub decay: f64,
    /// Ping-pong damper: epochs a migrated page must rest.
    pub cooldown_epochs: u64,
}

impl PeriodicRebalance {
    /// A rebalancer with damper defaults (decay 0.5, cooldown 2 epochs).
    pub fn new(epoch_lines: u64, period_epochs: u64, top_k: u64) -> Self {
        Self {
            epoch_lines,
            period_epochs: period_epochs.max(1),
            top_k,
            decay: 0.5,
            cooldown_epochs: 2,
        }
    }
}

impl TieringPolicy for PeriodicRebalance {
    fn name(&self) -> &'static str {
        "periodic-rebalance"
    }

    fn epoch_lines(&self) -> Option<u64> {
        Some(self.epoch_lines)
    }

    fn decay(&self) -> f64 {
        self.decay
    }

    fn cooldown_epochs(&self) -> u64 {
        self.cooldown_epochs
    }

    fn plan(
        &mut self,
        epoch: u64,
        samples: &[PageSample],
        occupancy: &TierOccupancy,
    ) -> Vec<MigrationOrder> {
        if epoch % self.period_epochs.max(1) != 0 {
            return Vec::new();
        }
        let mut orders = Vec::new();
        let mut room = occupancy.local_free();
        let mut cold_local = samples
            .iter()
            .rev()
            .filter(|s| s.tier == Tier::Local && !s.cooling)
            .peekable();
        for hot in samples
            .iter()
            .filter(|s| s.tier == Tier::Pool && s.heat > 0.0 && !s.cooling)
            .take(self.top_k as usize)
        {
            if room > 0 {
                room -= 1;
            } else {
                // Swap with the coldest remaining local page, if the hot pool
                // page is strictly hotter. Samples are sorted, so once a swap
                // stops paying off no later pair can either.
                match cold_local.peek() {
                    Some(cold) if hot.heat > cold.heat => {
                        let cold = cold_local.next().unwrap();
                        orders.push(MigrationOrder {
                            page: cold.page,
                            to: Tier::Pool,
                        });
                    }
                    _ => break,
                }
            }
            orders.push(MigrationOrder {
                page: hot.page,
                to: Tier::Local,
            });
        }
        orders
    }
}

/// Serializable description of a tiering-policy configuration, for campaign
/// sweeps, benchmark harnesses and committed JSON results.
///
/// ```
/// use dismem_sim::tiering::HotPromote;
/// use dismem_sim::{Machine, MachineConfig, TieringPolicy, TieringSpec};
///
/// let spec = TieringSpec::HotPromote(HotPromote::new(4096, 16.0));
/// assert_eq!(spec.label(), "hot-promote");
///
/// // A spec builds its policy, and a machine installs it directly.
/// let mut machine = Machine::new(MachineConfig::test_config());
/// machine.set_tiering_spec(&spec);
/// assert_eq!(machine.tiering_policy_name(), "hot-promote");
///
/// // The default `Static` spec never fires an epoch: the machine stays
/// // bit-identical to the pre-tiering simulator.
/// assert!(TieringSpec::Static.build().epoch_lines().is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TieringSpec {
    /// First-touch pinning, no migrations (the reference).
    Static,
    /// [`HotPromote`] with the given parameters.
    HotPromote(HotPromote),
    /// [`PeriodicRebalance`] with the given parameters.
    PeriodicRebalance(PeriodicRebalance),
}

impl TieringSpec {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            TieringSpec::Static => "static",
            TieringSpec::HotPromote(_) => "hot-promote",
            TieringSpec::PeriodicRebalance(_) => "periodic-rebalance",
        }
    }

    /// Instantiates the described policy.
    pub fn build(&self) -> Box<dyn TieringPolicy> {
        match *self {
            TieringSpec::Static => Box::new(Static),
            TieringSpec::HotPromote(p) => Box::new(p),
            TieringSpec::PeriodicRebalance(p) => Box::new(p),
        }
    }
}

/// Migration statistics accumulated over a run (surfaced as
/// [`crate::report::TieringReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieringStats {
    /// Hotness epochs completed.
    pub epochs: u64,
    /// Pages promoted pool → local.
    pub promotions: u64,
    /// Pages demoted local → pool.
    pub demotions: u64,
    /// Migrations suppressed by the ping-pong damper.
    pub ping_pongs_damped: u64,
    /// Migrations dropped because the destination tier was full.
    pub skipped_capacity: u64,
    /// Times the hot set moved (see [`HotSetDelta::shifted`]).
    pub hot_set_shifts: u64,
    /// Epochs spent in completed phase dwells (dwells closed by a shift).
    pub dwell_epochs_total: u64,
    /// Epochs of the still-open dwell (the current hot set's residency).
    pub open_dwell_epochs: u64,
    /// Largest hot set observed at any epoch, in pages.
    pub hot_set_pages_max: u64,
}

/// Per-machine tiering state: the installed policy, the epoch accumulator,
/// the ping-pong damper history and the run statistics. Owned by
/// [`crate::Machine`]; the policy's hotness tracker lives in the address
/// space, next to the traffic recording that feeds it.
pub(crate) struct TieringRuntime {
    pub(crate) policy: Box<dyn TieringPolicy>,
    /// Application DRAM lines accumulated towards the next epoch.
    pub(crate) epoch_acc: u64,
    /// Index of the current epoch (1-based; incremented when an epoch fires).
    pub(crate) epoch: u64,
    /// Page → epoch of its last applied migration (ping-pong damper).
    #[allow(clippy::disallowed_types)]
    pub(crate) last_migrated: HashMap<u64, u64>,
    pub(crate) stats: TieringStats,
}

impl TieringRuntime {
    pub(crate) fn new(policy: Box<dyn TieringPolicy>) -> Self {
        Self {
            policy,
            epoch_acc: 0,
            epoch: 0,
            #[allow(clippy::disallowed_types)]
            last_migrated: HashMap::new(),
            stats: TieringStats::default(),
        }
    }

    /// Whether the damper suppresses a migration of `page` in `epoch`.
    pub(crate) fn damped(&self, page: u64, epoch: u64, cooldown: u64) -> bool {
        cooldown > 0
            && self
                .last_migrated
                .get(&page)
                .is_some_and(|&last| epoch - last < cooldown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(page: u64, tier: Tier, heat: f64) -> PageSample {
        PageSample {
            page,
            tier,
            heat,
            cooling: false,
        }
    }

    fn occupancy(local_used: u64, local_cap: u64) -> TierOccupancy {
        TierOccupancy {
            local_used,
            local_capacity: Some(local_cap),
            pool_used: 0,
            pool_capacity: None,
        }
    }

    #[test]
    fn tracker_decays_and_prunes() {
        let mut t = HotnessTracker::new(0.5);
        t.record(1, 100);
        t.record(1, 28);
        t.record(2, 2);
        t.end_epoch();
        assert_eq!(t.heat_of(1), 128.0);
        assert_eq!(t.heat_of(2), 2.0);
        // Page 1 untouched for an epoch: halves. Page 2 decays towards the
        // floor and is eventually pruned.
        t.end_epoch();
        assert_eq!(t.heat_of(1), 64.0);
        assert_eq!(t.heat_of(2), 1.0);
        for _ in 0..20 {
            t.end_epoch();
        }
        assert_eq!(t.heat_of(2), 0.0, "cold page must be pruned");
        assert_eq!(t.tracked_pages(), 0, "all pages decay below the floor");
        assert_eq!(t.epochs_completed(), 22);
    }

    #[test]
    fn tracker_accrual_is_order_independent() {
        let mut a = HotnessTracker::new(0.5);
        let mut b = HotnessTracker::new(0.5);
        // One bulk record vs many singles, interleaved differently.
        a.record(7, 64);
        a.record(9, 3);
        for _ in 0..64 {
            b.record(7, 1);
        }
        b.record(9, 2);
        b.record(9, 1);
        a.end_epoch();
        b.end_epoch();
        assert_eq!(a.heat_of(7).to_bits(), b.heat_of(7).to_bits());
        assert_eq!(a.heat_of(9).to_bits(), b.heat_of(9).to_bits());
    }

    #[test]
    fn hot_set_shift_detection_follows_the_moving_working_set() {
        let mut t = HotnessTracker::new(0.5);
        // Epoch 1: pages 1 and 2 are hot, page 3 is background noise.
        t.record(1, 100);
        t.record(2, 90);
        t.record(3, 10);
        let d = t.end_epoch();
        assert_eq!(d.pages, 2);
        assert!(!d.shifted, "the first hot set is not a shift");
        // Epoch 2: the same set stays hot.
        t.record(1, 100);
        t.record(2, 90);
        assert!(!t.end_epoch().shifted);
        // Epoch 3: the working set moves entirely.
        t.record(7, 500);
        t.record(8, 450);
        let d = t.end_epoch();
        assert!(d.shifted, "a moved working set must register as a shift");
        assert_eq!(d.pages, 2);
    }

    #[test]
    fn idle_epochs_decay_uniformly_without_shifting() {
        let mut t = HotnessTracker::new(0.5);
        t.record(1, 100);
        t.record(2, 90);
        assert!(!t.end_epoch().shifted);
        // Decay-only epochs scale every score (and the maximum) by the same
        // factor, so fraction-of-max membership — and the dwell clock — is
        // unchanged until pruning empties the set.
        let d = t.end_epoch();
        assert!(!d.shifted);
        assert_eq!(d.pages, 2);
    }

    #[test]
    fn static_policy_has_no_epochs() {
        let mut s = Static;
        assert_eq!(s.epoch_lines(), None);
        assert_eq!(s.name(), "static");
        assert!(s.plan(1, &[], &occupancy(0, 10)).is_empty());
    }

    #[test]
    fn hot_promote_promotes_into_free_room() {
        let mut p = HotPromote::new(1000, 10.0);
        let samples = vec![
            sample(5, Tier::Pool, 50.0),
            sample(9, Tier::Pool, 20.0),
            sample(1, Tier::Local, 15.0),
            sample(7, Tier::Pool, 5.0), // below threshold
        ];
        let orders = p.plan(1, &samples, &occupancy(4, 8));
        assert_eq!(
            orders,
            vec![
                MigrationOrder {
                    page: 5,
                    to: Tier::Local
                },
                MigrationOrder {
                    page: 9,
                    to: Tier::Local
                },
            ]
        );
    }

    #[test]
    fn hot_promote_demotes_cold_pages_under_pressure() {
        let mut p = HotPromote::new(1000, 10.0);
        let samples = vec![
            sample(5, Tier::Pool, 50.0),
            sample(9, Tier::Pool, 20.0),
            sample(1, Tier::Local, 15.0), // warm: must not be demoted
            sample(2, Tier::Local, 1.0),
            sample(3, Tier::Local, 0.0),
        ];
        // Local full: both promotions need demotions; the coldest local pages
        // go first and the warm page is untouchable.
        let orders = p.plan(1, &samples, &occupancy(3, 3));
        assert_eq!(orders.len(), 4);
        assert_eq!(
            orders[0],
            MigrationOrder {
                page: 3,
                to: Tier::Pool
            }
        );
        assert_eq!(
            orders[1],
            MigrationOrder {
                page: 2,
                to: Tier::Pool
            }
        );
        assert!(orders[2..].iter().all(|o| o.to == Tier::Local));
    }

    #[test]
    fn hot_promote_trims_promotions_without_demotion_candidates() {
        let mut p = HotPromote {
            demote_heat: 0.5,
            ..HotPromote::new(1000, 10.0)
        };
        let samples = vec![
            sample(5, Tier::Pool, 50.0),
            sample(9, Tier::Pool, 20.0),
            sample(1, Tier::Local, 15.0),
            sample(2, Tier::Local, 8.0), // warmer than demote_heat
        ];
        let orders = p.plan(1, &samples, &occupancy(2, 3));
        // One free slot, no demotable page: only the hottest promotion runs.
        assert_eq!(
            orders,
            vec![MigrationOrder {
                page: 5,
                to: Tier::Local
            }]
        );
    }

    #[test]
    fn hot_promote_skips_cooling_pages_and_their_demotions() {
        let mut p = HotPromote::new(1000, 10.0);
        let hot_but_cooling = PageSample {
            cooling: true,
            ..sample(5, Tier::Pool, 50.0)
        };
        let cold_but_cooling = PageSample {
            cooling: true,
            ..sample(3, Tier::Local, 0.0)
        };
        // The only promotion candidate is cooling: no orders at all — in
        // particular no speculative demotion to make room for it.
        let orders = p.plan(
            1,
            &[hot_but_cooling, sample(2, Tier::Local, 0.0)],
            &occupancy(1, 1),
        );
        assert!(orders.is_empty());
        // A cooling local page is not a demotion victim either.
        let orders = p.plan(
            1,
            &[
                sample(9, Tier::Pool, 20.0),
                cold_but_cooling,
                sample(2, Tier::Local, 1.0),
            ],
            &occupancy(2, 2),
        );
        assert_eq!(
            orders,
            vec![
                MigrationOrder {
                    page: 2,
                    to: Tier::Pool
                },
                MigrationOrder {
                    page: 9,
                    to: Tier::Local
                },
            ]
        );
    }

    #[test]
    fn hot_promote_respects_move_cap() {
        let mut p = HotPromote {
            max_moves_per_epoch: 1,
            ..HotPromote::new(1000, 10.0)
        };
        let samples = vec![sample(5, Tier::Pool, 50.0), sample(9, Tier::Pool, 20.0)];
        let orders = p.plan(1, &samples, &occupancy(0, 8));
        assert_eq!(orders.len(), 1);
        assert_eq!(orders[0].page, 5);
    }

    #[test]
    fn periodic_rebalance_swaps_only_profitable_pairs() {
        let mut p = PeriodicRebalance::new(1000, 2, 8);
        let samples = vec![
            sample(5, Tier::Pool, 50.0),
            sample(9, Tier::Pool, 20.0),
            sample(1, Tier::Local, 30.0),
            sample(2, Tier::Local, 25.0),
        ];
        // Off-period epoch: nothing.
        assert!(p.plan(1, &samples, &occupancy(2, 2)).is_empty());
        // On-period, local full: page 5 (50) swaps with page 2 (25); page 9
        // (20) is not hotter than page 1 (30), so rebalancing stops.
        let orders = p.plan(2, &samples, &occupancy(2, 2));
        assert_eq!(
            orders,
            vec![
                MigrationOrder {
                    page: 2,
                    to: Tier::Pool
                },
                MigrationOrder {
                    page: 5,
                    to: Tier::Local
                },
            ]
        );
    }

    #[test]
    fn periodic_rebalance_uses_free_room_before_swapping() {
        let mut p = PeriodicRebalance::new(1000, 1, 8);
        let samples = vec![sample(5, Tier::Pool, 50.0), sample(9, Tier::Pool, 20.0)];
        let orders = p.plan(3, &samples, &occupancy(6, 7));
        // One free slot, no local pages at all to swap with afterwards.
        assert_eq!(
            orders,
            vec![MigrationOrder {
                page: 5,
                to: Tier::Local
            }]
        );
    }

    #[test]
    fn damper_suppresses_recent_migrations() {
        let mut rt = TieringRuntime::new(Box::new(Static));
        rt.last_migrated.insert(7, 5);
        assert!(rt.damped(7, 6, 2));
        assert!(!rt.damped(7, 7, 2));
        assert!(!rt.damped(7, 6, 0), "zero cooldown never damps");
        assert!(!rt.damped(8, 6, 2), "never-migrated page is free to move");
    }

    #[test]
    fn spec_builds_matching_policies() {
        let specs = [
            TieringSpec::Static,
            TieringSpec::HotPromote(HotPromote::new(1000, 8.0)),
            TieringSpec::PeriodicRebalance(PeriodicRebalance::new(1000, 4, 64)),
        ];
        let names: Vec<&str> = specs.iter().map(|s| s.label()).collect();
        assert_eq!(names, ["static", "hot-promote", "periodic-rebalance"]);
        for spec in &specs {
            let policy = spec.build();
            assert_eq!(policy.name(), spec.label());
            assert_eq!(
                policy.epoch_lines().is_none(),
                matches!(spec, TieringSpec::Static)
            );
        }
    }

    #[test]
    fn occupancy_free_accounting() {
        let occ = occupancy(3, 8);
        assert_eq!(occ.local_free(), 5);
        assert_eq!(occ.pool_free(), u64::MAX);
        let over = occupancy(9, 8);
        assert_eq!(over.local_free(), 0);
    }
}
