//! Run reports: everything the profiler layers consume after a simulation.

use crate::config::MachineConfig;
use crate::counters::Counters;
use crate::interference::InterferenceProfile;
use crate::timing::TimingModel;
use dismem_trace::PageHistogram;
use serde::{Deserialize, Serialize};

/// Counters and runtime of one profiled phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Phase tag passed to `phase_start`.
    pub name: String,
    /// Counters accumulated during the phase.
    pub counters: Counters,
    /// Simulated phase runtime in seconds.
    pub runtime_s: f64,
    /// Cache-line size used for byte conversions.
    pub line_bytes: u64,
}

impl PhaseReport {
    /// Arithmetic intensity (flops per byte of DRAM traffic).
    pub fn arithmetic_intensity(&self) -> f64 {
        self.counters.arithmetic_intensity(self.line_bytes)
    }

    /// Achieved throughput in Gflop/s.
    pub fn gflops(&self) -> f64 {
        if self.runtime_s == 0.0 {
            return 0.0;
        }
        self.counters.flops as f64 / self.runtime_s / 1e9
    }

    /// Achieved DRAM bandwidth (both tiers) in GB/s.
    pub fn dram_bandwidth_gbs(&self) -> f64 {
        if self.runtime_s == 0.0 {
            return 0.0;
        }
        self.counters.bytes_dram(self.line_bytes) as f64 / self.runtime_s / 1e9
    }

    /// Remote (pool) access ratio of the phase.
    pub fn remote_access_ratio(&self) -> f64 {
        self.counters.remote_access_ratio(self.line_bytes)
    }

    /// Raw link traffic rate in GB/s.
    pub fn link_traffic_gbs(&self) -> f64 {
        if self.runtime_s == 0.0 {
            return 0.0;
        }
        self.counters.link_raw_bytes as f64 / self.runtime_s / 1e9
    }
}

/// Placement and traffic summary of one allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocationSummary {
    /// Object name.
    pub name: String,
    /// Allocation site.
    pub site: String,
    /// Requested bytes.
    pub bytes: u64,
    /// Allocation order (0 = first).
    pub order: usize,
    /// Whether the object was freed before the end of the run.
    pub freed: bool,
    /// Pages bound to the local tier at the end of the run.
    pub pages_local: u64,
    /// Pages bound to the pool tier at the end of the run.
    pub pages_pool: u64,
    /// DRAM line accesses served locally.
    pub dram_lines_local: u64,
    /// DRAM line accesses served by the pool.
    pub dram_lines_pool: u64,
}

impl AllocationSummary {
    /// Fraction of this object's DRAM accesses that went to the pool.
    pub fn remote_access_ratio(&self) -> f64 {
        let total = self.dram_lines_local + self.dram_lines_pool;
        if total == 0 {
            return 0.0;
        }
        self.dram_lines_pool as f64 / total as f64
    }

    /// Total DRAM line accesses to this object.
    pub fn dram_lines(&self) -> u64 {
        self.dram_lines_local + self.dram_lines_pool
    }
}

/// One timing chunk: a slice of work with its counters and duration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineSample {
    /// Simulated start time of the chunk.
    pub start_s: f64,
    /// Chunk duration.
    pub duration_s: f64,
    /// Counters accumulated during the chunk.
    pub counters: Counters,
    /// Index into [`RunReport::phases`], or `None` for work outside phases.
    pub phase: Option<usize>,
}

/// Migration activity of the dynamic tiering subsystem over a run.
///
/// All zeros (with policy `"static"`) when no dynamic policy was installed —
/// the default, and the paper's pin-at-first-touch behaviour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TieringReport {
    /// Name of the installed tiering policy.
    pub policy: String,
    /// Hotness epochs completed.
    pub epochs: u64,
    /// Pages promoted pool → local.
    pub promotions: u64,
    /// Pages demoted local → pool.
    pub demotions: u64,
    /// Total pages migrated (promotions + demotions).
    pub migrated_pages: u64,
    /// Payload bytes moved by migrations (pages × page size).
    pub migrated_bytes: u64,
    /// Migrations suppressed by the ping-pong damper.
    pub ping_pongs_damped: u64,
    /// Migrations dropped because the destination tier was full.
    pub skipped_capacity: u64,
    /// Times the hot set moved to a different set of pages (no strict
    /// majority of the dwell's anchor hot set still hot at an epoch
    /// boundary).
    pub hot_set_shifts: u64,
    /// Epochs spent in *completed* phase dwells — dwells that ended with a
    /// hot-set shift. One dwell is the number of consecutive epochs a hot
    /// working set stayed put.
    pub dwell_epochs_total: u64,
    /// Epochs of the still-open dwell at the end of the run (the final hot
    /// set's residency, not yet closed by a shift).
    pub open_dwell_epochs: u64,
    /// Largest hot set observed at any epoch boundary, in pages.
    pub hot_set_pages_max: u64,
}

impl TieringReport {
    /// Mean phase-dwell length in epochs: how long a hot working set stays
    /// put before it moves, averaged over every dwell of the run (the open
    /// dwell at the end of the run counts as one sample). Returns 0.0 when no
    /// epoch ever observed a hot set — e.g. under the `static` policy, which
    /// never fires epochs.
    ///
    /// This is the measured quantity behind the migrate-vs-interleave
    /// guidance rule: a page migration can only amortize within one dwell.
    pub fn mean_dwell_epochs(&self) -> f64 {
        let dwells = self.hot_set_shifts + u64::from(self.open_dwell_epochs > 0);
        if dwells == 0 {
            return 0.0;
        }
        (self.dwell_epochs_total + self.open_dwell_epochs) as f64 / dwells as f64
    }
}

impl Default for TieringReport {
    fn default() -> Self {
        Self {
            policy: "static".to_string(),
            epochs: 0,
            promotions: 0,
            demotions: 0,
            migrated_pages: 0,
            migrated_bytes: 0,
            ping_pongs_damped: 0,
            skipped_capacity: 0,
            hot_set_shifts: 0,
            dwell_epochs_total: 0,
            open_dwell_epochs: 0,
            hot_set_pages_max: 0,
        }
    }
}

/// Result of re-evaluating a run's timeline under a different interference
/// profile (no re-simulation of caches or placement).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RetimedRun {
    /// New total runtime.
    pub total_runtime_s: f64,
    /// New per-phase runtimes, aligned with [`RunReport::phases`].
    pub phase_runtimes_s: Vec<f64>,
}

/// Full output of one simulated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Machine configuration the run used.
    pub config: MachineConfig,
    /// Per-phase counters and runtimes.
    pub phases: Vec<PhaseReport>,
    /// Counters over the whole run (including work outside phases).
    pub total: Counters,
    /// Total simulated runtime in seconds.
    pub total_runtime_s: f64,
    /// Allocation summaries in allocation order.
    pub allocations: Vec<AllocationSummary>,
    /// Timing chunks in execution order.
    pub timeline: Vec<TimelineSample>,
    /// Page-granular DRAM access histogram.
    pub page_histogram: PageHistogram,
    /// Peak bytes of live allocations.
    pub peak_footprint_bytes: u64,
    /// Pages bound to the local tier at the end of the run.
    pub local_pages_used: u64,
    /// Pages bound to the pool tier at the end of the run.
    pub pool_pages_used: u64,
    /// Dynamic-tiering migration activity (all zeros under `Static`).
    pub tiering: TieringReport,
}

impl RunReport {
    /// Remote access ratio over the whole run.
    pub fn remote_access_ratio(&self) -> f64 {
        self.total.remote_access_ratio(self.config.cache.line_bytes)
    }

    /// Remote capacity ratio: fraction of bound pages residing on the pool.
    pub fn remote_capacity_ratio(&self) -> f64 {
        let total = self.local_pages_used + self.pool_pages_used;
        if total == 0 {
            return 0.0;
        }
        self.pool_pages_used as f64 / total as f64
    }

    /// Bytes accessed from the pool tier over the whole run.
    pub fn remote_bytes(&self) -> u64 {
        self.total.bytes_pool(self.config.cache.line_bytes)
    }

    /// Raw link traffic generated by page migrations over the run (payload ×
    /// protocol overhead). Part of [`Counters::link_raw_bytes`]; broken out
    /// here so campaign sweeps can show what migrations cost on the link.
    pub fn migration_link_raw_bytes(&self) -> u64 {
        crate::link::LinkModel::new(self.config.link)
            .migration_raw_bytes(self.tiering.migrated_pages)
    }

    /// Average raw link traffic rate over the run, in GB/s.
    pub fn link_traffic_gbs(&self) -> f64 {
        if self.total_runtime_s == 0.0 {
            return 0.0;
        }
        self.total.link_raw_bytes as f64 / self.total_runtime_s / 1e9
    }

    /// Measured level of interference this run itself would inject on the
    /// link (fraction of the peak raw bandwidth).
    pub fn measured_loi(&self) -> f64 {
        self.link_traffic_gbs() * 1e9 / self.config.link.raw_bandwidth_bps
    }

    /// Achieved throughput over the whole run in Gflop/s.
    pub fn gflops(&self) -> f64 {
        if self.total_runtime_s == 0.0 {
            return 0.0;
        }
        self.total.flops as f64 / self.total_runtime_s / 1e9
    }

    /// Looks up a phase report by name.
    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Finds the allocation summary for an object name.
    pub fn allocation(&self, name: &str) -> Option<&AllocationSummary> {
        self.allocations.iter().find(|a| a.name == name)
    }

    /// Re-evaluates the run's timeline under a different interference profile
    /// without re-simulating caches or page placement.
    ///
    /// This is how the Level-3 sensitivity sweeps (Figure 10) and the
    /// scheduling study (Figure 13) explore many interference scenarios
    /// cheaply: cache behaviour and data placement do not depend on what other
    /// nodes do to the link, only timing does.
    pub fn retime(&self, interference: &InterferenceProfile) -> RetimedRun {
        let model = TimingModel::new(self.config.clone());
        let mut clock = 0.0f64;
        let mut phase_runtimes = vec![0.0f64; self.phases.len()];
        for sample in &self.timeline {
            let loi = interference.loi_at(clock);
            let t = model.chunk_time(&sample.counters, loi).total_s;
            if let Some(p) = sample.phase {
                phase_runtimes[p] += t;
            }
            clock += t;
        }
        RetimedRun {
            total_runtime_s: clock,
            phase_runtimes_s: phase_runtimes,
        }
    }

    /// Relative performance under `interference` compared with an idle pool
    /// (1.0 = no slowdown, lower = slower), the paper's sensitivity metric.
    pub fn relative_performance(&self, interference: &InterferenceProfile) -> f64 {
        let idle = self.retime(&InterferenceProfile::Idle).total_runtime_s;
        let loaded = self.retime(interference).total_runtime_s;
        if loaded == 0.0 {
            return 1.0;
        }
        idle / loaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_chunk(lines: u64) -> Counters {
        Counters {
            flops: 1000,
            dram_lines_pool: lines,
            demand_dram_lines_pool: lines / 2,
            link_raw_bytes: lines * 64 * 85 / 34,
            ..Default::default()
        }
    }

    fn report_with_pool_traffic() -> RunReport {
        let config = MachineConfig::skylake_testbed();
        let model = TimingModel::new(config.clone());
        let chunk = pool_chunk(100_000);
        let t = model.chunk_time(&chunk, 0.0).total_s;
        let mut total = Counters::default();
        total.add(&chunk);
        total.add(&chunk);
        RunReport {
            config,
            phases: vec![PhaseReport {
                name: "p1".into(),
                counters: total,
                runtime_s: 2.0 * t,
                line_bytes: 64,
            }],
            total,
            total_runtime_s: 2.0 * t,
            allocations: vec![],
            timeline: vec![
                TimelineSample {
                    start_s: 0.0,
                    duration_s: t,
                    counters: chunk,
                    phase: Some(0),
                },
                TimelineSample {
                    start_s: t,
                    duration_s: t,
                    counters: chunk,
                    phase: Some(0),
                },
            ],
            page_histogram: PageHistogram::new(),
            peak_footprint_bytes: 0,
            local_pages_used: 0,
            pool_pages_used: 10,
            tiering: TieringReport::default(),
        }
    }

    #[test]
    fn retime_idle_matches_original() {
        let r = report_with_pool_traffic();
        let rt = r.retime(&InterferenceProfile::Idle);
        assert!((rt.total_runtime_s - r.total_runtime_s).abs() / r.total_runtime_s < 1e-9);
        assert_eq!(rt.phase_runtimes_s.len(), 1);
    }

    #[test]
    fn retime_with_interference_is_slower() {
        let r = report_with_pool_traffic();
        let rt = r.retime(&InterferenceProfile::Constant(0.5));
        assert!(rt.total_runtime_s > r.total_runtime_s);
        let rel = r.relative_performance(&InterferenceProfile::Constant(0.5));
        assert!(rel < 1.0 && rel > 0.2);
    }

    #[test]
    fn relative_performance_idle_is_one() {
        let r = report_with_pool_traffic();
        let rel = r.relative_performance(&InterferenceProfile::Idle);
        assert!((rel - 1.0).abs() < 1e-9);
    }

    #[test]
    fn remote_ratios_and_lookup_helpers() {
        let r = report_with_pool_traffic();
        assert!((r.remote_access_ratio() - 1.0).abs() < 1e-12);
        assert!((r.remote_capacity_ratio() - 1.0).abs() < 1e-12);
        assert!(r.phase("p1").is_some());
        assert!(r.phase("nope").is_none());
        assert!(r.measured_loi() > 0.0);
        assert!(r.gflops() > 0.0);
    }

    #[test]
    fn mean_dwell_counts_completed_and_open_dwells() {
        let mut t = TieringReport::default();
        assert_eq!(t.mean_dwell_epochs(), 0.0, "no epochs, no dwell");
        t.hot_set_shifts = 2;
        t.dwell_epochs_total = 6;
        t.open_dwell_epochs = 3;
        // Two completed dwells (6 epochs) plus the open one (3 epochs).
        assert!((t.mean_dwell_epochs() - 3.0).abs() < 1e-12);
        // A run whose hot set never moved: the open dwell is the only sample.
        let stable = TieringReport {
            open_dwell_epochs: 8,
            ..TieringReport::default()
        };
        assert!((stable.mean_dwell_epochs() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn allocation_summary_ratio() {
        let a = AllocationSummary {
            name: "A".into(),
            site: "s".into(),
            bytes: 100,
            order: 0,
            freed: false,
            pages_local: 1,
            pages_pool: 1,
            dram_lines_local: 30,
            dram_lines_pool: 10,
        };
        assert!((a.remote_access_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(a.dram_lines(), 40);
    }
}
