//! Background interference on the memory-pool link.
//!
//! The paper injects interference with LBench at configurable levels of
//! intensity (LoI = fraction of the peak raw link traffic) and, for the
//! scheduling study, varies the level over time as co-located jobs come and
//! go. [`InterferenceProfile`] captures both shapes.

use serde::{Deserialize, Serialize};

/// One epoch of a time-varying interference schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceEpoch {
    /// Start time of the epoch (seconds of simulated application time).
    pub start_s: f64,
    /// Level of interference during the epoch, 0–1 of peak raw link traffic.
    pub loi: f64,
}

/// Background interference experienced by the application on the pool link.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum InterferenceProfile {
    /// No co-running jobs on the pool (the paper's `LoI = 0` baseline).
    #[default]
    Idle,
    /// Constant level of interference (fraction of peak raw link traffic).
    Constant(f64),
    /// Piecewise-constant schedule; epochs must be sorted by start time and
    /// the first epoch should start at 0.
    Schedule(Vec<InterferenceEpoch>),
}

impl InterferenceProfile {
    /// Constant interference at `percent` of the peak link traffic (the
    /// paper's notation: `LoI = 10, 20, ...`).
    pub fn constant_percent(percent: f64) -> Self {
        InterferenceProfile::Constant(percent / 100.0)
    }

    /// Builds a schedule from `(start_s, loi)` pairs.
    pub fn schedule(epochs: Vec<(f64, f64)>) -> Self {
        let mut eps: Vec<InterferenceEpoch> = epochs
            .into_iter()
            .map(|(start_s, loi)| InterferenceEpoch { start_s, loi })
            .collect();
        eps.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
        InterferenceProfile::Schedule(eps)
    }

    /// Level of interference at simulated time `t_s`.
    pub fn loi_at(&self, t_s: f64) -> f64 {
        match self {
            InterferenceProfile::Idle => 0.0,
            InterferenceProfile::Constant(l) => l.clamp(0.0, 1.0),
            InterferenceProfile::Schedule(epochs) => {
                let mut current = 0.0;
                for e in epochs {
                    if e.start_s <= t_s {
                        current = e.loi;
                    } else {
                        break;
                    }
                }
                current.clamp(0.0, 1.0)
            }
        }
    }

    /// Average LoI over `[0, duration_s]`, weighting each epoch by its length.
    pub fn average_loi(&self, duration_s: f64) -> f64 {
        match self {
            InterferenceProfile::Idle => 0.0,
            InterferenceProfile::Constant(l) => l.clamp(0.0, 1.0),
            InterferenceProfile::Schedule(epochs) => {
                if duration_s <= 0.0 || epochs.is_empty() {
                    return self.loi_at(0.0);
                }
                let mut acc = 0.0;
                let mut covered = 0.0;
                for (i, e) in epochs.iter().enumerate() {
                    let start = e.start_s.max(0.0);
                    if start >= duration_s {
                        break;
                    }
                    let end = epochs
                        .get(i + 1)
                        .map(|n| n.start_s)
                        .unwrap_or(duration_s)
                        .min(duration_s);
                    if end > start {
                        acc += e.loi.clamp(0.0, 1.0) * (end - start);
                        covered += end - start;
                    }
                }
                if covered == 0.0 {
                    0.0
                } else {
                    acc / duration_s
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_zero() {
        assert_eq!(InterferenceProfile::Idle.loi_at(3.0), 0.0);
        assert_eq!(InterferenceProfile::default(), InterferenceProfile::Idle);
    }

    #[test]
    fn constant_percent_conversion() {
        let p = InterferenceProfile::constant_percent(30.0);
        assert!((p.loi_at(0.0) - 0.3).abs() < 1e-12);
        assert!((p.loi_at(100.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn constant_is_clamped() {
        assert_eq!(InterferenceProfile::Constant(1.7).loi_at(0.0), 1.0);
        assert_eq!(InterferenceProfile::Constant(-0.2).loi_at(0.0), 0.0);
    }

    #[test]
    fn schedule_lookup_follows_epochs() {
        let p = InterferenceProfile::schedule(vec![(0.0, 0.1), (10.0, 0.4), (20.0, 0.0)]);
        assert!((p.loi_at(0.0) - 0.1).abs() < 1e-12);
        assert!((p.loi_at(9.99) - 0.1).abs() < 1e-12);
        assert!((p.loi_at(10.0) - 0.4).abs() < 1e-12);
        assert!((p.loi_at(25.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_sorts_unordered_epochs() {
        let p = InterferenceProfile::schedule(vec![(10.0, 0.5), (0.0, 0.2)]);
        assert!((p.loi_at(5.0) - 0.2).abs() < 1e-12);
        assert!((p.loi_at(15.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn before_first_epoch_is_idle() {
        let p = InterferenceProfile::schedule(vec![(5.0, 0.5)]);
        assert_eq!(p.loi_at(1.0), 0.0);
    }

    #[test]
    fn average_loi_weights_epoch_lengths() {
        let p = InterferenceProfile::schedule(vec![(0.0, 0.0), (5.0, 0.4)]);
        // 5 s at 0.0, 5 s at 0.4 over 10 s => 0.2
        assert!((p.average_loi(10.0) - 0.2).abs() < 1e-12);
        assert!((p.average_loi(5.0) - 0.0).abs() < 1e-12);
        assert!((InterferenceProfile::Constant(0.3).average_loi(42.0) - 0.3).abs() < 1e-12);
    }
}
