//! Steady-state page-replay engine for the batched line walk.
//!
//! The batched pipeline of [`CacheSim::demand_access_range`] still pays a set
//! scan and a prefetcher update for every simulated cache line. On the
//! campaign-scale sequential streams of the paper's scaling and interference
//! studies (hundreds of millions of lines), the cache reaches a *steady
//! state*: every page of the stream produces exactly the same hits, fills,
//! evictions, prefetches and timing advance as the page before it, just
//! shifted forward in the address space. This module detects that state and
//! then *replays* whole pages in closed form — the memoized per-window
//! counter delta is added to [`Counters`], the window's DRAM transactions are
//! handed to the [`DramSink`] as page-granular bulk events, and the set scans
//! are skipped entirely.
//!
//! The load-bearing contracts this engine must uphold — bit-identity with
//! the per-line and batched pipelines, and the interaction rules with the
//! dynamic-tiering subsystem (epochs only at chunk closes, migrations
//! hard-reset replay) — are spelled out in `docs/ARCHITECTURE.md` at the
//! repository root; `tests/properties.rs` enforces them.
//!
//! # Windows, not single pages
//!
//! Consecutive pages map to *different* cache sets: with `S` sets and 64
//! lines per page, the set pattern repeats every `S / gcd(S, 64)` pages (the
//! page "color" period). The replay unit is therefore a **window** of
//! `W = lcm(color(L2), color(LLC))` pages: shifting a window by `W` pages
//! maps every line back to the same set, which is what makes the steady
//! state checkable by shifted equality. Within a set (and within the
//! prefetcher's stream table) the *physical arrangement* of lines across
//! ways is canonicalized away before comparison: timestamps are globally
//! unique per structure, so LRU victim selection never tie-breaks on the
//! way index and the arrangement is unobservable — only the stamp-ordered
//! contents matter.
//!
//! # Detection: fingerprint two consecutive windows
//!
//! While a contiguous, same-kind line streak is walked exactly, the engine
//! accumulates a per-window fingerprint:
//!
//! * the [`Counters`] delta produced by the window,
//! * the ordered list of DRAM transactions (line address, kind), and
//! * — once two consecutive deltas match — a full snapshot of the L2, LLC
//!   and prefetcher state at the window boundary.
//!
//! Replay engages when window `n+1` reproduces window `n` exactly under a
//! uniform shift: equal counter deltas, transaction lists equal with every
//! line address advanced by `W` pages, and the post-window cache/prefetcher
//! snapshots equal with every valid tag advanced by `W` pages and every
//! timestamp advanced by the window's clock delta. That last check is the
//! soundness core: the walk is a deterministic function of the cache state,
//! the prefetcher state and the (shifted) addresses, and all of its index
//! arithmetic is congruent under a `W`-page shift — so if the state after
//! window `n+1` is the state after window `n` shifted by one window, then by
//! induction every following window behaves identically-shifted until an
//! invariant breaks. Foreign resident lines, partially-warm caches, aliasing
//! hot lines and mid-stream perturbations all surface as a snapshot or delta
//! mismatch and simply keep the engine in the exact walk.
//!
//! The prefetcher's accuracy-feedback counters are deliberately excluded
//! from the snapshot comparison (they grow monotonically even in steady
//! state) and handled separately: replay requires that the window produced
//! no useless-prefetch feedback and that — if useful feedback occurs — the
//! useless counter is zero at both snapshot boundaries, which makes the
//! throttle decision (`effective_degree`) provably constant; the useful
//! counter itself is advanced in closed form
//! ([`crate::prefetch::StreamPrefetcher::advance_useful`]).
//!
//! # Replay and exact exit
//!
//! A replayed window costs O(pages + distinct DRAM pages) instead of
//! O(lines × associativity). Page→tier resolution still happens per page in
//! the sink — first-touch binding, capacity spills from the local tier to
//! the pool, OOM aborts and interleaved placement all take the *same
//! decisions in the same order* as the exact walk, because the cache walk is
//! tier-blind and the bulk events preserve first-occurrence page order.
//!
//! On any exit — the run ends mid-window, the streak breaks, foreign
//! traffic arrives, or the engine is reconfigured — the cache and
//! prefetcher state is *materialized*: rebuilt from the engagement snapshot
//! with all tags, pages and timestamps shifted by the number of replayed
//! windows, which is exactly the state the exact walk would have produced.
//! The workspace property tests assert full `RunReport` bit-identity
//! between replay-on, replay-off and the per-line reference pipeline.

use crate::cache::{CacheLine, CacheSim, DramEventKind, DramSink};
use crate::counters::Counters;
use crate::prefetch::PrefetcherSnapshot;
use dismem_trace::{CACHE_LINE_SIZE, PAGE_SIZE};
// The grouping index is entry-only (never iterated), so arbitrary order
// cannot leak into the replayed event stream.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

/// Cache lines per page.
const LINES_PER_PAGE: u64 = PAGE_SIZE / CACHE_LINE_SIZE;

/// Geometries whose window exceeds this many pages never reach steady state
/// within realistic runs; the engine disables itself rather than fingerprint
/// multi-MiB windows.
const MAX_WINDOW_PAGES: u64 = 1024;

/// Cap (in windows) of the exponential arming backoff after a failed
/// snapshot comparison, bounding the snapshot cost on never-periodic
/// traffic.
const MAX_BACKOFF: u32 = 16;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

fn round_up_to_page(line: u64) -> u64 {
    line.div_ceil(LINES_PER_PAGE) * LINES_PER_PAGE
}

/// Fingerprint of one completed window: its counter delta and its ordered
/// DRAM transaction list.
#[derive(Debug, Clone)]
struct WindowPrint {
    delta: Counters,
    events: Vec<(u64, DramEventKind)>,
}

/// Frozen cache + prefetcher state at a window boundary.
#[derive(Debug, Clone)]
struct StateSnapshot {
    l2_lines: Vec<CacheLine>,
    l2_ways: usize,
    l2_clock: u64,
    llc_lines: Vec<CacheLine>,
    llc_ways: usize,
    llc_clock: u64,
    pf: PrefetcherSnapshot,
}

/// Per-window clock advances derived from two matching snapshots.
#[derive(Debug, Clone, Copy)]
struct ClockDeltas {
    l2: u64,
    llc: u64,
    pf: u64,
}

/// One page's worth of a window's DRAM transactions of one kind.
#[derive(Debug, Clone, Copy)]
struct Group {
    /// Line offset of the group's first transaction relative to the first
    /// line of the fingerprinted window (negative for victim writebacks that
    /// target pages behind the stream).
    rel_line: i64,
    kind: DramEventKind,
    count: u64,
}

/// Everything needed to replay windows and to materialize the exact state on
/// exit.
#[derive(Debug, Clone)]
struct Memo {
    /// Cache-side counter delta of one window.
    delta: Counters,
    /// Page-granular DRAM transactions of one window, in first-occurrence
    /// order (which preserves first-touch binding order).
    groups: Vec<Group>,
    /// State at the *start* of the confirming window (the armed snapshot):
    /// after `m` replayed windows the exact state is this snapshot shifted
    /// forward by `m + 1` windows.
    snap: StateSnapshot,
    clocks: ClockDeltas,
    /// `feedback(true)` calls per window, advanced in closed form.
    pf_useful_per_window: u64,
    /// First line of the confirming window; replayed window `k` starts at
    /// `base_line + (k + 1) * window_lines`.
    base_line: u64,
    /// Whole windows replayed so far from this memo.
    windows_done: u64,
}

#[derive(Debug, Clone, Default)]
enum Mode {
    #[default]
    Detect,
    Replay(Box<Memo>),
}

/// Detector + memo state machine owned by [`CacheSim`].
#[derive(Debug, Clone)]
pub(crate) struct ReplayEngine {
    /// Master switch ([`CacheSim::set_replay_enabled`]).
    pub(crate) enabled: bool,
    /// Whether the cache geometry admits a tractable window at all.
    geometry_ok: bool,
    /// Pages per window.
    pub(crate) window_pages: u64,
    /// Lines per window.
    pub(crate) window_lines: u64,
    /// Lifetime count of replayed windows (observability / tests).
    pub(crate) windows_replayed_total: u64,

    /// Whether a contiguous streak is currently tracked.
    streak: bool,
    next_line: u64,
    is_write: bool,
    /// First line of the window being accumulated.
    window_base: u64,
    /// Lines of the current window already walked.
    filled: u64,
    /// Counter delta accumulated over the current window.
    acc: Counters,
    /// DRAM transactions logged over the current window.
    events: Vec<(u64, DramEventKind)>,
    /// Fingerprint of the last completed window.
    prev: Option<WindowPrint>,
    /// Snapshot taken at the end of the last completed window (armed for a
    /// shift comparison at the end of the next one).
    armed: Option<Box<StateSnapshot>>,
    /// Windows to skip before arming again (backoff countdown).
    skip_windows: u32,
    /// Consecutive failed snapshot comparisons (drives the backoff).
    fail_streak: u32,
    /// Valid-line population (L2 + LLC) observed at the last completed
    /// window; arming waits until it is stable (a filling cache cannot be in
    /// steady state).
    last_valid_count: Option<u64>,
    /// Windows to skip before scanning residency again (set from how far
    /// ahead of the stream the furthest foreign line sits, so warm-up
    /// transients are not scanned every window).
    scan_skip: u32,
    mode: Mode,
}

impl ReplayEngine {
    pub(crate) fn new(l2_sets: u64, llc_sets: u64) -> Self {
        let color = |sets: u64| sets / gcd(sets, LINES_PER_PAGE);
        let window_pages = lcm(color(l2_sets.max(1)), color(llc_sets.max(1)));
        let geometry_ok = window_pages <= MAX_WINDOW_PAGES;
        Self {
            enabled: geometry_ok,
            geometry_ok,
            window_pages,
            window_lines: window_pages * LINES_PER_PAGE,
            windows_replayed_total: 0,
            streak: false,
            next_line: 0,
            is_write: false,
            window_base: 0,
            filled: 0,
            acc: Counters::default(),
            events: Vec::new(),
            prev: None,
            armed: None,
            skip_windows: 0,
            fail_streak: 0,
            last_valid_count: None,
            scan_skip: 0,
            mode: Mode::Detect,
        }
    }

    /// Applies the master switch, respecting the geometry gate.
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled && self.geometry_ok;
    }

    /// Whether any streak / detection / replay state is live.
    pub(crate) fn is_active(&self) -> bool {
        self.streak
    }

    fn in_replay(&self) -> bool {
        matches!(self.mode, Mode::Replay(_))
    }

    /// Drops all state without materializing. Only valid when the caches are
    /// being reset, or right after [`CacheSim::materialize_replay`].
    pub(crate) fn discard(&mut self) {
        debug_assert!(!self.in_replay());
        self.streak = false;
        self.filled = 0;
        self.acc = Counters::default();
        self.events.clear();
        self.prev = None;
        self.armed = None;
        self.skip_windows = 0;
        self.fail_streak = 0;
        self.last_valid_count = None;
        self.scan_skip = 0;
        self.mode = Mode::Detect;
    }

    /// Forced variant of [`ReplayEngine::discard`] for cache resets, where
    /// the state replay would materialize is itself being thrown away.
    pub(crate) fn discard_for_reset(&mut self) {
        self.mode = Mode::Detect;
        self.discard();
    }

    /// Starts tracking a fresh streak at `line`. Kept cheap for scattered
    /// traffic (gathers and wide strides restart a streak on every element):
    /// detection state is only cleared when some actually accumulated.
    fn begin_streak(&mut self, line: u64, is_write: bool) {
        debug_assert!(!self.in_replay());
        self.streak = true;
        self.next_line = line;
        self.is_write = is_write;
        // Start accumulating at the next page boundary *strictly after*
        // `line`: single-line page-aligned accesses then never enter the
        // (mark + log) accumulation path, and a genuine stream only cedes
        // one page of its first window.
        self.window_base = round_up_to_page(line + 1);
        if self.filled > 0 || self.prev.is_some() || self.armed.is_some() || !self.events.is_empty()
        {
            self.filled = 0;
            self.acc = Counters::default();
            self.events.clear();
            self.prev = None;
            self.armed = None;
            self.skip_windows = 0;
            self.fail_streak = 0;
            self.last_valid_count = None;
            self.scan_skip = 0;
        }
    }

    /// Re-anchors detection at `line` (clears window accumulation and
    /// fingerprints, keeps the streak).
    fn resume_detection(&mut self, line: u64) {
        debug_assert!(!self.in_replay());
        self.window_base = round_up_to_page(line);
        self.filled = 0;
        self.acc = Counters::default();
        self.events.clear();
        self.prev = None;
        self.armed = None;
        self.skip_windows = 0;
        self.fail_streak = 0;
        self.last_valid_count = None;
        self.scan_skip = 0;
    }
}

/// Sink adapter that logs every transaction while forwarding it unchanged.
struct LoggingSink<'a, S> {
    inner: &'a mut S,
    log: &'a mut Vec<(u64, DramEventKind)>,
}

impl<S: DramSink> DramSink for LoggingSink<'_, S> {
    #[inline]
    fn event(&mut self, line_addr: u64, kind: DramEventKind) {
        self.log.push((line_addr, kind));
        self.inner.event(line_addr, kind);
    }
}

/// `cur` reproduces `prev` with every line address advanced by `shift`.
fn events_shifted_eq(
    prev: &[(u64, DramEventKind)],
    cur: &[(u64, DramEventKind)],
    shift: u64,
) -> bool {
    prev.len() == cur.len()
        && prev
            .iter()
            .zip(cur)
            .all(|(p, c)| c.0 == p.0 + shift && c.1 == p.1)
}

/// Checks that `b`'s sets hold `a`'s contents advanced uniformly by
/// `tag_shift` lines and `clock_delta` ticks.
///
/// The comparison is per *set*, with each set's valid lines canonicalized by
/// their (globally unique) LRU stamp: the physical arrangement of lines
/// across ways is unobservable — victim selection picks the unique
/// minimum-stamp line and invalid-way preference never changes an outcome —
/// so only the stamp-ordered contents participate in the steady-state
/// fingerprint. Invalid ways must match in count per set (their slots hold
/// canonical default contents).
fn line_pair_shifted(x: &CacheLine, y: &CacheLine, tag_shift: u64, clock_delta: u64) -> bool {
    y.tag == x.tag + tag_shift
        && y.stamp == x.stamp + clock_delta
        && x.dirty == y.dirty
        && x.prefetched == y.prefetched
        && x.used == y.used
}

fn cache_shifted_eq(
    a: &[CacheLine],
    b: &[CacheLine],
    ways: usize,
    tag_shift: u64,
    clock_delta: u64,
) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut va: Vec<CacheLine> = Vec::with_capacity(ways);
    let mut vb: Vec<CacheLine> = Vec::with_capacity(ways);
    'sets: for (sa, sb) in a.chunks_exact(ways).zip(b.chunks_exact(ways)) {
        // Fast path: in steady state, insertions replace the unique LRU line
        // in cyclic slot order, so consecutive window states of a fully
        // valid set differ by a pure slot rotation. Find the candidate
        // rotation from slot 0's stamp and check it linearly — no
        // allocation, no sort.
        if let Some(r) = sb
            .iter()
            .position(|y| y.valid && y.stamp == sa[0].stamp + clock_delta)
        {
            if sa.iter().all(|l| l.valid)
                && (0..ways)
                    .all(|i| line_pair_shifted(&sa[i], &sb[(r + i) % ways], tag_shift, clock_delta))
            {
                continue 'sets;
            }
        }
        // General path: canonicalize both sets by their unique stamps.
        va.clear();
        vb.clear();
        va.extend(sa.iter().filter(|l| l.valid));
        vb.extend(sb.iter().filter(|l| l.valid));
        if va.len() != vb.len() {
            return false;
        }
        va.sort_unstable_by_key(|l| l.stamp);
        vb.sort_unstable_by_key(|l| l.stamp);
        let ok = va
            .iter()
            .zip(&vb)
            .all(|(x, y)| line_pair_shifted(x, y, tag_shift, clock_delta));
        if !ok {
            return false;
        }
    }
    true
}

impl CacheSim {
    /// Verifies that the *live* cache + prefetcher state is `s1` advanced by
    /// exactly one window, returning the per-window clock deltas if so.
    /// Comparing against the live state (instead of snapshotting it first)
    /// halves the engagement cost; on success the armed snapshot itself
    /// becomes the replay base.
    fn verify_live_shift(
        &self,
        s1: &StateSnapshot,
        window_lines: u64,
        window_pages: u64,
    ) -> Option<ClockDeltas> {
        let pfl = &self.prefetcher;
        let l2 = self.l2.clock.checked_sub(s1.l2_clock)?;
        let llc = self.llc.clock.checked_sub(s1.llc_clock)?;
        let pf = pfl.clock.checked_sub(s1.pf.clock)?;
        if s1.pf.enabled != pfl.enabled() {
            return None;
        }
        if !cache_shifted_eq(&s1.l2_lines, &self.l2.lines, s1.l2_ways, window_lines, l2)
            || !cache_shifted_eq(
                &s1.llc_lines,
                &self.llc.lines,
                s1.llc_ways,
                window_lines,
                llc,
            )
        {
            return None;
        }
        // The stream table is a single LRU pool: canonicalize by stamp
        // exactly like a cache set (entry lookups match on the unique page,
        // eviction on the unique minimum stamp — slot positions are
        // unobservable).
        let mut ea: Vec<_> = s1.pf.entries.iter().filter(|e| e.valid).collect();
        let mut eb: Vec<_> = pfl.entries.iter().filter(|e| e.valid).collect();
        if ea.len() != eb.len() || s1.pf.entries.len() != pfl.entries.len() {
            return None;
        }
        ea.sort_unstable_by_key(|e| e.stamp);
        eb.sort_unstable_by_key(|e| e.stamp);
        let entries_ok = if pf == 0 {
            // No prefetcher activity at all: the stream table is untouched.
            ea == eb
        } else {
            ea.iter().zip(&eb).all(|(x, y)| {
                y.page == x.page + window_pages
                    && y.stamp == x.stamp + pf
                    && x.last_line == y.last_line
                    && x.run == y.run
            })
        };
        if !entries_ok {
            return None;
        }
        Some(ClockDeltas { l2, llc, pf })
    }
}

/// The feedback-throttle soundness gate: the window must not have produced
/// useless-prefetch feedback, and if it produced useful feedback the useless
/// counter must be zero at both boundaries (the armed snapshot and the live
/// state) so `effective_degree` is provably constant while the useful
/// counter is advanced in closed form.
fn feedback_gate(delta: &Counters, s1: &StateSnapshot, live_feedback_useless: u64) -> bool {
    delta.useless_hwpf == 0
        && (delta.pf_useful == 0 || (s1.pf.feedback_useless == 0 && live_feedback_useless == 0))
}

/// Aggregates a window's transactions per (page, kind), preserving
/// first-occurrence order so first-touch page binding happens in the exact
/// walk's order.
fn group_events(events: &[(u64, DramEventKind)], base_line: u64) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    #[allow(clippy::disallowed_types)]
    let mut index: HashMap<(u64, DramEventKind), usize> = HashMap::new();
    for &(line, kind) in events {
        let page = line / LINES_PER_PAGE;
        match index.entry((page, kind)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                groups[*e.get()].count += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push(Group {
                    rel_line: line as i64 - base_line as i64,
                    kind,
                    count: 1,
                });
            }
        }
    }
    groups
}

impl CacheSim {
    /// Leaves replay (materializing the exact state) and drops all detector
    /// state. Called whenever traffic or reconfiguration outside the batched
    /// walk invalidates the detector's view of the caches.
    pub(crate) fn replay_hard_reset(&mut self) {
        self.materialize_replay();
        self.replay.discard();
    }

    /// If replaying, rebuilds the cache and prefetcher state the exact walk
    /// would have produced: the engagement snapshot shifted forward by the
    /// number of replayed windows. A no-op in detect mode.
    fn materialize_replay(&mut self) {
        let mode = std::mem::take(&mut self.replay.mode);
        if let Mode::Replay(memo) = mode {
            let m = memo.windows_done;
            // The snapshot is the state one window *before* engagement; the
            // live caches already hold the state at engagement (snapshot + 1
            // window), so nothing needs rebuilding when no window was
            // applied.
            if m > 0 {
                let shift = m + 1;
                let tag_shift = shift * self.replay.window_lines;
                self.l2.restore_shifted(
                    &memo.snap.l2_lines,
                    memo.snap.l2_clock,
                    tag_shift,
                    shift * memo.clocks.l2,
                );
                self.llc.restore_shifted(
                    &memo.snap.llc_lines,
                    memo.snap.llc_clock,
                    tag_shift,
                    shift * memo.clocks.llc,
                );
                if memo.clocks.pf > 0 {
                    self.prefetcher.restore_shifted(
                        &memo.snap.pf,
                        shift * self.replay.window_pages,
                        shift * memo.clocks.pf,
                    );
                } else {
                    // A zero prefetcher-clock delta means the windows ran
                    // with no prefetcher activity at all (verify accepted the
                    // stream table frozen, not shifted), and replay never
                    // touches it — the live entries are already exact.
                    // Shifting them here would corrupt a stream trained
                    // before the prefetcher was disabled.
                }
                self.stream_hint = usize::MAX;
            }
        }
    }

    /// One cheap pass over both caches: how many valid lines sit at or
    /// beyond `boundary_line`, and the total valid-line population.
    fn scan_residency(&self, boundary_line: u64) -> (u64, u64) {
        let mut ahead = 0u64;
        let mut valid = 0u64;
        for l in self.l2.lines.iter() {
            valid += l.valid as u64;
            ahead += (l.valid && l.tag >= boundary_line) as u64;
        }
        for l in self.llc.lines.iter() {
            valid += l.valid as u64;
            ahead += (l.valid && l.tag >= boundary_line) as u64;
        }
        (ahead, valid)
    }

    fn take_snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            l2_lines: self.l2.lines.clone(),
            l2_ways: self.l2.way_count(),
            l2_clock: self.l2.clock,
            llc_lines: self.llc.lines.clone(),
            llc_ways: self.llc.way_count(),
            llc_clock: self.llc.clock,
            pf: self.prefetcher.snapshot(),
        }
    }

    /// Batched walk with steady-state detection and replay. Behaviourally
    /// identical to [`CacheSim::walk_lines_exact`] over the same lines.
    pub(crate) fn walk_with_replay<S: DramSink>(
        &mut self,
        first_line: u64,
        line_count: u64,
        is_write: bool,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let continues = self.replay.streak
            && self.replay.next_line == first_line
            && self.replay.is_write == is_write;
        if !continues {
            self.materialize_replay();
            self.replay.begin_streak(first_line, is_write);
            if first_line + line_count <= self.replay.window_base {
                // Scattered-traffic fast path: the whole call sits before the
                // accumulation boundary (single-line gathers, wide strides),
                // so no detection bookkeeping is needed beyond the streak
                // anchor just recorded.
                self.walk_lines_exact(first_line, line_count, is_write, counters, sink);
                self.replay.next_line = first_line + line_count;
                return;
            }
        }

        let wl = self.replay.window_lines;
        let mut line = first_line;
        let mut remaining = line_count;
        while remaining > 0 {
            if self.replay.in_replay() {
                if remaining >= wl {
                    debug_assert_eq!(line % LINES_PER_PAGE, 0);
                    self.apply_replay_window(counters, sink);
                    line += wl;
                    remaining -= wl;
                    continue;
                }
                // Tail shorter than a window: resume the exact walk from the
                // materialized state.
                self.materialize_replay();
                self.replay.resume_detection(line);
            }

            if line < self.replay.window_base {
                // Unaligned streak prefix: walk exactly, unlogged, up to the
                // first page boundary.
                let seg = remaining.min(self.replay.window_base - line);
                self.walk_lines_exact(line, seg, is_write, counters, sink);
                line += seg;
                remaining -= seg;
                continue;
            }

            debug_assert_eq!(line, self.replay.window_base + self.replay.filled);
            let seg = remaining.min(wl - self.replay.filled);
            let mut log = std::mem::take(&mut self.replay.events);
            let before = *counters;
            {
                let mut logging = LoggingSink {
                    inner: sink,
                    log: &mut log,
                };
                self.walk_lines_exact(line, seg, is_write, counters, &mut logging);
            }
            self.replay.events = log;
            let delta = counters.delta_from(&before);
            self.replay.acc.add(&delta);
            self.replay.filled += seg;
            line += seg;
            remaining -= seg;
            if self.replay.filled == wl {
                self.complete_window();
            }
        }
        self.replay.next_line = line;
    }

    /// Finishes the accumulating window: fingerprint it, compare against the
    /// previous window, and arm / confirm / engage as appropriate.
    fn complete_window(&mut self) {
        let wl = self.replay.window_lines;
        let confirm_base = self.replay.window_base;
        let delta = std::mem::take(&mut self.replay.acc);
        let events = std::mem::take(&mut self.replay.events);

        let matches_prev = self
            .replay
            .prev
            .as_ref()
            .is_some_and(|p| p.delta == delta && events_shifted_eq(&p.events, &events, wl));

        if matches_prev {
            if let Some(prev_snap) = self.replay.armed.take() {
                let clocks = if feedback_gate(&delta, &prev_snap, self.prefetcher.feedback_useless)
                {
                    self.verify_live_shift(&prev_snap, wl, self.replay.window_pages)
                } else {
                    None
                };
                if let Some(clocks) = clocks {
                    self.replay.mode = Mode::Replay(Box::new(Memo {
                        groups: group_events(&events, confirm_base),
                        pf_useful_per_window: delta.pf_useful,
                        delta,
                        snap: *prev_snap,
                        clocks,
                        base_line: confirm_base,
                        windows_done: 0,
                    }));
                } else {
                    // Deltas repeat but the state is not uniformly shifted
                    // (or the feedback gate failed): back off before paying
                    // for the next snapshot.
                    self.replay.fail_streak = self.replay.fail_streak.saturating_add(1);
                    self.replay.skip_windows =
                        (1u32 << self.replay.fail_streak.min(4)).min(MAX_BACKOFF);
                }
            } else if self.replay.skip_windows > 0 {
                self.replay.skip_windows -= 1;
            } else if self.replay.scan_skip > 0 {
                self.replay.scan_skip -= 1;
            } else if !events.is_empty() {
                // Only pay for a snapshot when it could possibly verify:
                // * a window without DRAM transactions filled no lines, so
                //   resident tags cannot have shifted by a window (checked
                //   above);
                // * a resident line *ahead* of the stream (the prefetcher
                //   never crosses the page boundary at the window end, so
                //   nothing legitimate is ahead) is leftover foreign state
                //   that must wash out first;
                // * a changing valid-line population means the caches are
                //   still filling.
                // These cheap scans keep engagement prompt right after a
                // warm-up transient instead of backoff-delayed; when foreign
                // lines are found ahead, the next scans are skipped for
                // about the windows it takes this window's fill rate to
                // evict them (foreign lines are older than every stream
                // line, so they are preferred victims).
                let boundary = confirm_base + wl;
                let (ahead, valid_count) = self.scan_residency(boundary);
                let stable = self.replay.last_valid_count == Some(valid_count);
                self.replay.last_valid_count = Some(valid_count);
                if ahead > 0 {
                    let fills = events
                        .iter()
                        .filter(|(_, k)| *k != DramEventKind::Writeback)
                        .count() as u64;
                    self.replay.scan_skip =
                        ((ahead / fills.max(1)).saturating_sub(1) as u32).clamp(1, 64);
                } else if stable {
                    self.replay.armed = Some(Box::new(self.take_snapshot()));
                }
            }
        } else {
            self.replay.armed = None;
            self.replay.fail_streak = 0;
            self.replay.skip_windows = 0;
            self.replay.last_valid_count = None;
        }

        // Recycle the previous window's event buffer for the next window.
        let recycled = self.replay.prev.take().map(|p| {
            let mut v = p.events;
            v.clear();
            v
        });
        self.replay.prev = Some(WindowPrint { delta, events });
        self.replay.events = recycled.unwrap_or_default();
        self.replay.window_base = confirm_base + wl;
        self.replay.filled = 0;
    }

    /// Applies one memoized window in closed form: counter delta, bulk DRAM
    /// transactions (page-granular, first-occurrence order) and the
    /// closed-form prefetcher feedback advance.
    fn apply_replay_window<S: DramSink>(&mut self, counters: &mut Counters, sink: &mut S) {
        let Mode::Replay(memo) = &mut self.replay.mode else {
            unreachable!("apply_replay_window outside replay mode");
        };
        counters.add(&memo.delta);
        let base = memo.base_line as i64
            + (memo.windows_done as i64 + 1) * self.replay.window_lines as i64;
        for g in &memo.groups {
            sink.bulk_event((base + g.rel_line) as u64, g.kind, g.count);
        }
        memo.windows_done += 1;
        let useful = memo.pf_useful_per_window;
        self.replay.windows_replayed_total += 1;
        self.prefetcher.advance_useful(useful);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_geometry() {
        // 512 L2 sets (color 8), 2048 LLC sets (color 32) → 32 pages.
        let e = ReplayEngine::new(512, 2048);
        assert_eq!(e.window_pages, 32);
        assert_eq!(e.window_lines, 32 * 64);
        assert!(e.enabled);
        // Tiny test geometry: 32 sets (color 1), 128 sets (color 2) → 2.
        let e = ReplayEngine::new(32, 128);
        assert_eq!(e.window_pages, 2);
        // Full Skylake: 1024 sets (color 16), 16384 sets (color 256) → 256.
        let e = ReplayEngine::new(1024, 16384);
        assert_eq!(e.window_pages, 256);
        // Absurd geometry disables the engine.
        let e = ReplayEngine::new(1 << 21, 1 << 22);
        assert!(!e.enabled);
        let mut e2 = e;
        e2.set_enabled(true);
        assert!(!e2.enabled, "geometry gate must stick");
    }

    #[test]
    fn event_shift_comparison() {
        let a = vec![
            (100u64, DramEventKind::DemandFill),
            (40, DramEventKind::Writeback),
        ];
        let b = vec![
            (612u64, DramEventKind::DemandFill),
            (552, DramEventKind::Writeback),
        ];
        assert!(events_shifted_eq(&a, &b, 512));
        assert!(!events_shifted_eq(&a, &b, 256));
        assert!(!events_shifted_eq(&a, &b[..1], 512));
    }

    #[test]
    fn group_events_aggregates_per_page_in_order() {
        let base = 640; // line index, page 10
        let events = vec![
            (640u64, DramEventKind::DemandFill),
            (641, DramEventKind::PrefetchFill),
            (642, DramEventKind::PrefetchFill),
            (100, DramEventKind::Writeback), // lag page behind the stream
            (704, DramEventKind::DemandFill),
        ];
        let groups = group_events(&events, base);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].rel_line, 0);
        assert_eq!(groups[0].count, 1);
        assert_eq!(groups[1].count, 2);
        assert_eq!(groups[2].rel_line, 100 - 640);
        assert_eq!(groups[3].rel_line, 64);
    }
}
