//! Steady-state replay engine for the batched line walk.
//!
//! The batched pipeline of [`CacheSim::demand_access_range`] still pays a set
//! scan and a prefetcher update for every simulated cache line. On the
//! campaign-scale workloads of the paper's scaling and interference studies
//! the traffic is overwhelmingly *periodic* — the same sweep over the same
//! address range, repeated — and the cache reaches recurring states whose
//! evolution can be memoized and applied in closed form. This module detects
//! three escalating flavours of that periodicity:
//!
//! 1. **Window replay** (the base detector): within one long contiguous
//!    streak, every window of `W` pages produces the same counter delta, DRAM
//!    transactions and state advance as the window before it, shifted forward
//!    by `W` pages. Proven-periodic windows are replayed in closed form.
//! 2. **Pass-level periodicity**: when the *same whole call* (first line,
//!    length, kind) repeats back-to-back — a workload making repeated passes
//!    over one buffer — the engine fingerprints an entire pass and verifies
//!    that the pass-boundary state recurs under a *zero* tag shift and a
//!    uniform clock shift. Engaged passes are replayed as one counter delta
//!    plus page-granular bulk DRAM events, transient windows included, which
//!    removes the per-pass LLC-turnover transient that caps window replay.
//! 3. **Stride-aware streaks**: constant-stride element sequences (the
//!    `strided_batch` shape: small same-length calls advancing by a fixed
//!    gap) are tracked as a sequence; when the sequence wraps back to its
//!    first element — a repeated strided *pass* — one whole pass is
//!    fingerprinted per element and verified exactly like a contiguous pass
//!    (zero tag shift, uniform clock shift, dormant lines allowed). A strided
//!    sweep never evicts foreign lines from the sets its stride skips, so it
//!    is generally *not* window-shift-periodic after a warm-up — but it is
//!    pass-periodic almost immediately, which is what gets verified.
//!
//! The load-bearing contracts this engine must uphold — bit-identity with
//! the per-line and batched pipelines, and the interaction rules with the
//! dynamic-tiering subsystem (epochs only at chunk closes, applied migrations
//! hard-reset *all* replay state, window, pass and strided alike) — are
//! spelled out in `docs/ARCHITECTURE.md` at the repository root;
//! `tests/properties.rs` enforces them.
//!
//! # Windows, not single pages
//!
//! Consecutive pages map to *different* cache sets: with `S` sets and 64
//! lines per page, the set pattern repeats every `S / gcd(S, 64)` pages (the
//! page "color" period). The replay unit is therefore a **window** of
//! `W = lcm(color(L2), color(LLC))` pages: shifting a window by `W` pages
//! maps every line back to the same set, which is what makes the steady
//! state checkable by shifted equality. Within a set (and within the
//! prefetcher's stream table) the *physical arrangement* of lines across
//! ways is canonicalized away before comparison: timestamps are globally
//! unique per structure, so LRU victim selection never tie-breaks on the
//! way index and the arrangement is unobservable — only the stamp-ordered
//! contents matter.
//!
//! # Detection: fingerprint two consecutive periods
//!
//! While a period (window, pass or strided window) is walked exactly, the
//! engine accumulates its fingerprint:
//!
//! * the [`Counters`] delta produced by the period,
//! * the ordered list of DRAM transactions (line address, kind), and
//! * — once consecutive fingerprints match — a full snapshot of the L2, LLC
//!   and prefetcher state at the period boundary.
//!
//! Replay engages when period `n+1` reproduces period `n` exactly under a
//! uniform shift: equal counter deltas, transaction lists equal with every
//! line address advanced by the period length (zero for passes, which revisit
//! the same range), and the post-period cache/prefetcher snapshots equal with
//! every valid tag advanced by the period length and every timestamp advanced
//! by the period's clock delta. That last check is the soundness core: the
//! walk is a deterministic function of the cache state, the prefetcher state
//! and the (shifted) addresses, and all of its index arithmetic is congruent
//! under the shift — so if the state after period `n+1` is the state after
//! period `n` shifted by one period, then by induction every following period
//! behaves identically-shifted until an invariant breaks. Foreign resident
//! lines, partially-warm caches, aliasing hot lines and mid-stream
//! perturbations all surface as a snapshot or delta mismatch and simply keep
//! the engine in the exact walk. For passes the recurrence argument is even
//! stronger: the *addresses* are identical between passes, so a recurring
//! boundary state alone proves the next pass identical — the logged pass
//! fingerprint *is* the memo, no second fingerprint comparison is needed.
//!
//! The prefetcher's accuracy-feedback counters are deliberately excluded
//! from the snapshot comparison (they grow monotonically even in steady
//! state) and handled separately: replay requires that the period produced
//! no useless-prefetch feedback and that — if useful feedback occurs — the
//! useless counter is zero at both snapshot boundaries, which makes the
//! throttle decision (`effective_degree`) provably constant; the useful
//! counter itself is advanced in closed form
//! ([`crate::prefetch::StreamPrefetcher::advance_useful`]).
//!
//! # Replay and exact exit
//!
//! A replayed period costs O(distinct DRAM pages) instead of
//! O(lines × associativity). Page→tier resolution still happens per page in
//! the sink — first-touch binding, capacity spills from the local tier to
//! the pool, OOM aborts and interleaved placement all take the *same
//! decisions in the same order* as the exact walk, because the cache walk is
//! tier-blind and the bulk events preserve first-occurrence page order.
//! Strided replay applies *per element* (element counter delta, element
//! events), so the chunk-accounting checks the machine layer performs at
//! element boundaries observe bit-identical counter states.
//!
//! On any exit — the run ends mid-period, the pattern breaks, foreign
//! traffic arrives, a migration epoch applies moves, or the engine is
//! reconfigured — the cache and prefetcher state is *materialized*: rebuilt
//! from the engagement snapshot with all tags, pages and timestamps shifted
//! by the number of replayed periods (plus, for a partial strided window, an
//! exact re-walk of the already-applied elements). The workspace property
//! tests assert full `RunReport` bit-identity between replay-on, replay-off
//! and the per-line reference pipeline.

use crate::cache::{CacheLine, CacheSim, DramEventKind, DramSink};
use crate::counters::Counters;
use crate::prefetch::{PrefetcherSnapshot, StreamEntry};
use dismem_trace::{CACHE_LINE_SIZE, PAGE_SIZE};
// The grouping index is entry-only (never iterated), so arbitrary order
// cannot leak into the replayed event stream.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;

/// Cache lines per page.
const LINES_PER_PAGE: u64 = PAGE_SIZE / CACHE_LINE_SIZE;

/// Geometries whose window exceeds this many pages never reach steady state
/// within realistic runs; the engine disables itself rather than fingerprint
/// multi-MiB windows.
const MAX_WINDOW_PAGES: u64 = 1024;

/// Cap (in windows) of the exponential arming backoff after a failed
/// snapshot comparison, bounding the snapshot cost on never-periodic
/// traffic.
const MAX_BACKOFF: u32 = 16;

/// Cap (in candidate passes) of the pass-verification backoff, bounding the
/// snapshot + logging cost on identical-but-never-recurring call sequences.
const MAX_PASS_BACKOFF: u32 = 8;

/// Upper bound on elements per strided pass (fingerprint size cap): longer
/// strided loops stay on the exact walk, whose per-element tracking cost is
/// a couple of integer compares.
const MAX_STRIDE_ELEMS: u64 = 65536;

/// Consecutive stride-chain restarts (no candidate ever advancing) before
/// small-call detection goes to sleep entirely: the traffic is a scatter,
/// and even the few compares per restart are pure overhead at gather rates.
const SCATTER_BREAKS: u32 = 8;

/// First scatter sleep, in small calls. Doubles per round up to
/// [`SCATTER_MAX_SLEEP`]; detection wakes in between, so a strided loop
/// starting inside a sleep is picked up at most one sleep late (its pass
/// anchor can sit at any phase of the sequence).
const SCATTER_MIN_SLEEP: u32 = 64;

/// Scatter-sleep cap, bounding how long a fresh periodic pattern can go
/// unnoticed after aperiodic traffic.
const SCATTER_MAX_SLEEP: u32 = 4096;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

fn round_up_to_page(line: u64) -> u64 {
    line.div_ceil(LINES_PER_PAGE) * LINES_PER_PAGE
}

/// Fingerprint of one completed window: its counter delta and its ordered
/// DRAM transaction list.
#[derive(Debug, Clone)]
struct WindowPrint {
    delta: Counters,
    events: Vec<(u64, DramEventKind)>,
}

/// Frozen cache + prefetcher state at a period boundary.
#[derive(Debug, Clone)]
struct StateSnapshot {
    l2_lines: Vec<CacheLine>,
    l2_ways: usize,
    l2_clock: u64,
    llc_lines: Vec<CacheLine>,
    llc_ways: usize,
    llc_clock: u64,
    pf: PrefetcherSnapshot,
}

/// Per-period clock advances derived from two matching snapshots.
#[derive(Debug, Clone, Copy)]
struct ClockDeltas {
    l2: u64,
    llc: u64,
    pf: u64,
}

/// Which snapshot slots hold *dormant* state: lines / stream entries the
/// period's traffic provably never touched (identical tag AND timestamp at
/// both period boundaries — stamps are globally unique and monotonically
/// increasing per structure, so an unchanged stamp is proof the line was not
/// touched, not a coincidence). Dormant state stays fixed while everything
/// else shifts uniformly: this is what lets strided sweeps (which never
/// evict foreign lines from the sets their stride skips) and passes over a
/// subrange verify and replay. Empty vectors mean no dormant slots.
#[derive(Debug, Clone, Default)]
struct DormantMask {
    l2: Vec<bool>,
    llc: Vec<bool>,
    pf: Vec<bool>,
}

/// One page's worth of a window's DRAM transactions of one kind.
#[derive(Debug, Clone, Copy)]
struct Group {
    /// Line offset of the group's first transaction relative to the first
    /// line of the fingerprinted window (negative for victim writebacks that
    /// target pages behind the stream).
    rel_line: i64,
    kind: DramEventKind,
    count: u64,
}

/// Everything needed to replay windows and to materialize the exact state on
/// exit.
#[derive(Debug, Clone)]
struct Memo {
    /// Cache-side counter delta of one window.
    delta: Counters,
    /// Page-granular DRAM transactions of one window, in first-occurrence
    /// order (which preserves first-touch binding order).
    groups: Vec<Group>,
    /// State at the *start* of the confirming window (the armed snapshot):
    /// after `m` replayed windows the exact state is this snapshot shifted
    /// forward by `m + 1` windows.
    snap: StateSnapshot,
    clocks: ClockDeltas,
    dormant: DormantMask,
    /// `feedback(true)` calls per window, advanced in closed form.
    pf_useful_per_window: u64,
    /// First line of the confirming window; replayed window `k` starts at
    /// `base_line + (k + 1) * window_lines`.
    base_line: u64,
    /// Whole windows replayed so far from this memo.
    windows_done: u64,
}

/// In-flight fingerprint of one pass-sized call: the state at the call
/// boundary plus everything the call produced. Becomes the pass memo on
/// engagement.
#[derive(Debug, Clone)]
struct PassPrint {
    /// State at the start of the logged call (post-materialization).
    snap: StateSnapshot,
    /// Counter delta of the whole call.
    delta: Counters,
    /// Every DRAM transaction of the call, in order, with bulk counts.
    events: Vec<(u64, DramEventKind, u64)>,
}

/// Everything needed to replay whole passes and to materialize the exact
/// state on exit. Passes revisit the *same* range, so tags never shift —
/// only clocks advance.
#[derive(Debug, Clone)]
struct PassMemo {
    first_line: u64,
    line_count: u64,
    is_write: bool,
    /// Counter delta of one pass.
    delta: Counters,
    /// Page-granular DRAM transactions of one pass, in first-occurrence
    /// order, at their absolute line addresses (zero shift between passes).
    groups: Vec<(u64, DramEventKind, u64)>,
    /// State at the start of the fingerprinted pass: after `m` replayed
    /// passes the exact state is this snapshot with every timestamp advanced
    /// by `m + 1` passes of clock deltas (tags unshifted).
    snap: StateSnapshot,
    clocks: ClockDeltas,
    dormant: DormantMask,
    /// `feedback(true)` calls per pass, advanced in closed form.
    pf_useful: u64,
    /// Whole passes replayed so far from this memo.
    passes_done: u64,
}

/// Everything needed to replay strided passes element-by-element and to
/// materialize the exact state on exit. Strided passes revisit the *same*
/// elements, so — exactly like contiguous passes — tags never shift, only
/// clocks advance, and the logged events replay at their absolute addresses.
#[derive(Debug, Clone)]
struct StridedMemo {
    /// First line of the sequence's first element.
    base_line: u64,
    /// Lines between consecutive element starts.
    stride: u64,
    /// Lines per element.
    len: u64,
    is_write: bool,
    /// Elements per pass.
    elem_count: u64,
    /// Per-element counter deltas of the fingerprinted pass.
    elems: Vec<Counters>,
    /// `events[..ev_ends[i]]` are the transactions of elements `0..=i`.
    ev_ends: Vec<u32>,
    /// The fingerprinted pass's transactions at absolute line addresses.
    events: Vec<(u64, DramEventKind)>,
    /// State at the start of the fingerprinted pass: after `m` fully
    /// replayed passes the exact pass-boundary state is this snapshot with
    /// every timestamp advanced by `m + 1` passes of clock deltas (tags
    /// unshifted).
    snap: StateSnapshot,
    clocks: ClockDeltas,
    dormant: DormantMask,
    /// Whole strided passes replayed so far.
    passes_done: u64,
    /// Elements of the current (partial) pass already applied.
    elem_idx: u64,
}

impl StridedMemo {
    /// First line of the next element the engaged sequence expects.
    fn expected_first(&self) -> u64 {
        self.base_line + self.elem_idx * self.stride
    }
}

#[derive(Debug, Clone, Default)]
enum Mode {
    #[default]
    Detect,
    Replay(Box<Memo>),
    Pass(Box<PassMemo>),
    Strided(Box<StridedMemo>),
}

/// What a streak restart decided about stride tracking.
enum StrideAction {
    /// The call is the next element of an active strided sequence.
    Element,
    /// The call wraps back to the sequence's first element: a strided pass
    /// boundary (the call itself is element 0 of the new pass).
    PassStart,
    /// Walk normally.
    Walk,
}

/// What a streak restart decided about pass tracking.
enum PassAction {
    /// Pass replay just engaged; apply the call in closed form.
    Engaged,
    /// Log this call as a pass fingerprint.
    Log,
    /// Walk normally.
    Walk,
}

/// Which closed-form escalation level a recorded transition refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayLevel {
    /// Closed-form page-window replay.
    Window,
    /// Whole-pass replay.
    Pass,
    /// Stride-aware element-sequence replay.
    Strided,
}

/// One engage/exit transition recorded for the flight recorder. Collected
/// inside the walk (where no simulated clock is in scope) and drained by
/// [`crate::Machine`] at the next chunk close, which stamps them with the
/// application-line clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayTransition {
    /// A closed form engaged at this level.
    Engaged(ReplayLevel),
    /// A closed form at this level exited, with the reason
    /// (`pattern-break`, `hard-reset` or `cache-reset`).
    Exited(ReplayLevel, &'static str),
}

impl Mode {
    /// The escalation level of a non-detect mode.
    fn level(&self) -> Option<ReplayLevel> {
        match self {
            Mode::Detect => None,
            Mode::Replay(_) => Some(ReplayLevel::Window),
            Mode::Pass(_) => Some(ReplayLevel::Pass),
            Mode::Strided(_) => Some(ReplayLevel::Strided),
        }
    }
}

/// Detector + memo state machine owned by [`CacheSim`].
#[derive(Debug, Clone)]
pub(crate) struct ReplayEngine {
    /// Master switch ([`CacheSim::set_replay_enabled`]).
    pub(crate) enabled: bool,
    /// Whether the cache geometry admits a tractable window at all.
    geometry_ok: bool,
    /// Pages per window.
    pub(crate) window_pages: u64,
    /// Lines per window.
    pub(crate) window_lines: u64,
    /// Lifetime count of replayed windows, contiguous and strided
    /// (observability / tests).
    pub(crate) windows_replayed_total: u64,
    /// Lifetime count of replayed whole passes (observability / tests).
    pub(crate) passes_replayed_total: u64,
    /// Lifetime count of strided elements applied in closed form
    /// (observability / tests).
    pub(crate) stride_elems_replayed_total: u64,

    /// Whether a contiguous streak is currently tracked.
    streak: bool,
    next_line: u64,
    is_write: bool,
    /// First line of the window being accumulated.
    window_base: u64,
    /// Whether any window-detection state has accumulated; a single-flag
    /// guard so scattered-traffic restarts skip the multi-field clear.
    det_live: bool,
    /// Lines of the current window already walked.
    filled: u64,
    /// Counter delta accumulated over the current window.
    acc: Counters,
    /// DRAM transactions logged over the current window.
    events: Vec<(u64, DramEventKind)>,
    /// Fingerprint of the last completed window.
    prev: Option<WindowPrint>,
    /// Snapshot taken at the end of the last completed window or strided
    /// window (armed for a shift comparison at the end of the next one).
    armed: Option<Box<StateSnapshot>>,
    /// Windows to skip before arming again (backoff countdown).
    skip_windows: u32,
    /// Consecutive failed snapshot comparisons (drives the backoff).
    fail_streak: u32,
    /// Valid-line population (L2 + LLC) observed at the last completed
    /// window; arming waits until it is stable (a filling cache cannot be in
    /// steady state).
    last_valid_count: Option<u64>,
    /// Windows to skip before scanning residency again (set from how far
    /// ahead of the stream the furthest foreign line sits, so warm-up
    /// transients are not scanned every window).
    scan_skip: u32,

    /// The (first_line, line_count, is_write) triple of the last pass-sized
    /// call, for back-to-back pass detection.
    last_call: Option<(u64, u64, bool)>,
    /// In-flight pass fingerprint (logged over one whole call).
    pass_print: Option<Box<PassPrint>>,
    /// Matching pass-sized calls to skip before logging again (backoff).
    pass_skip: u32,
    /// Consecutive failed pass verifications (drives the backoff).
    pass_fail: u32,

    /// Whether a strided element sequence is actively being tracked.
    s_active: bool,
    /// Candidate-chain length (0 = no candidate, 1 = anchor recorded,
    /// 2+ = stride established).
    s_count: u32,
    /// The established candidate chain failed the activation gates; stop
    /// retrying until the chain breaks.
    s_hopeless: bool,
    /// First line of the last element of the chain.
    s_last_first: u64,
    /// Lines between consecutive element starts.
    s_stride: u64,
    /// Lines per element.
    s_len: u64,
    s_write: bool,
    /// First line of the sequence's first element (pass anchor).
    s_seq_first: u64,
    /// Elements seen in the current pass so far.
    s_seen: u64,
    /// Element count of the previous completed pass (the pass chain).
    s_pass_elems: Option<u64>,
    /// Whether the current pass is being fingerprint-logged.
    s_logging: bool,
    /// Consecutive failed strided pass verifications (drives the backoff).
    s_fail: u32,
    /// Matching pass boundaries to skip before logging again (backoff).
    s_skip: u32,
    /// Per-element counter deltas of the pass being logged.
    s_elems: Vec<Counters>,
    /// Per-element event boundaries into `s_events`.
    s_ev_ends: Vec<u32>,
    /// DRAM transactions logged over the pass being logged.
    s_events: Vec<(u64, DramEventKind)>,
    /// Whole-pass counter delta (for the feedback gate).
    s_acc: Counters,

    /// Consecutive stride-candidate chain restarts with no chain progress
    /// (drives the scatter-sleep backoff).
    s_breaks: u32,
    /// Small calls left to walk with no detection bookkeeping at all
    /// (scatter sleep: the traffic has proven aperiodic for now).
    scatter_sleep: u32,
    /// Length of the next scatter sleep (doubles up to the cap).
    scatter_len: u32,

    /// Whether engage/exit transitions are recorded for the flight recorder
    /// ([`CacheSim::set_replay_trace`]). Off by default: with tracing off the
    /// engine allocates and records nothing.
    trace: bool,
    /// Transitions recorded since the last drain (chunk close).
    transitions: Vec<ReplayTransition>,

    mode: Mode,
}

impl ReplayEngine {
    pub(crate) fn new(l2_sets: u64, llc_sets: u64) -> Self {
        let color = |sets: u64| sets / gcd(sets, LINES_PER_PAGE);
        let window_pages = lcm(color(l2_sets.max(1)), color(llc_sets.max(1)));
        let geometry_ok = window_pages <= MAX_WINDOW_PAGES;
        Self {
            enabled: geometry_ok,
            geometry_ok,
            window_pages,
            window_lines: window_pages * LINES_PER_PAGE,
            windows_replayed_total: 0,
            passes_replayed_total: 0,
            stride_elems_replayed_total: 0,
            streak: false,
            next_line: 0,
            is_write: false,
            window_base: 0,
            det_live: false,
            filled: 0,
            acc: Counters::default(),
            events: Vec::new(),
            prev: None,
            armed: None,
            skip_windows: 0,
            fail_streak: 0,
            last_valid_count: None,
            scan_skip: 0,
            last_call: None,
            pass_print: None,
            pass_skip: 0,
            pass_fail: 0,
            s_active: false,
            s_count: 0,
            s_hopeless: false,
            s_last_first: 0,
            s_stride: 0,
            s_len: 0,
            s_write: false,
            s_seq_first: 0,
            s_seen: 0,
            s_pass_elems: None,
            s_logging: false,
            s_fail: 0,
            s_skip: 0,
            s_elems: Vec::new(),
            s_ev_ends: Vec::new(),
            s_events: Vec::new(),
            s_acc: Counters::default(),
            s_breaks: 0,
            scatter_sleep: 0,
            scatter_len: 0,
            trace: false,
            transitions: Vec::new(),
            mode: Mode::Detect,
        }
    }

    /// Records one transition when tracing is on (a no-op — not even a
    /// branch misprediction worth of work — when off).
    #[inline]
    fn note_transition(&mut self, transition: ReplayTransition) {
        if self.trace {
            self.transitions.push(transition);
        }
    }

    /// Applies the master switch, respecting the geometry gate.
    pub(crate) fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled && self.geometry_ok;
    }

    /// Whether any streak / detection / replay state is live. Engaged pass
    /// and strided modes run with `streak == false`, so they (and an
    /// in-flight pass fingerprint or strided accumulation) must be covered
    /// explicitly — foreign traffic has to force a hard reset through them.
    pub(crate) fn is_active(&self) -> bool {
        self.streak
            || self.s_active
            || self.pass_print.is_some()
            || !matches!(self.mode, Mode::Detect)
    }

    fn in_replay(&self) -> bool {
        matches!(self.mode, Mode::Replay(_))
    }

    /// Whether the incoming call is the exact repeat an engaged pass or
    /// strided memo expects.
    fn closed_form_matches(&self, first: u64, count: u64, write: bool) -> bool {
        match &self.mode {
            Mode::Pass(m) => m.first_line == first && m.line_count == count && m.is_write == write,
            Mode::Strided(m) => {
                m.expected_first() == first && m.len == count && m.is_write == write
            }
            _ => false,
        }
    }

    /// Drops all state without materializing. Only valid when the caches are
    /// being reset, or right after [`CacheSim::materialize_replay`].
    pub(crate) fn discard(&mut self) {
        debug_assert!(matches!(self.mode, Mode::Detect));
        self.streak = false;
        self.det_live = true;
        self.clear_window_detection();
        self.pass_chain_clear();
        self.s_active = true;
        self.strided_clear();
        self.s_breaks = 0;
        self.scatter_sleep = 0;
        self.scatter_len = 0;
        self.mode = Mode::Detect;
    }

    /// Forced variant of [`ReplayEngine::discard`] for cache resets, where
    /// the state replay would materialize is itself being thrown away.
    pub(crate) fn discard_for_reset(&mut self) {
        if let Some(level) = self.mode.level() {
            self.note_transition(ReplayTransition::Exited(level, "cache-reset"));
        }
        self.mode = Mode::Detect;
        self.discard();
    }

    /// Clears window-accumulation and fingerprint state (guarded by the
    /// `det_live` flag so idle restarts pay one branch).
    fn clear_window_detection(&mut self) {
        if self.det_live {
            self.det_live = false;
            self.filled = 0;
            self.acc = Counters::default();
            self.events.clear();
            self.prev = None;
            self.armed = None;
            self.skip_windows = 0;
            self.fail_streak = 0;
            self.last_valid_count = None;
            self.scan_skip = 0;
        }
    }

    /// Drops the back-to-back pass chain (a non-matching call restarts it).
    fn pass_chain_clear(&mut self) {
        self.last_call = None;
        self.pass_print = None;
        self.pass_skip = 0;
        self.pass_fail = 0;
    }

    /// Drops strided candidate, pass-chain and fingerprint state, including
    /// the armed snapshot strided logging borrows from the window detector.
    fn strided_clear(&mut self) {
        if self.s_active || self.s_count > 0 {
            self.s_active = false;
            self.s_count = 0;
            self.s_hopeless = false;
            self.s_seen = 0;
            self.s_pass_elems = None;
            self.s_logging = false;
            self.s_fail = 0;
            self.s_skip = 0;
            self.s_elems.clear();
            self.s_ev_ends.clear();
            self.s_events.clear();
            self.s_acc = Counters::default();
            self.armed = None;
        }
    }

    /// Starts tracking a fresh streak at `line`. Kept cheap for scattered
    /// traffic (gathers and wide strides restart a streak on every element):
    /// detection state is only cleared when some actually accumulated.
    #[inline]
    fn begin_streak(&mut self, line: u64, is_write: bool) {
        debug_assert!(matches!(self.mode, Mode::Detect));
        self.streak = true;
        self.next_line = line;
        self.is_write = is_write;
        // Start accumulating at the next page boundary *strictly after*
        // `line`: single-line page-aligned accesses then never enter the
        // (mark + log) accumulation path, and a genuine stream only cedes
        // one page of its first window.
        self.window_base = round_up_to_page(line + 1);
        self.clear_window_detection();
    }

    /// Re-anchors detection at `line` (clears window accumulation and
    /// fingerprints, keeps the streak).
    fn resume_detection(&mut self, line: u64) {
        debug_assert!(matches!(self.mode, Mode::Detect));
        self.window_base = round_up_to_page(line);
        self.det_live = false;
        self.filled = 0;
        self.acc = Counters::default();
        self.events.clear();
        self.prev = None;
        self.armed = None;
        self.skip_windows = 0;
        self.fail_streak = 0;
        self.last_valid_count = None;
        self.scan_skip = 0;
    }

    /// Updates stride tracking at a streak restart: continues an active
    /// element sequence, detects a wrap back to the sequence start (a pass
    /// boundary), advances the candidate chain, or restarts it.
    #[inline]
    fn stride_restart(&mut self, first: u64, count: u64, write: bool) -> StrideAction {
        if self.s_active {
            if first == self.s_last_first + self.s_stride
                && count == self.s_len
                && write == self.s_write
            {
                self.s_breaks = 0;
                return StrideAction::Element;
            }
            if first == self.s_seq_first
                && count == self.s_len
                && write == self.s_write
                && self.s_seen >= 3
            {
                return StrideAction::PassStart;
            }
            self.strided_clear();
        } else if self.s_count > 0
            && count == self.s_len
            && write == self.s_write
            && first > self.s_last_first
        {
            let gap = first - self.s_last_first;
            if self.s_count == 1 {
                self.s_stride = gap;
                self.s_count = 2;
                self.s_last_first = first;
                return StrideAction::Walk;
            }
            if gap == self.s_stride {
                self.s_last_first = first;
                self.s_breaks = 0;
                if !self.s_hopeless {
                    if self.try_activate_stride(first) {
                        return StrideAction::Element;
                    }
                    // The gate depends only on (stride, len): once failed,
                    // this chain can never activate.
                    self.s_hopeless = true;
                }
                return StrideAction::Walk;
            }
        }
        // Chain broken (or first small call): restart the candidate here.
        self.s_breaks += 1;
        self.s_count = 1;
        self.s_hopeless = false;
        self.s_last_first = first;
        self.s_len = count;
        self.s_write = write;
        StrideAction::Walk
    }

    /// Third consistent strided call: start tracking the sequence if the
    /// shape is tractable. Tracking is free of fingerprint cost — elements
    /// are only logged once a pass boundary (the sequence wrapping back to
    /// its first element) establishes the pass length.
    fn try_activate_stride(&mut self, first: u64) -> bool {
        if self.s_len >= self.s_stride {
            // Abutting or overlapping elements are a contiguous stream in
            // disguise; leave them to the window detector.
            return false;
        }
        // The sequence owns detection; window residue from the candidate
        // calls is dropped, and no contiguous streak may continue underneath
        // the element sequence.
        self.clear_window_detection();
        self.streak = false;
        self.s_active = true;
        // The candidate chain consumed two elements before this one.
        self.s_seq_first = first - 2 * self.s_stride;
        self.s_seen = 2;
        self.s_pass_elems = None;
        self.s_logging = false;
        self.s_fail = 0;
        self.s_skip = 0;
        true
    }
}

/// Sink adapter that logs every transaction while forwarding it unchanged.
struct LoggingSink<'a, S> {
    inner: &'a mut S,
    log: &'a mut Vec<(u64, DramEventKind)>,
}

impl<S: DramSink> DramSink for LoggingSink<'_, S> {
    #[inline]
    fn event(&mut self, line_addr: u64, kind: DramEventKind) {
        self.log.push((line_addr, kind));
        self.inner.event(line_addr, kind);
    }
}

/// Sink adapter that logs every transaction — bulk replay events included —
/// while forwarding it unchanged. Wraps a whole pass-sized call, inside
/// which the window engine may itself replay (bulk events).
struct PassLoggingSink<'a, S> {
    inner: &'a mut S,
    log: &'a mut Vec<(u64, DramEventKind, u64)>,
}

impl<S: DramSink> DramSink for PassLoggingSink<'_, S> {
    #[inline]
    fn event(&mut self, line_addr: u64, kind: DramEventKind) {
        self.log.push((line_addr, kind, 1));
        self.inner.event(line_addr, kind);
    }
    #[inline]
    fn bulk_event(&mut self, line_addr: u64, kind: DramEventKind, count: u64) {
        self.log.push((line_addr, kind, count));
        self.inner.bulk_event(line_addr, kind, count);
    }
}

/// Sink that drops every transaction: used when re-walking already-applied
/// strided elements purely to rebuild cache/prefetcher state (their counter
/// and DRAM effects were applied in closed form).
struct DevNullSink;

impl DramSink for DevNullSink {
    #[inline]
    fn event(&mut self, _line_addr: u64, _kind: DramEventKind) {}
}

/// `cur` reproduces `prev` with every line address advanced by `shift`.
fn events_shifted_eq(
    prev: &[(u64, DramEventKind)],
    cur: &[(u64, DramEventKind)],
    shift: u64,
) -> bool {
    prev.len() == cur.len()
        && prev
            .iter()
            .zip(cur)
            .all(|(p, c)| c.0 == p.0 + shift && c.1 == p.1)
}

/// Checks that `b`'s sets hold `a`'s contents advanced uniformly by
/// `tag_shift` lines and `clock_delta` ticks.
///
/// The comparison is per *set*, with each set's valid lines canonicalized by
/// their (globally unique) LRU stamp: the physical arrangement of lines
/// across ways is unobservable — victim selection picks the unique
/// minimum-stamp line and invalid-way preference never changes an outcome —
/// so only the stamp-ordered contents participate in the steady-state
/// fingerprint. Invalid ways must match in count per set (their slots hold
/// canonical default contents).
fn line_pair_shifted(x: &CacheLine, y: &CacheLine, tag_shift: u64, clock_delta: u64) -> bool {
    y.tag == x.tag + tag_shift
        && y.stamp == x.stamp + clock_delta
        && x.dirty == y.dirty
        && x.prefetched == y.prefetched
        && x.used == y.used
}

fn cache_shifted_eq(
    a: &[CacheLine],
    b: &[CacheLine],
    ways: usize,
    tag_shift: u64,
    clock_delta: u64,
    mask: &mut Vec<bool>,
) -> bool {
    debug_assert_eq!(a.len(), b.len());
    mask.clear();
    mask.resize(a.len(), false);
    let mut any_dormant = false;
    let mut va: Vec<(usize, CacheLine)> = Vec::with_capacity(ways);
    let mut vb: Vec<CacheLine> = Vec::with_capacity(ways);
    'sets: for (set_idx, (sa, sb)) in a.chunks_exact(ways).zip(b.chunks_exact(ways)).enumerate() {
        // Fast path: in steady state, insertions replace the unique LRU line
        // in cyclic slot order, so consecutive window states of a fully
        // valid set differ by a pure slot rotation. Find the candidate
        // rotation from slot 0's stamp and check it linearly — no
        // allocation, no sort.
        if let Some(r) = sb
            .iter()
            .position(|y| y.valid && y.stamp == sa[0].stamp + clock_delta)
        {
            if sa.iter().all(|l| l.valid)
                && (0..ways)
                    .all(|i| line_pair_shifted(&sa[i], &sb[(r + i) % ways], tag_shift, clock_delta))
            {
                continue 'sets;
            }
        }
        // General path: pair off dormant lines first — stamps are globally
        // unique and monotonically increasing, so a live line identical to a
        // snapshot line (same tag AND same stamp) can only be the same
        // physical line untouched across the whole period, never a
        // reinserted coincidence.
        va.clear();
        vb.clear();
        for (i, l) in sa.iter().enumerate() {
            if l.valid {
                va.push((set_idx * ways + i, *l));
            }
        }
        vb.extend(sb.iter().filter(|l| l.valid));
        if va.len() != vb.len() {
            return false;
        }
        // Prefer the pure uniform-shift interpretation: a steady-state
        // stream set (insert one line, evict the oldest, middle lines
        // untouched) is *also* explainable as everything-dormant-plus-two-
        // survivors, but those survivors are generations apart and fail the
        // shift check. Both interpretations restore the identical set, so
        // when the whole set matches as a shift no dormant marks are needed.
        va.sort_unstable_by_key(|(_, l)| l.stamp);
        vb.sort_unstable_by_key(|l| l.stamp);
        if va
            .iter()
            .zip(&vb)
            .all(|((_, x), y)| line_pair_shifted(x, y, tag_shift, clock_delta))
        {
            continue 'sets;
        }
        let mut k = 0;
        while k < va.len() {
            if let Some(j) = vb.iter().position(|y| *y == va[k].1) {
                mask[va[k].0] = true;
                any_dormant = true;
                vb.swap_remove(j);
                va.swap_remove(k);
            } else {
                k += 1;
            }
        }
        // Every remaining line must be uniformly shifted; canonicalize the
        // survivors by stamp (the physical arrangement is unobservable).
        va.sort_unstable_by_key(|(_, l)| l.stamp);
        vb.sort_unstable_by_key(|l| l.stamp);
        let ok = va
            .iter()
            .zip(&vb)
            .all(|((_, x), y)| line_pair_shifted(x, y, tag_shift, clock_delta));
        if !ok {
            return false;
        }
    }
    if !any_dormant {
        mask.clear();
    }
    true
}

impl CacheSim {
    /// Verifies that the *live* cache + prefetcher state is `s1` advanced by
    /// exactly one period, returning the per-period clock deltas if so.
    /// `window_lines`/`window_pages` are the period's uniform address shift —
    /// zero for pass-level periodicity, where the same range is revisited.
    /// Comparing against the live state (instead of snapshotting it first)
    /// halves the engagement cost; on success the armed snapshot itself
    /// becomes the replay base.
    fn verify_live_shift(
        &self,
        s1: &StateSnapshot,
        window_lines: u64,
        window_pages: u64,
    ) -> Option<(ClockDeltas, DormantMask)> {
        let pfl = &self.prefetcher;
        let l2 = self.l2.clock.checked_sub(s1.l2_clock)?;
        let llc = self.llc.clock.checked_sub(s1.llc_clock)?;
        let pf = pfl.clock.checked_sub(s1.pf.clock)?;
        if s1.pf.enabled != pfl.enabled() {
            return None;
        }
        let mut mask = DormantMask::default();
        if !cache_shifted_eq(
            &s1.l2_lines,
            &self.l2.lines,
            s1.l2_ways,
            window_lines,
            l2,
            &mut mask.l2,
        ) {
            return None;
        }
        if !cache_shifted_eq(
            &s1.llc_lines,
            &self.llc.lines,
            s1.llc_ways,
            window_lines,
            llc,
            &mut mask.llc,
        ) {
            return None;
        }
        // The stream table is a single LRU pool: canonicalize by stamp
        // exactly like a cache set (entry lookups match on the unique page,
        // eviction on the unique minimum stamp — slot positions are
        // unobservable), with the same dormant-first pairing as the caches.
        if s1.pf.entries.len() != pfl.entries.len() {
            return None;
        }
        let mut ea: Vec<(usize, StreamEntry)> = s1
            .pf
            .entries
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, e)| e.valid)
            .collect();
        let mut eb: Vec<StreamEntry> = pfl.entries.iter().copied().filter(|e| e.valid).collect();
        if ea.len() != eb.len() {
            return None;
        }
        let entries_ok = if pf == 0 {
            // No prefetcher activity at all: the stream table is untouched
            // (and never restored during replay — see the `clocks.pf > 0`
            // guards — so no dormant bookkeeping is needed).
            ea.sort_unstable_by_key(|(_, e)| e.stamp);
            eb.sort_unstable_by_key(|e| e.stamp);
            ea.iter().map(|(_, e)| e).eq(eb.iter())
        } else {
            let shifted_pair = |x: &StreamEntry, y: &StreamEntry| {
                y.page == x.page + window_pages
                    && y.stamp == x.stamp + pf
                    && x.last_line == y.last_line
                    && x.run == y.run
            };
            // Prefer the pure uniform-shift interpretation, exactly as for
            // the cache sets above: a replaced-oldest table also matches as
            // mostly-dormant, but with shift-incompatible survivors.
            ea.sort_unstable_by_key(|(_, e)| e.stamp);
            eb.sort_unstable_by_key(|e| e.stamp);
            if ea.iter().zip(&eb).all(|((_, x), y)| shifted_pair(x, y)) {
                true
            } else {
                let mut k = 0;
                while k < ea.len() {
                    if let Some(j) = eb.iter().position(|y| *y == ea[k].1) {
                        if mask.pf.is_empty() {
                            mask.pf.resize(s1.pf.entries.len(), false);
                        }
                        mask.pf[ea[k].0] = true;
                        eb.swap_remove(j);
                        ea.swap_remove(k);
                    } else {
                        k += 1;
                    }
                }
                ea.sort_unstable_by_key(|(_, e)| e.stamp);
                eb.sort_unstable_by_key(|e| e.stamp);
                ea.iter().zip(&eb).all(|((_, x), y)| shifted_pair(x, y))
            }
        };
        if !entries_ok {
            return None;
        }
        Some((ClockDeltas { l2, llc, pf }, mask))
    }
}

/// The feedback-throttle soundness gate: the period must not have produced
/// useless-prefetch feedback, and if it produced useful feedback the useless
/// counter must be zero at both boundaries (the armed snapshot and the live
/// state) so `effective_degree` is provably constant while the useful
/// counter is advanced in closed form.
fn feedback_gate(delta: &Counters, s1: &StateSnapshot, live_feedback_useless: u64) -> bool {
    delta.useless_hwpf == 0
        && (delta.pf_useful == 0 || (s1.pf.feedback_useless == 0 && live_feedback_useless == 0))
}

/// Aggregates a window's transactions per (page, kind), preserving
/// first-occurrence order so first-touch page binding happens in the exact
/// walk's order.
fn group_events(events: &[(u64, DramEventKind)], base_line: u64) -> Vec<Group> {
    let mut groups: Vec<Group> = Vec::new();
    #[allow(clippy::disallowed_types)]
    let mut index: HashMap<(u64, DramEventKind), usize> = HashMap::new();
    for &(line, kind) in events {
        let page = line / LINES_PER_PAGE;
        match index.entry((page, kind)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                groups[*e.get()].count += 1;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push(Group {
                    rel_line: line as i64 - base_line as i64,
                    kind,
                    count: 1,
                });
            }
        }
    }
    groups
}

/// Aggregates a pass's logged (possibly bulk) transactions per (page, kind)
/// in first-occurrence order, carrying absolute line addresses — passes
/// repeat at zero shift, so no rebasing is ever needed.
fn group_counted(events: &[(u64, DramEventKind, u64)]) -> Vec<(u64, DramEventKind, u64)> {
    let mut groups: Vec<(u64, DramEventKind, u64)> = Vec::new();
    #[allow(clippy::disallowed_types)]
    let mut index: HashMap<(u64, DramEventKind), usize> = HashMap::new();
    for &(line, kind, count) in events {
        let page = line / LINES_PER_PAGE;
        match index.entry((page, kind)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                groups[*e.get()].2 += count;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push((line, kind, count));
            }
        }
    }
    groups
}

impl CacheSim {
    /// Leaves replay (materializing the exact state) and drops all detector
    /// state. Called whenever traffic or reconfiguration outside the batched
    /// walk invalidates the detector's view of the caches — including every
    /// applied migration epoch, which must reset pass and strided state
    /// exactly like window state.
    pub(crate) fn replay_hard_reset(&mut self) {
        self.materialize_replay("hard-reset");
        self.replay.discard();
    }

    /// Turns transition recording for the flight recorder on or off.
    /// Turning it off drops anything not yet drained.
    pub(crate) fn set_replay_trace(&mut self, on: bool) {
        self.replay.trace = on;
        if !on {
            self.replay.transitions = Vec::new();
        }
    }

    /// Takes the engage/exit transitions recorded since the last drain.
    /// [`crate::Machine`] calls this at chunk closes and at `finish`, then
    /// stamps each transition with the application-line clock.
    pub(crate) fn drain_replay_transitions(&mut self) -> Vec<ReplayTransition> {
        std::mem::take(&mut self.replay.transitions)
    }

    /// If replaying, rebuilds the cache and prefetcher state the exact walk
    /// would have produced: the engagement snapshot shifted forward by the
    /// number of replayed periods (plus, for a partial strided window, an
    /// exact re-walk of the already-applied elements). A no-op in detect
    /// mode.
    fn materialize_replay(&mut self, reason: &'static str) {
        if matches!(self.replay.mode, Mode::Detect) {
            return;
        }
        let mode = std::mem::take(&mut self.replay.mode);
        if let Some(level) = mode.level() {
            self.replay
                .note_transition(ReplayTransition::Exited(level, reason));
        }
        match mode {
            Mode::Detect => {}
            Mode::Replay(memo) => {
                let m = memo.windows_done;
                // The snapshot is the state one window *before* engagement;
                // the live caches already hold the state at engagement
                // (snapshot + 1 window), so nothing needs rebuilding when no
                // window was applied.
                if m > 0 {
                    let shift = m + 1;
                    let tag_shift = shift * self.replay.window_lines;
                    self.l2.restore_shifted(
                        &memo.snap.l2_lines,
                        memo.snap.l2_clock,
                        tag_shift,
                        shift * memo.clocks.l2,
                        &memo.dormant.l2,
                    );
                    self.llc.restore_shifted(
                        &memo.snap.llc_lines,
                        memo.snap.llc_clock,
                        tag_shift,
                        shift * memo.clocks.llc,
                        &memo.dormant.llc,
                    );
                    if memo.clocks.pf > 0 {
                        self.prefetcher.restore_shifted(
                            &memo.snap.pf,
                            shift * self.replay.window_pages,
                            shift * memo.clocks.pf,
                            &memo.dormant.pf,
                        );
                    } else {
                        // A zero prefetcher-clock delta means the windows ran
                        // with no prefetcher activity at all (verify accepted
                        // the stream table frozen, not shifted), and replay
                        // never touches it — the live entries are already
                        // exact. Shifting them here would corrupt a stream
                        // trained before the prefetcher was disabled.
                    }
                    self.stream_hint = usize::MAX;
                }
            }
            Mode::Pass(memo) => {
                let m = memo.passes_done;
                // Same one-period-early snapshot convention as windows: the
                // live caches hold the state at engagement (snapshot + 1
                // pass). Passes revisit the same range, so tags and
                // prefetcher pages never shift — only clocks advance.
                if m > 0 {
                    let shift = m + 1;
                    self.l2.restore_shifted(
                        &memo.snap.l2_lines,
                        memo.snap.l2_clock,
                        0,
                        shift * memo.clocks.l2,
                        &memo.dormant.l2,
                    );
                    self.llc.restore_shifted(
                        &memo.snap.llc_lines,
                        memo.snap.llc_clock,
                        0,
                        shift * memo.clocks.llc,
                        &memo.dormant.llc,
                    );
                    if memo.clocks.pf > 0 {
                        self.prefetcher.restore_shifted(
                            &memo.snap.pf,
                            0,
                            shift * memo.clocks.pf,
                            &memo.dormant.pf,
                        );
                    }
                    self.stream_hint = usize::MAX;
                }
            }
            Mode::Strided(memo) => {
                let m = memo.passes_done;
                // Same one-period-early snapshot convention as passes: the
                // live caches hold the state at engagement (snapshot + 1
                // pass), tags never shift, only clocks advance.
                if m > 0 {
                    let shift = m + 1;
                    self.l2.restore_shifted(
                        &memo.snap.l2_lines,
                        memo.snap.l2_clock,
                        0,
                        shift * memo.clocks.l2,
                        &memo.dormant.l2,
                    );
                    self.llc.restore_shifted(
                        &memo.snap.llc_lines,
                        memo.snap.llc_clock,
                        0,
                        shift * memo.clocks.llc,
                        &memo.dormant.llc,
                    );
                    if memo.clocks.pf > 0 {
                        self.prefetcher.restore_shifted(
                            &memo.snap.pf,
                            0,
                            shift * memo.clocks.pf,
                            &memo.dormant.pf,
                        );
                    }
                    self.stream_hint = usize::MAX;
                }
                if memo.elem_idx > 0 {
                    // Re-walk the already-applied elements of the partial
                    // pass to rebuild cache/prefetcher state; their counter
                    // and DRAM effects were applied in closed form, so both
                    // are discarded here, and the closed-form-advanced
                    // prefetch feedback is preserved across the re-walk (the
                    // feedback gate guarantees zero useless feedback, so the
                    // saved counters are exact).
                    let fb_useful = self.prefetcher.feedback_useful;
                    let fb_useless = self.prefetcher.feedback_useless;
                    let mut scratch = Counters::default();
                    let mut devnull = DevNullSink;
                    self.stream_hint = usize::MAX;
                    for i in 0..memo.elem_idx {
                        self.walk_lines_exact(
                            memo.base_line + i * memo.stride,
                            memo.len,
                            memo.is_write,
                            &mut scratch,
                            &mut devnull,
                        );
                    }
                    self.prefetcher.feedback_useful = fb_useful;
                    self.prefetcher.feedback_useless = fb_useless;
                }
            }
        }
    }

    /// Exits an engaged pass or strided mode whose pattern broke:
    /// materializes the exact state and drops every detector chain, so the
    /// breaking call re-enters detection from scratch.
    fn leave_closed_form(&mut self) {
        self.materialize_replay("pattern-break");
        self.replay.discard();
    }

    /// One cheap pass over both caches: how many valid lines sit at or
    /// beyond `boundary_line`, and the total valid-line population.
    fn scan_residency(&self, boundary_line: u64) -> (u64, u64) {
        let mut ahead = 0u64;
        let mut valid = 0u64;
        for l in self.l2.lines.iter() {
            valid += l.valid as u64;
            ahead += (l.valid && l.tag >= boundary_line) as u64;
        }
        for l in self.llc.lines.iter() {
            valid += l.valid as u64;
            ahead += (l.valid && l.tag >= boundary_line) as u64;
        }
        (ahead, valid)
    }

    fn take_snapshot(&self) -> StateSnapshot {
        StateSnapshot {
            l2_lines: self.l2.lines.clone(),
            l2_ways: self.l2.way_count(),
            l2_clock: self.l2.clock,
            llc_lines: self.llc.lines.clone(),
            llc_ways: self.llc.way_count(),
            llc_clock: self.llc.clock,
            pf: self.prefetcher.snapshot(),
        }
    }

    /// Batched walk with steady-state detection and replay. Behaviourally
    /// identical to [`CacheSim::walk_lines_exact`] over the same lines.
    #[inline]
    pub(crate) fn walk_with_replay<S: DramSink>(
        &mut self,
        first_line: u64,
        line_count: u64,
        is_write: bool,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        // Engaged closed-form modes first: an exact repeat of the memoized
        // pattern is applied without touching the detector at all; anything
        // else exits the mode (materializing the exact state) and re-enters
        // detection below.
        if !matches!(self.replay.mode, Mode::Detect | Mode::Replay(_)) {
            if self
                .replay
                .closed_form_matches(first_line, line_count, is_write)
            {
                if matches!(self.replay.mode, Mode::Pass(_)) {
                    self.apply_replay_pass(counters, sink);
                } else {
                    self.apply_strided_elem(counters, sink);
                }
                return;
            }
            self.leave_closed_form();
        }
        if self.replay.streak
            && self.replay.next_line == first_line
            && self.replay.is_write == is_write
        {
            // A continuation call means the last pass-sized call was *not* a
            // whole period by itself — single-call pass fingerprints cannot
            // cover multi-call passes, so the chain must not survive to
            // verify against a partial fingerprint.
            if self.replay.last_call.is_some() {
                self.replay.pass_chain_clear();
            }
            self.walk_streak(first_line, line_count, is_write, counters, sink);
        } else {
            self.walk_restart(first_line, line_count, is_write, counters, sink);
        }
    }

    /// A call that does not continue the current contiguous streak: exit any
    /// window replay, update the stride and pass detectors, then re-anchor.
    #[inline]
    fn walk_restart<S: DramSink>(
        &mut self,
        first_line: u64,
        line_count: u64,
        is_write: bool,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        // Exit any engaged window replay left by the previous streak.
        if !matches!(self.replay.mode, Mode::Detect) {
            self.materialize_replay("pattern-break");
        }

        if line_count < self.replay.window_lines {
            if self.replay.scatter_sleep > 0 {
                // Scatter sleep: recent small calls never advanced a stride
                // candidate, so detection is provably idle — walk exact with
                // zero bookkeeping until the sleep expires.
                self.replay.scatter_sleep -= 1;
                if self.replay.last_call.is_some() {
                    self.replay.pass_chain_clear();
                }
                self.walk_lines_exact(first_line, line_count, is_write, counters, sink);
                return;
            }
            // Small calls are the strided / scattered shape.
            match self.replay.stride_restart(first_line, line_count, is_write) {
                StrideAction::Element => {
                    self.walk_strided_elem(first_line, line_count, is_write, counters, sink);
                    return;
                }
                StrideAction::PassStart => {
                    if self.strided_pass_start() {
                        // Engaged: this call is element 0 of the first
                        // closed-form pass.
                        self.apply_strided_elem(counters, sink);
                    } else {
                        self.walk_strided_elem(first_line, line_count, is_write, counters, sink);
                    }
                    return;
                }
                StrideAction::Walk => {
                    if self.replay.s_breaks >= SCATTER_BREAKS {
                        self.replay.s_breaks = 0;
                        self.replay.scatter_len = (self.replay.scatter_len * 2)
                            .clamp(SCATTER_MIN_SLEEP, SCATTER_MAX_SLEEP);
                        self.replay.scatter_sleep = self.replay.scatter_len;
                    }
                }
            }
            if self.replay.last_call.is_some() {
                self.replay.pass_chain_clear();
            }
        } else {
            match self.pass_restart(first_line, line_count, is_write) {
                PassAction::Engaged => {
                    self.apply_replay_pass(counters, sink);
                    return;
                }
                PassAction::Log => {
                    self.walk_pass_logged(first_line, line_count, is_write, counters, sink);
                    return;
                }
                PassAction::Walk => {}
            }
        }

        self.replay.begin_streak(first_line, is_write);
        if first_line + line_count <= self.replay.window_base {
            // Scattered-traffic fast path: the whole call sits before the
            // accumulation boundary (single-line gathers, wide strides),
            // so no detection bookkeeping is needed beyond the streak
            // anchor just recorded.
            self.walk_lines_exact(first_line, line_count, is_write, counters, sink);
            self.replay.next_line = first_line + line_count;
            return;
        }
        self.walk_streak(first_line, line_count, is_write, counters, sink);
    }

    /// The contiguous-streak walk: window accumulation, window replay, and
    /// the exact prefix/tail segments around them.
    fn walk_streak<S: DramSink>(
        &mut self,
        first_line: u64,
        line_count: u64,
        is_write: bool,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let wl = self.replay.window_lines;
        let mut line = first_line;
        let mut remaining = line_count;
        while remaining > 0 {
            if self.replay.in_replay() {
                if remaining >= wl {
                    debug_assert_eq!(line % LINES_PER_PAGE, 0);
                    self.apply_replay_window(counters, sink);
                    line += wl;
                    remaining -= wl;
                    continue;
                }
                // Tail shorter than a window: resume the exact walk from the
                // materialized state.
                self.materialize_replay("pattern-break");
                self.replay.resume_detection(line);
            }

            if line < self.replay.window_base {
                // Unaligned streak prefix: walk exactly, unlogged, up to the
                // first page boundary.
                let seg = remaining.min(self.replay.window_base - line);
                self.walk_lines_exact(line, seg, is_write, counters, sink);
                line += seg;
                remaining -= seg;
                continue;
            }

            debug_assert_eq!(line, self.replay.window_base + self.replay.filled);
            let seg = remaining.min(wl - self.replay.filled);
            let mut log = std::mem::take(&mut self.replay.events);
            let before = *counters;
            {
                let mut logging = LoggingSink {
                    inner: sink,
                    log: &mut log,
                };
                self.walk_lines_exact(line, seg, is_write, counters, &mut logging);
            }
            self.replay.events = log;
            let delta = counters.delta_from(&before);
            self.replay.acc.add(&delta);
            self.replay.det_live = true;
            self.replay.filled += seg;
            line += seg;
            remaining -= seg;
            if self.replay.filled == wl {
                self.complete_window();
            }
        }
        self.replay.next_line = line;
    }

    /// Finishes the accumulating window: fingerprint it, compare against the
    /// previous window, and arm / confirm / engage as appropriate.
    fn complete_window(&mut self) {
        let wl = self.replay.window_lines;
        let confirm_base = self.replay.window_base;
        let delta = std::mem::take(&mut self.replay.acc);
        let events = std::mem::take(&mut self.replay.events);

        let matches_prev = self
            .replay
            .prev
            .as_ref()
            .is_some_and(|p| p.delta == delta && events_shifted_eq(&p.events, &events, wl));

        if matches_prev {
            if let Some(prev_snap) = self.replay.armed.take() {
                let verdict = if feedback_gate(&delta, &prev_snap, self.prefetcher.feedback_useless)
                {
                    self.verify_live_shift(&prev_snap, wl, self.replay.window_pages)
                } else {
                    None
                };
                if let Some((clocks, dormant)) = verdict {
                    self.replay.mode = Mode::Replay(Box::new(Memo {
                        groups: group_events(&events, confirm_base),
                        pf_useful_per_window: delta.pf_useful,
                        delta,
                        snap: *prev_snap,
                        clocks,
                        dormant,
                        base_line: confirm_base,
                        windows_done: 0,
                    }));
                    self.replay
                        .note_transition(ReplayTransition::Engaged(ReplayLevel::Window));
                } else {
                    // Deltas repeat but the state is not uniformly shifted
                    // (or the feedback gate failed): back off before paying
                    // for the next snapshot.
                    self.replay.fail_streak = self.replay.fail_streak.saturating_add(1);
                    self.replay.skip_windows =
                        (1u32 << self.replay.fail_streak.min(4)).min(MAX_BACKOFF);
                }
            } else if self.replay.skip_windows > 0 {
                self.replay.skip_windows -= 1;
            } else if self.replay.scan_skip > 0 {
                self.replay.scan_skip -= 1;
            } else if !events.is_empty() {
                // Only pay for a snapshot when it could possibly verify:
                // * a window without DRAM transactions filled no lines, so
                //   resident tags cannot have shifted by a window (checked
                //   above);
                // * a resident line *ahead* of the stream (the prefetcher
                //   never crosses the page boundary at the window end, so
                //   nothing legitimate is ahead) is leftover foreign state
                //   that must wash out first;
                // * a changing valid-line population means the caches are
                //   still filling.
                // These cheap scans keep engagement prompt right after a
                // warm-up transient instead of backoff-delayed; when foreign
                // lines are found ahead, the next scans are skipped for
                // about the windows it takes this window's fill rate to
                // evict them (foreign lines are older than every stream
                // line, so they are preferred victims).
                let boundary = confirm_base + wl;
                let (ahead, valid_count) = self.scan_residency(boundary);
                let stable = self.replay.last_valid_count == Some(valid_count);
                self.replay.last_valid_count = Some(valid_count);
                if ahead > 0 {
                    let fills = events
                        .iter()
                        .filter(|(_, k)| *k != DramEventKind::Writeback)
                        .count() as u64;
                    self.replay.scan_skip =
                        ((ahead / fills.max(1)).saturating_sub(1) as u32).clamp(1, 64);
                } else if stable {
                    self.replay.armed = Some(Box::new(self.take_snapshot()));
                }
            }
        } else {
            self.replay.armed = None;
            self.replay.fail_streak = 0;
            self.replay.skip_windows = 0;
            self.replay.last_valid_count = None;
        }

        // Recycle the previous window's event buffer for the next window.
        let recycled = self.replay.prev.take().map(|p| {
            let mut v = p.events;
            v.clear();
            v
        });
        self.replay.prev = Some(WindowPrint { delta, events });
        self.replay.events = recycled.unwrap_or_default();
        self.replay.window_base = confirm_base + wl;
        self.replay.filled = 0;
    }

    /// Applies one memoized window in closed form: counter delta, bulk DRAM
    /// transactions (page-granular, first-occurrence order) and the
    /// closed-form prefetcher feedback advance.
    fn apply_replay_window<S: DramSink>(&mut self, counters: &mut Counters, sink: &mut S) {
        let Mode::Replay(memo) = &mut self.replay.mode else {
            unreachable!("apply_replay_window outside replay mode");
        };
        counters.add(&memo.delta);
        let base = memo.base_line as i64
            + (memo.windows_done as i64 + 1) * self.replay.window_lines as i64;
        for g in &memo.groups {
            sink.bulk_event((base + g.rel_line) as u64, g.kind, g.count);
        }
        memo.windows_done += 1;
        let useful = memo.pf_useful_per_window;
        self.replay.windows_replayed_total += 1;
        self.prefetcher.advance_useful(useful);
    }

    // -----------------------------------------------------------------------
    // Pass-level periodicity.
    // -----------------------------------------------------------------------

    /// Pass bookkeeping at a streak restart with a pass-sized call: advance
    /// the back-to-back chain, verify + engage a logged fingerprint, or
    /// decide to log this call.
    fn pass_restart(&mut self, first: u64, count: u64, write: bool) -> PassAction {
        let matches = self.replay.last_call == Some((first, count, write));
        self.replay.last_call = Some((first, count, write));
        if !matches {
            // A different pass-sized call restarts the chain.
            self.replay.pass_print = None;
            self.replay.pass_skip = 0;
            self.replay.pass_fail = 0;
            return PassAction::Walk;
        }
        if let Some(print) = self.replay.pass_print.take() {
            // The previous identical call was logged; if the pass-boundary
            // state recurs (zero tag shift, uniform clock shift), the next
            // pass is provably identical — the logged fingerprint becomes
            // the memo.
            let gated = feedback_gate(&print.delta, &print.snap, self.prefetcher.feedback_useless);
            let verdict = if gated {
                self.verify_live_shift(&print.snap, 0, 0)
            } else {
                None
            };
            if let Some((clocks, dormant)) = verdict {
                let pf_useful = print.delta.pf_useful;
                self.replay.mode = Mode::Pass(Box::new(PassMemo {
                    first_line: first,
                    line_count: count,
                    is_write: write,
                    groups: group_counted(&print.events),
                    delta: print.delta,
                    snap: print.snap,
                    clocks,
                    dormant,
                    pf_useful,
                    passes_done: 0,
                }));
                self.replay
                    .note_transition(ReplayTransition::Engaged(ReplayLevel::Pass));
                // No contiguous streak may continue under an engaged pass,
                // and the window residue from the logged pass is dead.
                self.replay.streak = false;
                self.replay.clear_window_detection();
                return PassAction::Engaged;
            }
            self.replay.pass_fail = self.replay.pass_fail.saturating_add(1);
            // The first failure is usually the warm-up pass: retry at once;
            // after that, back off exponentially.
            self.replay.pass_skip = if self.replay.pass_fail <= 1 {
                0
            } else {
                (1u32 << (self.replay.pass_fail - 2).min(3)).min(MAX_PASS_BACKOFF)
            };
        }
        if self.replay.pass_skip > 0 {
            self.replay.pass_skip -= 1;
            return PassAction::Walk;
        }
        self.replay.pass_print = Some(Box::new(PassPrint {
            snap: self.take_snapshot(),
            delta: Counters::default(),
            events: Vec::new(),
        }));
        PassAction::Log
    }

    /// Walks one pass-sized call exactly while logging its whole fingerprint
    /// (counter delta + every DRAM transaction, bulk window replays
    /// included). The window engine runs normally inside the logged pass.
    fn walk_pass_logged<S: DramSink>(
        &mut self,
        first_line: u64,
        line_count: u64,
        is_write: bool,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let mut print = self
            .replay
            .pass_print
            .take()
            .expect("walk_pass_logged without an armed pass print");
        let before = *counters;
        {
            let mut logging = PassLoggingSink {
                inner: sink,
                log: &mut print.events,
            };
            self.replay.begin_streak(first_line, is_write);
            if first_line + line_count <= self.replay.window_base {
                self.walk_lines_exact(first_line, line_count, is_write, counters, &mut logging);
                self.replay.next_line = first_line + line_count;
            } else {
                self.walk_streak(first_line, line_count, is_write, counters, &mut logging);
            }
        }
        print.delta = counters.delta_from(&before);
        self.replay.pass_print = Some(print);
    }

    /// Applies one memoized pass in closed form: one pass-sized counter
    /// delta, page-granular bulk DRAM transactions at their absolute
    /// addresses, and the closed-form prefetcher feedback advance.
    fn apply_replay_pass<S: DramSink>(&mut self, counters: &mut Counters, sink: &mut S) {
        let Mode::Pass(memo) = &mut self.replay.mode else {
            unreachable!("apply_replay_pass outside pass mode");
        };
        counters.add(&memo.delta);
        for &(line, kind, count) in &memo.groups {
            sink.bulk_event(line, kind, count);
        }
        memo.passes_done += 1;
        let useful = memo.pf_useful;
        self.replay.passes_replayed_total += 1;
        self.prefetcher.advance_useful(useful);
    }

    // -----------------------------------------------------------------------
    // Stride-aware streaks.
    // -----------------------------------------------------------------------

    /// Walks one element of an active strided sequence exactly, logging its
    /// per-element fingerprint when the current pass is being logged.
    fn walk_strided_elem<S: DramSink>(
        &mut self,
        first_line: u64,
        line_count: u64,
        is_write: bool,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        self.replay.s_seen += 1;
        self.replay.s_last_first = first_line;
        if !self.replay.s_logging {
            self.walk_lines_exact(first_line, line_count, is_write, counters, sink);
            return;
        }
        if Some(self.replay.s_elems.len() as u64) == self.replay.s_pass_elems {
            // The pass ran past its established length: the loop shape
            // changed, so the fingerprint in progress can never be verified
            // against the previous boundary. Drop it and keep walking.
            self.replay.s_logging = false;
            self.replay.s_elems.clear();
            self.replay.s_ev_ends.clear();
            self.replay.s_events.clear();
            self.replay.s_acc = Counters::default();
            self.replay.armed = None;
            self.walk_lines_exact(first_line, line_count, is_write, counters, sink);
            return;
        }
        let before = *counters;
        let mut log = std::mem::take(&mut self.replay.s_events);
        {
            let mut logging = LoggingSink {
                inner: sink,
                log: &mut log,
            };
            self.walk_lines_exact(first_line, line_count, is_write, counters, &mut logging);
        }
        self.replay.s_events = log;
        let delta = counters.delta_from(&before);
        self.replay.s_acc.add(&delta);
        self.replay.s_elems.push(delta);
        debug_assert!(self.replay.s_events.len() <= u32::MAX as usize);
        self.replay
            .s_ev_ends
            .push(self.replay.s_events.len() as u32);
    }

    /// Handles a strided pass boundary (the sequence wrapped back to its
    /// first element): verify + engage a completely logged pass, start
    /// logging the new pass, or just advance the pass chain. Returns whether
    /// strided replay engaged (the boundary call is then element 0 of the
    /// first closed-form pass).
    ///
    /// Like contiguous passes, a strided pass revisits identical addresses,
    /// so a recurring pass-boundary state (zero tag shift, uniform clock
    /// shift, dormant lines allowed) alone proves the next pass identical —
    /// no fingerprint comparison is needed. The dormancy allowance is what
    /// makes this work where window-shift verification cannot: a strided
    /// sweep leaves foreign warm-up lines resident in the sets its stride
    /// skips forever, and those lines are exactly equal (not shifted) at
    /// pass boundaries.
    fn strided_pass_start(&mut self) -> bool {
        let n = self.replay.s_seen;
        let matches_prev = self.replay.s_pass_elems == Some(n);
        self.replay.s_pass_elems = Some(n);
        self.replay.s_seen = 0;

        if !matches_prev {
            // Different pass length: restart the pass chain here. Logging
            // still starts below — if the *next* pass repeats this one's
            // length, its fingerprint engages at the boundary after.
            self.replay.s_logging = false;
            self.replay.s_elems.clear();
            self.replay.s_ev_ends.clear();
            self.replay.s_events.clear();
            self.replay.s_acc = Counters::default();
            self.replay.armed = None;
            self.replay.s_fail = 0;
            self.replay.s_skip = 0;
        } else if self.replay.s_logging && self.replay.s_elems.len() as u64 == n {
            // A complete pass fingerprint was logged and the snapshot at its
            // start is armed; if the boundary state recurs, engage.
            let prev_snap = self
                .replay
                .armed
                .take()
                .expect("strided logging without an armed snapshot");
            self.replay.s_logging = false;
            let gated = feedback_gate(
                &self.replay.s_acc,
                &prev_snap,
                self.prefetcher.feedback_useless,
            );
            let verdict = if gated {
                self.verify_live_shift(&prev_snap, 0, 0)
            } else {
                None
            };
            if let Some((clocks, dormant)) = verdict {
                let memo = StridedMemo {
                    base_line: self.replay.s_seq_first,
                    stride: self.replay.s_stride,
                    len: self.replay.s_len,
                    is_write: self.replay.s_write,
                    elem_count: n,
                    elems: std::mem::take(&mut self.replay.s_elems),
                    ev_ends: std::mem::take(&mut self.replay.s_ev_ends),
                    events: std::mem::take(&mut self.replay.s_events),
                    snap: *prev_snap,
                    clocks,
                    dormant,
                    passes_done: 0,
                    elem_idx: 0,
                };
                self.replay.mode = Mode::Strided(Box::new(memo));
                self.replay
                    .note_transition(ReplayTransition::Engaged(ReplayLevel::Strided));
                // The engaged memo owns the fingerprint; no detector residue
                // may survive underneath it.
                self.replay.s_active = false;
                self.replay.s_count = 0;
                self.replay.s_acc = Counters::default();
                return true;
            }
            self.replay.s_elems.clear();
            self.replay.s_ev_ends.clear();
            self.replay.s_events.clear();
            self.replay.s_acc = Counters::default();
            self.replay.s_fail = self.replay.s_fail.saturating_add(1);
            // The first failure is usually the warm-up pass: retry at once;
            // after that, back off exponentially.
            self.replay.s_skip = if self.replay.s_fail <= 1 {
                0
            } else {
                (1u32 << (self.replay.s_fail - 2).min(3)).min(MAX_PASS_BACKOFF)
            };
        }
        if self.replay.s_skip > 0 {
            self.replay.s_skip -= 1;
            return false;
        }
        if !self.replay.s_logging && n <= MAX_STRIDE_ELEMS {
            // Start logging the pass that begins with this call.
            self.replay.s_elems.clear();
            self.replay.s_ev_ends.clear();
            self.replay.s_events.clear();
            self.replay.s_acc = Counters::default();
            self.replay.armed = Some(Box::new(self.take_snapshot()));
            self.replay.s_logging = true;
        }
        false
    }

    /// Applies one memoized strided element in closed form: the element's
    /// counter delta, its DRAM transactions at their absolute addresses
    /// (passes repeat at zero shift), and the closed-form prefetcher
    /// feedback advance. Applying per element (not per pass) keeps the
    /// machine layer's chunk-accounting checks at element boundaries
    /// bit-identical to the exact walk.
    fn apply_strided_elem<S: DramSink>(&mut self, counters: &mut Counters, sink: &mut S) {
        let Mode::Strided(memo) = &mut self.replay.mode else {
            unreachable!("apply_strided_elem outside strided mode");
        };
        let i = memo.elem_idx as usize;
        counters.add(&memo.elems[i]);
        let start = if i == 0 {
            0
        } else {
            memo.ev_ends[i - 1] as usize
        };
        let end = memo.ev_ends[i] as usize;
        for &(line, kind) in &memo.events[start..end] {
            sink.event(line, kind);
        }
        let useful = memo.elems[i].pf_useful;
        memo.elem_idx += 1;
        if memo.elem_idx == memo.elem_count {
            memo.elem_idx = 0;
            memo.passes_done += 1;
            self.replay.passes_replayed_total += 1;
        }
        self.replay.stride_elems_replayed_total += 1;
        self.prefetcher.advance_useful(useful);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_geometry() {
        // 512 L2 sets (color 8), 2048 LLC sets (color 32) → 32 pages.
        let e = ReplayEngine::new(512, 2048);
        assert_eq!(e.window_pages, 32);
        assert_eq!(e.window_lines, 32 * 64);
        assert!(e.enabled);
        // Tiny test geometry: 32 sets (color 1), 128 sets (color 2) → 2.
        let e = ReplayEngine::new(32, 128);
        assert_eq!(e.window_pages, 2);
        // Full Skylake: 1024 sets (color 16), 16384 sets (color 256) → 256.
        let e = ReplayEngine::new(1024, 16384);
        assert_eq!(e.window_pages, 256);
        // Absurd geometry disables the engine.
        let e = ReplayEngine::new(1 << 21, 1 << 22);
        assert!(!e.enabled);
        let mut e2 = e;
        e2.set_enabled(true);
        assert!(!e2.enabled, "geometry gate must stick");
    }

    #[test]
    fn event_shift_comparison() {
        let a = vec![
            (100u64, DramEventKind::DemandFill),
            (40, DramEventKind::Writeback),
        ];
        let b = vec![
            (612u64, DramEventKind::DemandFill),
            (552, DramEventKind::Writeback),
        ];
        assert!(events_shifted_eq(&a, &b, 512));
        assert!(!events_shifted_eq(&a, &b, 256));
        assert!(!events_shifted_eq(&a, &b[..1], 512));
    }

    #[test]
    fn strided_sweep_is_pass_periodic_under_zero_shift() {
        // A strided sweep after a contiguous warmup is generally *not*
        // window-shift-periodic (warmup residue in the skipped sets washes
        // out non-uniformly), but the whole-pass boundary state recurs under
        // zero tag shift almost immediately — the property strided pass
        // replay verifies against.
        use crate::config::{CacheParams, PrefetchParams};
        use crate::prefetch::StreamPrefetcher;
        let mut c = CacheSim::new(
            CacheParams::scaled_emulation(),
            StreamPrefetcher::new(PrefetchParams::default()),
        );
        c.replay.set_enabled(false);
        let total_lines: u64 = 65536; // 4 MiB
        let mut counters = Counters::default();
        let mut sink = DevNullSink;
        c.walk_lines_exact(0, total_lines, true, &mut counters, &mut sink);
        let mut prev: Option<StateSnapshot> = None;
        for pass in 0..4 {
            for e in 0..(total_lines / 4) {
                c.walk_lines_exact(e * 4, 1, false, &mut counters, &mut sink);
            }
            if let Some(p) = prev.as_ref() {
                assert!(
                    c.verify_live_shift(p, 0, 0).is_some(),
                    "strided pass {pass} boundary not zero-shift periodic"
                );
            }
            prev = Some(c.take_snapshot());
        }
    }

    #[test]
    fn group_events_aggregates_per_page_in_order() {
        let base = 640; // line index, page 10
        let events = vec![
            (640u64, DramEventKind::DemandFill),
            (641, DramEventKind::PrefetchFill),
            (642, DramEventKind::PrefetchFill),
            (100, DramEventKind::Writeback), // lag page behind the stream
            (704, DramEventKind::DemandFill),
        ];
        let groups = group_events(&events, base);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].rel_line, 0);
        assert_eq!(groups[0].count, 1);
        assert_eq!(groups[1].count, 2);
        assert_eq!(groups[2].rel_line, 100 - 640);
        assert_eq!(groups[3].rel_line, 64);
    }

    #[test]
    fn group_counted_aggregates_bulk_and_single_events() {
        let events = vec![
            (640u64, DramEventKind::DemandFill, 1),
            (641, DramEventKind::DemandFill, 1),
            (650, DramEventKind::PrefetchFill, 64), // bulk replay event
            (100, DramEventKind::Writeback, 1),
            (660, DramEventKind::PrefetchFill, 2),
        ];
        let groups = group_counted(&events);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (640, DramEventKind::DemandFill, 2));
        assert_eq!(groups[1], (650, DramEventKind::PrefetchFill, 66));
        assert_eq!(groups[2], (100, DramEventKind::Writeback, 1));
    }

    #[test]
    fn stride_candidate_chain_activates_on_third_consistent_call() {
        let mut e = ReplayEngine::new(512, 2048);
        // Calls: len 1, stride 4 lines.
        assert!(matches!(
            e.stride_restart(1000, 1, false),
            StrideAction::Walk
        ));
        assert!(matches!(
            e.stride_restart(1004, 1, false),
            StrideAction::Walk
        ));
        assert_eq!(e.s_stride, 4);
        // Third consistent call activates; the sequence base is back-dated to
        // the first call of the chain and both chain calls count as seen.
        assert!(matches!(
            e.stride_restart(1008, 1, false),
            StrideAction::Element
        ));
        assert!(e.s_active);
        assert_eq!(e.s_seq_first, 1000);
        assert_eq!(e.s_seen, 2);
        // A break clears the sequence and restarts the chain.
        assert!(matches!(
            e.stride_restart(5000, 1, false),
            StrideAction::Walk
        ));
        assert!(!e.s_active);
        assert_eq!(e.s_count, 1);
    }

    #[test]
    fn stride_activation_gates_reject_untractable_geometry() {
        let mut e = ReplayEngine::new(512, 2048);
        // Element length >= stride can never be a gapped sequence.
        e.stride_restart(0, 8, false);
        e.stride_restart(8, 8, false);
        assert!(matches!(e.stride_restart(16, 8, false), StrideAction::Walk));
        assert!(!e.s_active && e.s_hopeless);
        // Hopeless chains stop re-evaluating but keep following the stride.
        assert!(matches!(e.stride_restart(24, 8, false), StrideAction::Walk));
        assert!(e.s_hopeless);
        // Pass-level verification has no window-geometry constraint: a
        // stride coprime with the window size still activates.
        let mut e = ReplayEngine::new(512, 2048);
        e.stride_restart(0, 1, false);
        e.stride_restart(2049, 1, false);
        assert!(matches!(
            e.stride_restart(4098, 1, false),
            StrideAction::Element
        ));
        assert!(e.s_active);
        assert_eq!(e.s_seq_first, 0);
    }

    #[test]
    fn strided_memo_expected_first_advances_by_element() {
        let memo = StridedMemo {
            base_line: 1000,
            stride: 4,
            len: 1,
            is_write: false,
            elem_count: 512,
            elems: Vec::new(),
            ev_ends: Vec::new(),
            events: Vec::new(),
            snap: StateSnapshot {
                l2_lines: Vec::new(),
                l2_ways: 1,
                l2_clock: 0,
                llc_lines: Vec::new(),
                llc_ways: 1,
                llc_clock: 0,
                pf: PrefetcherSnapshot {
                    entries: Vec::new(),
                    clock: 0,
                    feedback_useless: 0,
                    enabled: true,
                },
            },
            clocks: ClockDeltas {
                l2: 0,
                llc: 0,
                pf: 0,
            },
            dormant: DormantMask::default(),
            passes_done: 0,
            elem_idx: 0,
        };
        // Replay restarts the same pass from its own base; only the element
        // index advances the expected address (zero tag shift across passes).
        assert_eq!(memo.expected_first(), 1000);
        let mut memo = memo;
        memo.elem_idx = 3;
        assert_eq!(memo.expected_first(), 1012);
        memo.passes_done = 2;
        memo.elem_idx = 0;
        assert_eq!(memo.expected_first(), 1000);
    }
}
