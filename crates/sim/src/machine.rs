//! The [`Machine`]: the simulated compute node with tiered memory.
//!
//! A `Machine` implements [`MemoryEngine`], so any workload written against
//! `dismem-trace` can run on it. It combines the address space (placement),
//! the cache hierarchy (traffic filtering and prefetching), the link model
//! (interference) and the timing model (runtime) and produces a [`RunReport`].

use crate::address_space::{AddressSpace, FreeError, Tier};
use crate::cache::{CacheSim, DramEvent, DramEventKind, DramSink};
use crate::config::MachineConfig;
use crate::counters::Counters;
use crate::interference::InterferenceProfile;
use crate::prefetch::StreamPrefetcher;
use crate::replay::{ReplayLevel, ReplayTransition};
use crate::report::{AllocationSummary, PhaseReport, RunReport, TieringReport, TimelineSample};
use crate::snapshot::{MachineSnapshot, PageEpoch, SnapshotError, TieringState, SNAPSHOT_VERSION};
use crate::tiering::{
    HotnessTracker, PageSample, TierOccupancy, TieringPolicy, TieringRuntime, TieringSpec,
    TieringStats,
};
use crate::timing::TimingModel;
use dismem_trace::{
    AccessKind, MemoryEngine, ObjectHandle, PlacementPolicy, Recorder, ReplayMode, TraceEvent,
    TraceTier, CACHE_LINE_SIZE,
};

/// Cache lines per page (pages and cache lines are both powers of two).
const LINES_PER_PAGE: u64 = dismem_trace::PAGE_SIZE / CACHE_LINE_SIZE;

/// One page's worth of pending DRAM traffic in the batched tally sink.
#[derive(Clone, Copy)]
struct MemoSlot {
    page: u64,
    tier: Tier,
    owner: ObjectHandle,
    /// DRAM lines recorded against this page since the slot was loaded.
    pending: u64,
}

const EMPTY_SLOT: MemoSlot = MemoSlot {
    page: u64::MAX,
    tier: Tier::Local,
    owner: ObjectHandle(u32::MAX),
    pending: 0,
};

/// DRAM-traffic deltas produced by one batched cache walk, folded into the
/// open chunk after the walk (u64 additions commute, so folding at element
/// boundaries instead of per event leaves every chunk-close decision — and
/// therefore the timeline — bit-identical to the per-line reference path).
#[derive(Default, Clone, Copy)]
struct DramTally {
    dram_lines_local: u64,
    dram_lines_pool: u64,
    demand_dram_lines_local: u64,
    demand_dram_lines_pool: u64,
    writeback_lines_local: u64,
    writeback_lines_pool: u64,
    pool_link_lines: u64,
}

impl DramTally {
    /// The single (tier, kind) → counter mapping shared by both pipelines:
    /// the per-line drain folds a tally per event, the batched sink per
    /// element/walk — u64 additions commute, so totals agree bit for bit.
    #[inline]
    fn tally(&mut self, tier: Tier, kind: DramEventKind) {
        self.tally_n(tier, kind, 1);
    }

    /// Aggregated form of [`DramTally::tally`]: `n` transactions of the same
    /// kind against the same tier (multiplication distributes over the u64
    /// additions, so this equals `n` single tallies bit for bit).
    #[inline]
    fn tally_n(&mut self, tier: Tier, kind: DramEventKind, n: u64) {
        match (tier, kind) {
            (Tier::Local, DramEventKind::DemandFill) => {
                self.dram_lines_local += n;
                self.demand_dram_lines_local += n;
            }
            (Tier::Local, DramEventKind::PrefetchFill) => {
                self.dram_lines_local += n;
            }
            (Tier::Local, DramEventKind::Writeback) => {
                self.writeback_lines_local += n;
            }
            (Tier::Pool, DramEventKind::DemandFill) => {
                self.dram_lines_pool += n;
                self.demand_dram_lines_pool += n;
            }
            (Tier::Pool, DramEventKind::PrefetchFill) => {
                self.dram_lines_pool += n;
            }
            (Tier::Pool, DramEventKind::Writeback) => {
                self.writeback_lines_pool += n;
            }
        }
        if tier == Tier::Pool {
            self.pool_link_lines += n;
        }
    }

    fn fold_into(&mut self, chunk: &mut Counters, pool_link_lines: &mut u64) {
        chunk.dram_lines_local += self.dram_lines_local;
        chunk.dram_lines_pool += self.dram_lines_pool;
        chunk.demand_dram_lines_local += self.demand_dram_lines_local;
        chunk.demand_dram_lines_pool += self.demand_dram_lines_pool;
        chunk.writeback_lines_local += self.writeback_lines_local;
        chunk.writeback_lines_pool += self.writeback_lines_pool;
        *pool_link_lines += self.pool_link_lines;
        *self = DramTally::default();
    }
}

/// Inline consumer of the batched cache walk's DRAM transactions: resolves
/// the serving tier with a two-slot page memo (fills and victim writebacks
/// usually alternate between two pages), tallies counters, and batches the
/// per-page histogram / per-object traffic recording.
struct TallySink<'a> {
    space: &'a mut AddressSpace,
    memo: [MemoSlot; 2],
    /// Which memo slot was used last (victim preference for reloads).
    last_hit: usize,
    tally: DramTally,
}

impl<'a> TallySink<'a> {
    fn new(space: &'a mut AddressSpace) -> Self {
        Self {
            space,
            memo: [EMPTY_SLOT; 2],
            last_hit: 0,
            tally: DramTally::default(),
        }
    }

    /// Writes the pending per-page traffic of both memo slots back to the
    /// address space. Must be called before the sink is dropped.
    fn flush(&mut self) {
        for slot in &mut self.memo {
            if slot.pending > 0 {
                self.space
                    // dismem-lint: allow(single-recording-point) — the tally
                    // sink is the batched pipeline's feed into the recording
                    // point, not a second recording path.
                    .record_dram_traffic(slot.owner, slot.tier, slot.page, slot.pending);
                slot.pending = 0;
            }
        }
    }

    #[inline]
    fn slot_for(&mut self, line_addr: u64) -> usize {
        let page = line_addr / LINES_PER_PAGE;
        if self.memo[self.last_hit].page == page {
            return self.last_hit;
        }
        let other = 1 - self.last_hit;
        if self.memo[other].page == page {
            self.last_hit = other;
            return other;
        }
        // Miss: resolve the page and load it into the slot not just used.
        let (tier, owner) = match self.space.resolve_dram(line_addr * CACHE_LINE_SIZE) {
            Ok(resolved) => resolved,
            Err(oom) => panic!("simulated OOM abort: {oom}"),
        };
        let victim = &mut self.memo[other];
        if victim.pending > 0 {
            self.space
                // dismem-lint: allow(single-recording-point) — victim slot
                // flush on memo miss; same feed path as `flush` above.
                .record_dram_traffic(victim.owner, victim.tier, victim.page, victim.pending);
        }
        self.memo[other] = MemoSlot {
            page,
            tier,
            owner,
            pending: 0,
        };
        self.last_hit = other;
        other
    }
}

impl DramSink for TallySink<'_> {
    #[inline]
    fn event(&mut self, line_addr: u64, kind: DramEventKind) {
        let slot = self.slot_for(line_addr);
        let memo = &mut self.memo[slot];
        memo.pending += 1;
        let tier = memo.tier;
        self.tally.tally(tier, kind);
    }

    #[inline]
    fn bulk_event(&mut self, line_addr: u64, kind: DramEventKind, count: u64) {
        if count == 0 {
            return;
        }
        let slot = self.slot_for(line_addr);
        let memo = &mut self.memo[slot];
        memo.pending += count;
        let tier = memo.tier;
        self.tally.tally_n(tier, kind, count);
    }

    /// All accounting (tier resolution, per-object traffic, histogram) is
    /// page-granular, so aggregated per-page events are exact.
    fn supports_replay(&self) -> bool {
        true
    }
}

/// The simulated compute node.
pub struct Machine {
    config: MachineConfig,
    space: AddressSpace,
    cache: CacheSim,
    timing: TimingModel,
    interference: InterferenceProfile,

    clock_s: f64,
    chunk: Counters,
    dram_events: Vec<DramEvent>,
    /// Pool-tier DRAM lines accumulated in the open chunk; folded into
    /// `chunk.link_raw_bytes` (payload × protocol overhead, rounded once)
    /// when the chunk closes, so the protocol overhead is exact instead of
    /// accumulating per-line rounding drift.
    chunk_pool_link_lines: u64,
    /// Whether the batched line-walk fast path is used (default). Disabled,
    /// the machine walks every access line by line exactly as the reference
    /// implementation does — the two paths produce bit-identical reports.
    batched: bool,
    /// Dynamic tiering: installed policy, epoch accumulator, damper history
    /// and migration statistics. Defaults to [`crate::tiering::Static`],
    /// which never fires an epoch.
    tiering: TieringRuntime,
    /// The serializable spec the installed tiering policy was built from,
    /// when there is one. `None` after [`Machine::set_tiering`] installs a
    /// raw boxed policy — such machines cannot be snapshotted
    /// ([`crate::snapshot::SnapshotError::UnsupportedPolicy`]).
    tiering_spec: Option<TieringSpec>,

    phase_names: Vec<String>,
    phase_counters: Vec<Counters>,
    phase_runtimes: Vec<f64>,
    current_phase: Option<usize>,

    total: Counters,
    timeline: Vec<TimelineSample>,

    /// Optional flight recorder ([`Machine::set_recorder`]). `None` (the
    /// default) keeps every hot path free of event construction; the
    /// recorded/unrecorded bit-identity of [`RunReport`]s is pinned by the
    /// workspace property tests.
    recorder: Option<Box<dyn Recorder>>,
    /// Capacity spills already reported to the recorder (the address-space
    /// counter is monotone; the delta since this mark is emitted as one
    /// [`TraceEvent::TierSpill`] per chunk close).
    spilled_seen: u64,
}

impl Machine {
    /// Creates a machine from a configuration.
    pub fn new(config: MachineConfig) -> Self {
        let space = AddressSpace::new(config.local.capacity_bytes, config.pool.capacity_bytes);
        let prefetcher = StreamPrefetcher::new(config.prefetch);
        let cache = CacheSim::new(config.cache, prefetcher);
        let timing = TimingModel::new(config.clone());
        Self {
            config,
            space,
            cache,
            timing,
            interference: InterferenceProfile::Idle,
            clock_s: 0.0,
            chunk: Counters::default(),
            dram_events: Vec::with_capacity(64),
            chunk_pool_link_lines: 0,
            batched: true,
            tiering: TieringRuntime::new(Box::new(crate::tiering::Static)),
            tiering_spec: Some(TieringSpec::Static),
            phase_names: Vec::new(),
            phase_counters: Vec::new(),
            phase_runtimes: Vec::new(),
            current_phase: None,
            total: Counters::default(),
            timeline: Vec::new(),
            recorder: None,
            spilled_seen: 0,
        }
    }

    /// Creates a machine with the paper's testbed configuration.
    pub fn skylake_testbed() -> Self {
        Self::new(MachineConfig::skylake_testbed())
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Sets the background interference profile on the pool link.
    pub fn set_interference(&mut self, profile: InterferenceProfile) {
        self.interference = profile;
    }

    /// Installs a dynamic tiering policy (see [`crate::tiering`]).
    ///
    /// Install before driving traffic: installation resets the hotness
    /// tracker, the epoch accumulator and the ping-pong damper history
    /// (migration statistics already accumulated are kept, so a report still
    /// reflects the whole run). With a static policy (the default) the
    /// machine never fires an epoch and behaves bit-identically to the
    /// pre-tiering simulator.
    pub fn set_tiering(&mut self, policy: Box<dyn TieringPolicy>) {
        let tracker = policy
            .epoch_lines()
            .map(|_| HotnessTracker::new(policy.decay()));
        self.space.set_hotness(tracker);
        let stats = self.tiering.stats;
        self.tiering = TieringRuntime::new(policy);
        self.tiering.stats = stats;
        // A raw boxed policy has no serializable description: machines with
        // one installed refuse to snapshot.
        self.tiering_spec = None;
    }

    /// Installs the policy described by a serializable [`TieringSpec`].
    pub fn set_tiering_spec(&mut self, spec: &TieringSpec) {
        self.set_tiering(spec.build());
        self.tiering_spec = Some(*spec);
    }

    /// Name of the installed tiering policy.
    pub fn tiering_policy_name(&self) -> &'static str {
        self.tiering.policy.name()
    }

    /// Migration statistics accumulated so far.
    pub fn tiering_stats(&self) -> TieringStats {
        self.tiering.stats
    }

    /// Enables or disables the hardware prefetcher (MSR 0x1a4 analogue).
    pub fn set_prefetch_enabled(&mut self, enabled: bool) {
        self.cache.set_prefetch_enabled(enabled);
    }

    /// Enables or disables the batched line-walk fast path (enabled by
    /// default). With batching off the machine processes every access with
    /// the per-line reference pipeline; results are bit-identical either way
    /// (guaranteed by the workspace property tests), only the wall-clock
    /// speed differs.
    pub fn set_batched_access(&mut self, enabled: bool) {
        self.batched = enabled;
    }

    /// Whether the batched line-walk fast path is enabled.
    pub fn batched_access(&self) -> bool {
        self.batched
    }

    /// Enables or disables the steady-state page-replay engine (enabled by
    /// default; only active on the batched pipeline). With replay on, long
    /// sequential streams whose per-page cache behaviour has been proven
    /// periodic are applied in closed form instead of walked line by line;
    /// reports stay bit-identical either way (guaranteed by the workspace
    /// property tests). Disabling mid-run is safe: any in-flight replay is
    /// materialized to the exact cache state first.
    pub fn set_replay(&mut self, enabled: bool) {
        self.cache.set_replay_enabled(enabled);
    }

    /// Whether the steady-state page-replay engine is enabled.
    pub fn replay_enabled(&self) -> bool {
        self.cache.replay_enabled()
    }

    /// Number of whole windows the replay engine has applied so far (each
    /// window is [`Machine::replay_window_pages`] pages). Zero means every
    /// access was simulated exactly.
    pub fn replay_windows(&self) -> u64 {
        self.cache.replay_windows()
    }

    /// Pages per replay window for this machine's cache geometry.
    pub fn replay_window_pages(&self) -> u64 {
        self.cache.replay_window_pages()
    }

    /// Number of whole passes the pass-level replay engine has applied so
    /// far (a pass is one full repeated bulk call over the same range,
    /// transient windows included). Zero means pass-level periodicity never
    /// engaged.
    pub fn replay_passes(&self) -> u64 {
        self.cache.replay_passes()
    }

    /// Number of strided elements the stride-aware replay engine has applied
    /// in closed form so far. Zero means no strided sweep ever engaged.
    pub fn replay_stride_elements(&self) -> u64 {
        self.cache.replay_stride_elements()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.clock_s
    }

    /// Installs a flight recorder (see `dismem_trace::flight`). Events are
    /// timestamped by simulated clocks only — the application-DRAM-line
    /// clock and the tiering epoch ordinal — so a recorded run's event
    /// stream is as deterministic as its [`RunReport`]. Recording is
    /// strictly read-only: the report of a recorded run is bit-identical to
    /// an unrecorded one. Capacity spills are reported from installation
    /// onwards.
    pub fn set_recorder(&mut self, recorder: Box<dyn Recorder>) {
        self.spilled_seen = self.space.spilled_pages();
        self.cache.set_replay_trace(recorder.enabled());
        self.recorder = Some(recorder);
    }

    /// Removes the installed flight recorder, draining any pending replay
    /// transitions and spill deltas into it first. Call after
    /// [`Machine::finish`] so the final chunk's events are included.
    pub fn take_recorder(&mut self) -> Option<Box<dyn Recorder>> {
        if self.recorder.is_some() {
            self.emit_chunk_trace();
        }
        self.cache.set_replay_trace(false);
        self.recorder.take()
    }

    /// The application-DRAM-line trace clock: demand/prefetch fills plus
    /// writebacks on both tiers, folded into the totals at chunk closes.
    /// Pipeline-identical (per-line, batched and replay agree bit for bit)
    /// and monotone, which makes it a sound timestamp base.
    fn app_lines_clock(&self) -> u64 {
        self.total.dram_lines_local
            + self.total.dram_lines_pool
            + self.total.writeback_lines_local
            + self.total.writeback_lines_pool
    }

    /// Drains replay transitions collected since the last chunk close and
    /// the capacity-spill delta into the recorder, stamped with the current
    /// application-line clock. Only called with a recorder installed.
    fn emit_chunk_trace(&mut self) {
        let app_lines = self.app_lines_clock();
        let transitions = self.cache.drain_replay_transitions();
        let spilled = self.space.spilled_pages();
        let Some(recorder) = self.recorder.as_deref_mut() else {
            return;
        };
        for transition in transitions {
            recorder.record_event(match transition {
                ReplayTransition::Engaged(level) => TraceEvent::ReplayEngaged {
                    app_lines,
                    mode: trace_mode(level),
                },
                ReplayTransition::Exited(level, reason) => TraceEvent::ReplayExited {
                    app_lines,
                    mode: trace_mode(level),
                    reason: reason.to_string(),
                },
            });
        }
        if spilled > self.spilled_seen {
            recorder.record_event(TraceEvent::TierSpill {
                app_lines,
                pages: spilled - self.spilled_seen,
            });
            self.spilled_seen = spilled;
        }
    }

    /// Finishes the run and produces the report. The machine can keep being
    /// used afterwards (e.g. to run another phase), but typically a fresh
    /// machine is created per run.
    pub fn finish(&mut self) -> RunReport {
        self.close_chunk();
        // A tiering epoch firing at that close deposits its migration traffic
        // into a fresh chunk; close again so it is timed and reported. The
        // second close cannot fire another epoch (migration traffic does not
        // count towards the epoch accumulator), so two closes always drain.
        self.close_chunk();
        debug_assert_eq!(self.chunk, Counters::default());
        let line_bytes = self.config.cache.line_bytes;
        let phases = self
            .phase_names
            .iter()
            .zip(&self.phase_counters)
            .zip(&self.phase_runtimes)
            .map(|((name, counters), runtime)| PhaseReport {
                name: name.clone(),
                counters: *counters,
                runtime_s: *runtime,
                line_bytes,
            })
            .collect();
        let allocations = self
            .space
            .allocations()
            .iter()
            .zip(self.space.placements())
            .map(|(rec, pl)| AllocationSummary {
                name: rec.name.clone(),
                site: rec.site.clone(),
                bytes: rec.bytes,
                order: rec.order,
                freed: rec.freed,
                pages_local: pl.pages_local,
                pages_pool: pl.pages_pool,
                dram_lines_local: pl.dram_lines_local,
                dram_lines_pool: pl.dram_lines_pool,
            })
            .collect();
        RunReport {
            config: self.config.clone(),
            phases,
            total: self.total,
            total_runtime_s: self.clock_s,
            allocations,
            timeline: self.timeline.clone(),
            page_histogram: self.space.histogram().clone(),
            peak_footprint_bytes: self.space.peak_footprint_bytes(),
            local_pages_used: self.space.local_pages_used(),
            pool_pages_used: self.space.pool_pages_used(),
            tiering: self.tiering_report(),
        }
    }

    fn tiering_report(&self) -> TieringReport {
        let s = self.tiering.stats;
        let migrated_pages = s.promotions + s.demotions;
        TieringReport {
            policy: self.tiering.policy.name().to_string(),
            epochs: s.epochs,
            promotions: s.promotions,
            demotions: s.demotions,
            migrated_pages,
            migrated_bytes: migrated_pages * dismem_trace::PAGE_SIZE,
            ping_pongs_damped: s.ping_pongs_damped,
            skipped_capacity: s.skipped_capacity,
            hot_set_shifts: s.hot_set_shifts,
            dwell_epochs_total: s.dwell_epochs_total,
            open_dwell_epochs: s.open_dwell_epochs,
            hot_set_pages_max: s.hot_set_pages_max,
        }
    }

    fn close_chunk(&mut self) {
        if self.chunk_pool_link_lines > 0 {
            // Fold the chunk's pool traffic into raw link bytes in one step:
            // exact payload × protocol overhead, rounded once per chunk
            // instead of once per line.
            let payload = (self.chunk_pool_link_lines * self.config.cache.line_bytes) as f64;
            self.chunk.link_raw_bytes =
                (payload * self.config.link.protocol_overhead()).round() as u64;
            self.chunk_pool_link_lines = 0;
        }
        if self.chunk == Counters::default() {
            // Nothing to time, but transitions recorded since the last close
            // (e.g. a reset with no traffic after it) still need draining.
            if self.recorder.is_some() {
                self.emit_chunk_trace();
            }
            return;
        }
        let loi = self.interference.loi_at(self.clock_s);
        let breakdown = self.timing.chunk_time(&self.chunk, loi);
        let duration = breakdown.total_s;
        self.timeline.push(TimelineSample {
            start_s: self.clock_s,
            duration_s: duration,
            counters: self.chunk,
            phase: self.current_phase,
        });
        if let Some(p) = self.current_phase {
            self.phase_counters[p].add(&self.chunk);
            self.phase_runtimes[p] += duration;
        }
        self.total.add(&self.chunk);
        self.clock_s += duration;
        // Application DRAM lines drive the tiering epoch clock (migration
        // lines deliberately excluded, so a migration burst cannot re-fire an
        // epoch on its own).
        let app_dram_lines = self.chunk.dram_lines_local
            + self.chunk.dram_lines_pool
            + self.chunk.writeback_lines_local
            + self.chunk.writeback_lines_pool;
        self.chunk = Counters::default();
        if self.recorder.is_some() {
            // Emit before a possible tiering epoch so replay transitions from
            // this chunk's walks order ahead of the epoch's events.
            self.emit_chunk_trace();
        }
        if let Some(epoch_lines) = self.tiering.policy.epoch_lines() {
            self.tiering.epoch_acc += app_dram_lines;
            if self.tiering.epoch_acc >= epoch_lines {
                self.tiering.epoch_acc = 0;
                self.run_tiering_epoch();
            }
        }
    }

    /// Completes a hotness epoch: folds the tracker, asks the policy for
    /// migrations, applies them to the address space and charges the moved
    /// pages as page-sized traffic on both tiers and the pool link (the
    /// charge lands in the chunk that is just opening, so the timing model
    /// prices it at the placement it created).
    ///
    /// Runs only between cache walks (chunk closes never happen mid-walk).
    /// Any applied migration hard-resets the replay engine: tier bindings are
    /// part of the environment a replayed window re-emits traffic against, so
    /// in-flight replay is materialized and all detection state (including an
    /// armed snapshot) is dropped before the next walk can arm or replay.
    fn run_tiering_epoch(&mut self) {
        let Some(tracker) = self.space.hotness_mut() else {
            return;
        };
        let dwell = tracker.end_epoch();
        let hot_pages = dwell.pages;
        {
            // Phase-dwell bookkeeping: each epoch extends the open dwell, and
            // a hot-set shift closes it (the new hot set starts a dwell of
            // one epoch). An epoch whose hot set vanished entirely leaves no
            // open dwell behind.
            let s = &mut self.tiering.stats;
            s.hot_set_pages_max = s.hot_set_pages_max.max(dwell.pages);
            if dwell.shifted {
                s.hot_set_shifts += 1;
                s.dwell_epochs_total += s.open_dwell_epochs;
                s.open_dwell_epochs = u64::from(dwell.pages > 0);
            } else if dwell.pages > 0 {
                s.open_dwell_epochs += 1;
            }
        }
        self.tiering.epoch += 1;
        let epoch = self.tiering.epoch;
        let cooldown = self.tiering.policy.cooldown_epochs();
        if cooldown > 0 {
            self.tiering
                .last_migrated
                .retain(|_, last| epoch - *last <= cooldown);
        }

        // Sample every bound page with its decayed heat, sorted hottest-first
        // (page number as tie-break) so policy decisions are deterministic
        // regardless of hash-map iteration order.
        let tracker = self.space.hotness().expect("tracker installed above");
        let mut samples: Vec<PageSample> = self
            .space
            .bound_pages()
            .map(|(page, tier)| PageSample {
                page,
                tier,
                heat: tracker.heat_of(page),
                cooling: self.tiering.damped(page, epoch, cooldown),
            })
            .collect();
        samples
            .sort_unstable_by(|a, b| b.heat.total_cmp(&a.heat).then_with(|| a.page.cmp(&b.page)));
        let occupancy = TierOccupancy {
            local_used: self.space.local_pages_used(),
            local_capacity: self
                .config
                .local
                .capacity_bytes
                .map(dismem_trace::access::pages_for),
            pool_used: self.space.pool_pages_used(),
            pool_capacity: self
                .config
                .pool
                .capacity_bytes
                .map(dismem_trace::access::pages_for),
        };
        let orders = self.tiering.policy.plan(epoch, &samples, &occupancy);

        // Epoch events share one timestamp: the application-line clock at the
        // chunk close that fired this epoch (totals already include it).
        let app_lines = self.app_lines_clock();
        let mut moved = 0u64;
        for order in orders {
            if self.tiering.damped(order.page, epoch, cooldown) {
                self.tiering.stats.ping_pongs_damped += 1;
                continue;
            }
            match self.space.rebind_page(order.page, order.to) {
                Ok(from) if from != order.to => {
                    moved += 1;
                    self.tiering.last_migrated.insert(order.page, epoch);
                    match order.to {
                        Tier::Local => self.tiering.stats.promotions += 1,
                        Tier::Pool => self.tiering.stats.demotions += 1,
                    }
                    if let Some(recorder) = self.recorder.as_deref_mut() {
                        recorder.record_event(TraceEvent::MigrationApplied {
                            epoch,
                            app_lines,
                            page: order.page,
                            from: trace_tier(from),
                            to: trace_tier(order.to),
                        });
                    }
                }
                Ok(_) => {}
                Err(crate::address_space::RebindError::NoCapacity) => {
                    self.tiering.stats.skipped_capacity += 1;
                }
                Err(crate::address_space::RebindError::Unbound) => {}
            }
        }
        self.tiering.stats.epochs += 1;
        if let Some(recorder) = self.recorder.as_deref_mut() {
            recorder.record_event(TraceEvent::EpochClosed {
                epoch,
                app_lines,
                hot_pages,
                dwell_epochs: self.tiering.stats.open_dwell_epochs,
                hot_set_shifts: self.tiering.stats.hot_set_shifts,
                migrated_pages: moved,
            });
        }
        if moved > 0 {
            // Each migrated page is read from one tier and written to the
            // other; one side is always the pool, so the whole payload also
            // crosses the link (folded into `link_raw_bytes` with protocol
            // overhead when this chunk closes).
            let lines = moved * LINES_PER_PAGE;
            self.chunk.migration_lines_local += lines;
            self.chunk.migration_lines_pool += lines;
            self.chunk_pool_link_lines += lines;
            // Rebinding pages changes where replayed DRAM events land: every
            // applied migration must drop ALL replay state — window, pass
            // and strided alike (the reset materializes first, so the cache
            // state stays exact).
            self.cache.replay_hard_reset();
        }
    }

    /// The chunk-close policy, shared by `maybe_close_chunk` and the batched
    /// element walk so the two pipelines can never disagree on boundaries.
    /// An associated function over the fields it needs, so callers holding
    /// disjoint field borrows (the batched walk's tally sink) can use it.
    fn chunk_full(config: &MachineConfig, chunk: &Counters) -> bool {
        chunk.bytes_dram(config.cache.line_bytes) >= config.chunk_bytes
            || chunk.flops >= config.chunk_flops
    }

    fn maybe_close_chunk(&mut self) {
        if Self::chunk_full(&self.config, &self.chunk) {
            self.close_chunk();
        }
    }

    /// Per-line reference drain: resolves the serving tier event by event
    /// through the shared counter mapping, folded once per drain.
    fn process_dram_events(&mut self) {
        // Drain into a local buffer to avoid borrowing issues.
        let mut events = std::mem::take(&mut self.dram_events);
        let mut tally = DramTally::default();
        for ev in events.drain(..) {
            let addr = ev.line_addr * CACHE_LINE_SIZE;
            // dismem-lint: allow(single-recording-point) — the per-line
            // reference pipeline resolves each event through the recording
            // point itself; this is the call into it, not a bypass.
            let tier = match self.space.dram_access(addr) {
                Ok(t) => t,
                Err(oom) => panic!("simulated OOM abort: {oom}"),
            };
            tally.tally(tier, ev.kind);
        }
        tally.fold_into(&mut self.chunk, &mut self.chunk_pool_link_lines);
        self.dram_events = events;
    }

    /// Batched walk over a contiguous run of cache lines: the cache walks
    /// the whole run in one call and every DRAM transaction is tallied
    /// inline by a [`TallySink`] — no event queue, no per-line drain.
    fn walk_lines_batched(&mut self, first_line: u64, last_line: u64, is_write: bool) {
        let mut sink = TallySink::new(&mut self.space);
        self.cache.demand_access_range(
            first_line,
            last_line - first_line + 1,
            is_write,
            &mut self.chunk,
            &mut sink,
        );
        sink.flush();
        let mut tally = sink.tally;
        tally.fold_into(&mut self.chunk, &mut self.chunk_pool_link_lines);
    }

    /// Batched scattered-element walk shared by `gather_batch` and
    /// `strided_batch`: element line-runs stream through one tally sink, and
    /// *contiguous* consecutive elements (the next element's first line
    /// exactly follows the previous element's last — dense sub-line strided
    /// sweeps, multi-line elements laid out back to back, and sorted
    /// gathers at the points where they cross a line boundary) are merged
    /// into a single cache walk so repeated-page traffic hits the page
    /// memos and the replay detector sees whole runs instead of
    /// per-element fragments. Consecutive elements that *share* a line
    /// (e.g. 8-byte gathers of neighbouring slots) deliberately do not
    /// merge: each is a separate demand reference, and dropping the repeat
    /// would break bit-identity with the per-element reference path.
    ///
    /// Chunk-close decisions stay identical to the per-element reference
    /// path: a merge is only allowed while the worst-case DRAM traffic of
    /// the merged lines cannot reach the chunk threshold, which proves every
    /// skipped intermediate `chunk_full` check would have returned false
    /// (flops do not change inside the walk, and the byte counters are
    /// monotone).
    fn walk_elements_batched(
        &mut self,
        handle: ObjectHandle,
        offsets: impl Iterator<Item = u64>,
        elem_bytes: u64,
        kind: AccessKind,
    ) {
        let object_bytes = self.space.object_bytes(handle);
        let base = self.space.base_addr(handle);
        let is_write = kind.is_write();
        // Worst-case DRAM bytes one demand line can produce: its fill, a
        // dirty LLC victim writeback from that fill, and a second writeback
        // when its dirty L2 victim misses the LLC and evicts another dirty
        // line there — three transactions, and the same triple for each of
        // up to `degree` prefetches it can trigger.
        let worst_bytes_per_line =
            3 * (1 + self.config.prefetch.degree as u64) * self.config.cache.line_bytes;
        let line_bytes = self.config.cache.line_bytes;

        let mut sink = TallySink::new(&mut self.space);
        // The contiguous run being accumulated, plus how many more lines may
        // be merged into it before a chunk_full check must be taken.
        let mut run: Option<(u64, u64)> = None;
        let mut merge_budget_lines = 0u64;
        // Strictly below the threshold: `chunk_full` fires at >=, so the
        // merged traffic must not be able to even *reach* `chunk_bytes` at a
        // skipped intermediate element.
        let fresh_budget = |chunk: &Counters, config: &MachineConfig| {
            config
                .chunk_bytes
                .saturating_sub(chunk.bytes_dram(line_bytes))
                .saturating_sub(1)
                / worst_bytes_per_line.max(1)
        };

        for offset in offsets {
            debug_assert!(
                offset + elem_bytes <= object_bytes.max(dismem_trace::PAGE_SIZE),
                "access beyond end of object (offset {offset} + {elem_bytes} > {object_bytes})"
            );
            let addr = base + offset;
            let first_line = addr / CACHE_LINE_SIZE;
            let last_line = (addr + elem_bytes - 1) / CACHE_LINE_SIZE;
            let lines = last_line - first_line + 1;

            if let Some((_, run_last)) = run {
                if first_line == run_last + 1 && lines <= merge_budget_lines {
                    run = run.map(|(f, _)| (f, last_line));
                    merge_budget_lines -= lines;
                    continue;
                }
            }

            // Flush the pending run, then take the chunk_full decision the
            // reference path would have taken at this element boundary.
            if let Some((run_first, run_last)) = run.take() {
                self.cache.demand_access_range(
                    run_first,
                    run_last - run_first + 1,
                    is_write,
                    &mut self.chunk,
                    &mut sink,
                );
                sink.tally
                    .fold_into(&mut self.chunk, &mut self.chunk_pool_link_lines);
                if Self::chunk_full(&self.config, &self.chunk) {
                    // The sink's borrow of `self.space` ends with this flush
                    // (its last use), freeing `self` for the chunk close.
                    sink.flush();
                    self.close_chunk();
                    sink = TallySink::new(&mut self.space);
                }
            }
            merge_budget_lines = fresh_budget(&self.chunk, &self.config).saturating_sub(lines);
            run = Some((first_line, last_line));
        }

        if let Some((run_first, run_last)) = run {
            self.cache.demand_access_range(
                run_first,
                run_last - run_first + 1,
                is_write,
                &mut self.chunk,
                &mut sink,
            );
        }
        sink.flush();
        let mut tally = sink.tally;
        tally.fold_into(&mut self.chunk, &mut self.chunk_pool_link_lines);
        self.maybe_close_chunk();
    }

    /// Direct access to the underlying address space (placement inspection).
    pub fn address_space(&self) -> &AddressSpace {
        &self.space
    }

    /// Frees an object, surfacing invalid frees (unknown handle, double
    /// free) as a typed [`FreeError`] instead of aborting. The
    /// [`MemoryEngine::free`] implementation panics on these errors to keep
    /// the abort-on-programming-error contract workloads rely on; callers
    /// that want to recover use this entry point.
    pub fn try_free(&mut self, handle: ObjectHandle) -> Result<(), FreeError> {
        // Close the chunk first so traffic before the free is timed with the
        // placement that produced it.
        self.close_chunk();
        self.space.free(handle)
    }

    /// Freezes the complete machine state into a [`MachineSnapshot`].
    ///
    /// Callable at any point between engine calls; the open timing chunk is
    /// captured as-is (closing it would move chunk boundaries, breaking
    /// bit-identity with an uninterrupted run). Per the replay-state capture
    /// rule, the replay engine is hard-reset first: any in-flight replay is
    /// materialized exactly (no counter effect) and only the master switch
    /// and lifetime totals are serialized.
    ///
    /// Errors with [`SnapshotError::UnsupportedPolicy`] when the tiering
    /// policy was installed as a raw box (no [`TieringSpec`] on record) and
    /// with [`SnapshotError::RecorderInstalled`] while a flight recorder is
    /// attached.
    pub fn snapshot(&mut self) -> Result<MachineSnapshot, SnapshotError> {
        if self.recorder.is_some() {
            return Err(SnapshotError::RecorderInstalled);
        }
        let Some(spec) = self.tiering_spec else {
            return Err(SnapshotError::UnsupportedPolicy);
        };
        self.cache.replay_hard_reset();
        debug_assert!(
            self.dram_events.is_empty(),
            "per-line events drain within each access"
        );
        // dismem-lint: allow(hash-iteration) — damper entries are sorted by
        // page immediately below.
        let mut last_migrated: Vec<PageEpoch> = self
            .tiering
            .last_migrated
            .iter()
            .map(|(&page, &epoch)| PageEpoch { page, epoch })
            .collect();
        last_migrated.sort_unstable_by_key(|e| e.page);
        Ok(MachineSnapshot {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            interference: self.interference.clone(),
            clock_s: self.clock_s,
            chunk: self.chunk,
            chunk_pool_link_lines: self.chunk_pool_link_lines,
            batched: self.batched,
            spilled_seen: self.spilled_seen,
            space: self.space.snapshot_state(),
            cache: self.cache.snapshot_state(),
            tiering: TieringState {
                spec,
                epoch_acc: self.tiering.epoch_acc,
                epoch: self.tiering.epoch,
                last_migrated,
                stats: self.tiering.stats,
            },
            phase_names: self.phase_names.clone(),
            phase_counters: self.phase_counters.clone(),
            phase_runtimes: self.phase_runtimes.clone(),
            current_phase: self.current_phase,
            total: self.total,
            timeline: self.timeline.clone(),
        })
    }

    /// Rebuilds a machine from a [`MachineSnapshot`], inverting
    /// [`Machine::snapshot`]: the restored machine continues the run
    /// bit-identically to one that was never interrupted (the workspace
    /// property tests pin this across all three pipelines). State that is
    /// transient between engine calls (resolve memo, prefetch scratch,
    /// replay detection) restarts empty by construction.
    pub fn restore(snapshot: &MachineSnapshot) -> Result<Self, SnapshotError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch {
                found: snapshot.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let config = snapshot.config.clone();
        let space = AddressSpace::from_snapshot_state(&snapshot.space)?;
        let cache = CacheSim::from_snapshot_state(config.cache, config.prefetch, &snapshot.cache)?;
        let timing = TimingModel::new(config.clone());
        let phases = snapshot.phase_names.len();
        if snapshot.phase_counters.len() != phases
            || snapshot.phase_runtimes.len() != phases
            || snapshot.current_phase.is_some_and(|p| p >= phases)
        {
            return Err(SnapshotError::Corrupt(
                "phase vectors disagree in length".into(),
            ));
        }
        let mut tiering = TieringRuntime::new(snapshot.tiering.spec.build());
        tiering.epoch_acc = snapshot.tiering.epoch_acc;
        tiering.epoch = snapshot.tiering.epoch;
        tiering.last_migrated = snapshot
            .tiering
            .last_migrated
            .iter()
            .map(|e| (e.page, e.epoch))
            .collect();
        tiering.stats = snapshot.tiering.stats;
        Ok(Self {
            config,
            space,
            cache,
            timing,
            interference: snapshot.interference.clone(),
            clock_s: snapshot.clock_s,
            chunk: snapshot.chunk,
            dram_events: Vec::with_capacity(64),
            chunk_pool_link_lines: snapshot.chunk_pool_link_lines,
            batched: snapshot.batched,
            tiering,
            tiering_spec: Some(snapshot.tiering.spec),
            phase_names: snapshot.phase_names.clone(),
            phase_counters: snapshot.phase_counters.clone(),
            phase_runtimes: snapshot.phase_runtimes.clone(),
            current_phase: snapshot.current_phase,
            total: snapshot.total,
            timeline: snapshot.timeline.clone(),
            recorder: None,
            spilled_seen: snapshot.spilled_seen,
        })
    }
}

fn trace_mode(level: ReplayLevel) -> ReplayMode {
    match level {
        ReplayLevel::Window => ReplayMode::Window,
        ReplayLevel::Pass => ReplayMode::Pass,
        ReplayLevel::Strided => ReplayMode::Strided,
    }
}

fn trace_tier(tier: Tier) -> TraceTier {
    match tier {
        Tier::Local => TraceTier::Local,
        Tier::Pool => TraceTier::Pool,
    }
}

impl MemoryEngine for Machine {
    fn alloc_with_policy(
        &mut self,
        name: &str,
        site: &str,
        bytes: u64,
        policy: PlacementPolicy,
    ) -> ObjectHandle {
        self.space.alloc(name, site, bytes, policy)
    }

    fn free(&mut self, handle: ObjectHandle) {
        if let Err(e) = self.try_free(handle) {
            panic!("{e}");
        }
    }

    fn phase_start(&mut self, name: &str) {
        self.close_chunk();
        assert!(
            self.current_phase.is_none(),
            "phase_start('{name}') while another phase is open"
        );
        self.phase_names.push(name.to_string());
        self.phase_counters.push(Counters::default());
        self.phase_runtimes.push(0.0);
        self.current_phase = Some(self.phase_names.len() - 1);
    }

    fn phase_end(&mut self) {
        assert!(
            self.current_phase.is_some(),
            "phase_end without phase_start"
        );
        self.close_chunk();
        self.current_phase = None;
    }

    fn access(&mut self, handle: ObjectHandle, offset: u64, bytes: u64, kind: AccessKind) {
        if bytes == 0 {
            return;
        }
        let object_bytes = self.space.object_bytes(handle);
        debug_assert!(
            offset + bytes <= object_bytes.max(dismem_trace::PAGE_SIZE),
            "access beyond end of object (offset {offset} + {bytes} > {object_bytes})"
        );
        let base = self.space.base_addr(handle) + offset;
        let first_line = base / CACHE_LINE_SIZE;
        let last_line = (base + bytes - 1) / CACHE_LINE_SIZE;
        let is_write = kind.is_write();
        if self.batched {
            self.walk_lines_batched(first_line, last_line, is_write);
        } else {
            for line in first_line..=last_line {
                self.cache
                    .demand_access(line, is_write, &mut self.chunk, &mut self.dram_events);
                if !self.dram_events.is_empty() {
                    self.process_dram_events();
                }
            }
        }
        self.maybe_close_chunk();
    }

    fn gather_batch(
        &mut self,
        handle: ObjectHandle,
        offsets: &[u64],
        elem_bytes: u64,
        kind: AccessKind,
    ) {
        if elem_bytes == 0 || offsets.is_empty() {
            return;
        }
        if !self.batched {
            // Reference path: exactly the trait's default per-element loop.
            for &off in offsets {
                self.access(handle, off, elem_bytes, kind);
            }
            return;
        }
        self.walk_elements_batched(handle, offsets.iter().copied(), elem_bytes, kind);
    }

    fn strided_batch(
        &mut self,
        handle: ObjectHandle,
        start: u64,
        count: u64,
        elem_bytes: u64,
        stride_bytes: u64,
        kind: AccessKind,
    ) {
        if elem_bytes == 0 || count == 0 {
            return;
        }
        if !self.batched {
            let mut offset = start;
            for _ in 0..count {
                self.access(handle, offset, elem_bytes, kind);
                offset += stride_bytes;
            }
            return;
        }
        self.walk_elements_batched(
            handle,
            (0..count).map(|i| start + i * stride_bytes),
            elem_bytes,
            kind,
        );
    }

    fn flops(&mut self, n: u64) {
        self.chunk.flops += n;
        self.maybe_close_chunk();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_trace::PAGE_SIZE;

    fn machine_with_local_cap(pages: u64) -> Machine {
        let config = MachineConfig::test_config().with_local_capacity(pages * PAGE_SIZE);
        Machine::new(config)
    }

    #[test]
    fn simple_run_produces_consistent_report() {
        let mut m = Machine::new(MachineConfig::test_config());
        let a = m.alloc("A", "t", 1 << 20);
        m.phase_start("p1");
        m.touch(a, 1 << 20);
        m.flops(1_000_000);
        m.phase_end();
        let report = m.finish();

        assert_eq!(report.phases.len(), 1);
        let p = &report.phases[0];
        assert_eq!(p.name, "p1");
        assert!(p.runtime_s > 0.0);
        assert_eq!(p.counters.flops, 1_000_000);
        // All traffic local (no capacity limit).
        assert_eq!(report.total.dram_lines_pool, 0);
        assert!(report.total.dram_lines_local > 0);
        assert_eq!(report.remote_access_ratio(), 0.0);
        assert_eq!(report.peak_footprint_bytes, 1 << 20);
        // Conservation: lines into L2 = demand misses + prefetches.
        assert_eq!(
            report.total.l2_lines_in,
            report.total.l2_demand_misses + report.total.pf_issued
        );
    }

    #[test]
    fn capacity_pressure_sends_traffic_to_pool() {
        // 16 pages local, object of 64 pages: most traffic should go remote.
        let mut m = machine_with_local_cap(16);
        let a = m.alloc("big", "t", 64 * PAGE_SIZE);
        m.phase_start("p1");
        m.touch(a, 64 * PAGE_SIZE);
        m.read(a, 0, 64 * PAGE_SIZE);
        m.phase_end();
        let report = m.finish();
        assert!(report.total.dram_lines_pool > 0);
        assert!(report.remote_access_ratio() > 0.4);
        assert!(report.remote_capacity_ratio() > 0.6);
        assert!(report.total.link_raw_bytes > 0);
        assert!(report.allocation("big").unwrap().pages_pool > 0);
    }

    #[test]
    fn interference_slows_down_pool_bound_run() {
        let build = |loi: f64| {
            let mut m = machine_with_local_cap(1);
            m.set_interference(InterferenceProfile::Constant(loi));
            let a = m.alloc("remote", "t", 8 << 20);
            m.phase_start("p1");
            // Stream the object twice: almost everything remote.
            m.read(a, 0, 8 << 20);
            m.read(a, 0, 8 << 20);
            m.phase_end();
            m.finish().total_runtime_s
        };
        let t0 = build(0.0);
        let t50 = build(0.5);
        assert!(
            t50 > t0 * 1.05,
            "50% LoI should slow a pool-bound run: {t50} vs {t0}"
        );
    }

    #[test]
    fn prefetch_toggle_changes_performance_not_placement() {
        let run = |prefetch: bool| {
            let mut m = Machine::new(MachineConfig::test_config().with_prefetch(prefetch));
            let a = m.alloc("A", "t", 4 << 20);
            m.phase_start("p1");
            m.touch(a, 4 << 20);
            m.read(a, 0, 4 << 20);
            m.phase_end();
            m.finish()
        };
        let with_pf = run(true);
        let without_pf = run(false);
        assert!(with_pf.total.pf_issued > 0);
        assert_eq!(without_pf.total.pf_issued, 0);
        assert!(
            with_pf.total_runtime_s < without_pf.total_runtime_s,
            "prefetching must help a streaming run"
        );
        assert_eq!(
            with_pf.local_pages_used, without_pf.local_pages_used,
            "placement must not depend on prefetching"
        );
    }

    #[test]
    fn timeline_covers_total_runtime() {
        let mut m = Machine::new(MachineConfig::test_config());
        let a = m.alloc("A", "t", 2 << 20);
        m.phase_start("p1");
        m.touch(a, 2 << 20);
        m.phase_end();
        let report = m.finish();
        let sum: f64 = report.timeline.iter().map(|s| s.duration_s).sum();
        assert!((sum - report.total_runtime_s).abs() < 1e-12);
        assert!(!report.timeline.is_empty());
        // Samples are ordered and contiguous.
        for w in report.timeline.windows(2) {
            assert!(w[1].start_s >= w[0].start_s);
        }
    }

    #[test]
    fn free_closes_chunk_and_releases_capacity() {
        let mut m = machine_with_local_cap(4);
        let temp = m.alloc("temp", "init", 4 * PAGE_SIZE);
        m.phase_start("init");
        m.touch(temp, 4 * PAGE_SIZE);
        m.phase_end();
        m.free(temp);
        let hot = m.alloc("hot", "solve", 4 * PAGE_SIZE);
        m.phase_start("solve");
        m.touch(hot, 4 * PAGE_SIZE);
        m.read(hot, 0, 4 * PAGE_SIZE);
        m.phase_end();
        let report = m.finish();
        let hot_alloc = report.allocation("hot").unwrap();
        assert_eq!(hot_alloc.pages_pool, 0, "freed local pages must be reused");
        assert!(report.allocation("temp").unwrap().freed);
    }

    #[test]
    fn flops_only_run_is_compute_bound() {
        let mut m = Machine::new(MachineConfig::test_config());
        m.phase_start("compute");
        m.flops(5_000_000_000);
        m.phase_end();
        let report = m.finish();
        let expected = 5_000_000_000.0 / m.config().peak_flops;
        assert!((report.total_runtime_s - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn phase_counters_sum_to_total() {
        let mut m = Machine::new(MachineConfig::test_config());
        let a = m.alloc("A", "t", 1 << 20);
        m.phase_start("p1");
        m.touch(a, 1 << 20);
        m.phase_end();
        m.phase_start("p2");
        m.read(a, 0, 1 << 20);
        m.flops(123);
        m.phase_end();
        let report = m.finish();
        let mut summed = Counters::default();
        for p in &report.phases {
            summed.add(&p.counters);
        }
        assert_eq!(summed, report.total);
        let phase_time: f64 = report.phases.iter().map(|p| p.runtime_s).sum();
        assert!((phase_time - report.total_runtime_s).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "phase_end without")]
    fn unbalanced_phase_panics() {
        let mut m = Machine::new(MachineConfig::test_config());
        m.phase_end();
    }

    #[test]
    #[should_panic(expected = "simulated OOM abort")]
    fn oom_aborts_run() {
        let config = MachineConfig::test_config()
            .with_local_capacity(PAGE_SIZE)
            .with_pool_capacity(PAGE_SIZE);
        let mut m = Machine::new(config);
        let a = m.alloc("A", "t", 4 * PAGE_SIZE);
        m.touch(a, 4 * PAGE_SIZE);
    }

    #[test]
    fn batched_and_per_line_paths_are_bit_identical() {
        let run = |batched: bool, big_cache: bool| {
            let mut config = MachineConfig::test_config().with_local_capacity(24 * PAGE_SIZE);
            if big_cache {
                // Production-like geometry: 512 L2 sets / 2 MiB LLC.
                config.cache = crate::config::CacheParams::scaled_emulation();
            }
            let mut m = Machine::new(config);
            m.set_batched_access(batched);
            assert_eq!(m.batched_access(), batched);
            let a = m.alloc("stream", "t", 2 << 20);
            let b = m.alloc("table", "t", 1 << 20);
            m.phase_start("mixed");
            m.touch(a, 2 << 20);
            m.touch(b, 1 << 20);
            m.read(a, 0, 2 << 20);
            m.strided(b, 8, 500, 16, 1024, AccessKind::Read);
            m.gather(b, &[0, 64, 8192, 128, 65_536, 40], 8);
            m.scatter(a, &[4096, 0, 123_456], 8);
            m.flops(2_000_000);
            m.phase_end();
            m.free(b);
            let c = m.alloc("late", "t", 256 * 1024);
            m.phase_start("tail");
            m.touch(c, 256 * 1024);
            m.read(c, 0, 256 * 1024);
            // Interrupt a stream with conflicting traffic, then resume it:
            // prefetched-ahead lines may be conflict-evicted in between.
            m.read(a, 0, 64 * 1024);
            m.read(c, 0, 256 * 1024);
            m.read(a, 64 * 1024, 64 * 1024);
            m.phase_end();
            m.finish()
        };
        for big_cache in [false, true] {
            let batched = run(true, big_cache);
            let per_line = run(false, big_cache);
            assert_eq!(batched, per_line);
        }
    }

    #[test]
    fn replay_engages_on_long_streams_and_stays_bit_identical() {
        let run = |batched: bool, replay: bool| {
            let mut config = MachineConfig::test_config().with_local_capacity(700 * PAGE_SIZE);
            config.cache = crate::config::CacheParams::scaled_emulation();
            let mut m = Machine::new(config);
            m.set_batched_access(batched);
            m.set_replay(replay);
            let bytes = 4 << 20; // 1024 pages: crosses the local→pool boundary
            let a = m.alloc("stream", "t", bytes);
            m.phase_start("p");
            m.touch(a, bytes);
            m.read(a, 0, bytes);
            m.read(a, 0, bytes);
            m.phase_end();
            let windows = m.replay_windows();
            (m.finish(), windows)
        };
        let (with_replay, windows) = run(true, true);
        let (without_replay, no_windows) = run(true, false);
        let (per_line, _) = run(false, false);
        assert!(windows > 0, "replay must engage on a 1024-page warm stream");
        assert_eq!(no_windows, 0);
        assert_eq!(with_replay, without_replay);
        assert_eq!(with_replay, per_line);
    }

    /// A scaffold for tiering tests: a cold object fills the whole local
    /// tier, a hot object lands entirely on the pool, and the hot object is
    /// then streamed `passes` times. A promotion policy must demote the cold
    /// pages and pull the hot ones local.
    fn run_hot_cold(policy: Option<Box<dyn TieringPolicy>>, passes: usize) -> RunReport {
        let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
        let mut m = Machine::new(config);
        if let Some(policy) = policy {
            m.set_tiering(policy);
        }
        let cold = m.alloc("cold", "t", 40 * PAGE_SIZE);
        let hot = m.alloc("hot", "t", 32 * PAGE_SIZE);
        m.phase_start("init");
        m.touch(cold, 40 * PAGE_SIZE);
        m.touch(hot, 32 * PAGE_SIZE);
        m.phase_end();
        m.phase_start("loop");
        for _ in 0..passes {
            m.read(hot, 0, 32 * PAGE_SIZE);
        }
        m.phase_end();
        m.finish()
    }

    fn hot_promote_policy() -> Box<dyn TieringPolicy> {
        Box::new(crate::tiering::HotPromote {
            demote_heat: 8.0,
            ..crate::tiering::HotPromote::new(4096, 32.0)
        })
    }

    #[test]
    fn hot_promote_migrates_hot_pages_and_beats_static() {
        let static_report = run_hot_cold(None, 12);
        let promoted = run_hot_cold(Some(hot_promote_policy()), 12);

        assert_eq!(
            static_report.tiering,
            crate::report::TieringReport::default()
        );
        assert_eq!(static_report.total.migration_lines_pool, 0);

        let t = &promoted.tiering;
        assert_eq!(t.policy, "hot-promote");
        assert!(t.epochs > 0, "epochs must fire: {t:?}");
        // One hot-set shift at most: the init pass (touching both objects)
        // forms its own hot set, and the loop's contraction to the hot object
        // may close it. From then on the hot set is stable, so the run ends
        // in a long open dwell.
        assert!(
            t.hot_set_shifts <= 1,
            "stable hot set must not thrash: {t:?}"
        );
        assert!(t.open_dwell_epochs > 0, "dwell must be measured: {t:?}");
        assert!(t.hot_set_pages_max > 0);
        assert!(t.mean_dwell_epochs() >= 1.0);
        assert!(t.promotions > 0, "hot pool pages must be promoted: {t:?}");
        assert!(t.demotions > 0, "cold local pages must make room: {t:?}");
        assert_eq!(t.migrated_pages, t.promotions + t.demotions);
        assert_eq!(t.migrated_bytes, t.migrated_pages * PAGE_SIZE);
        // Migration traffic is visible in the counters and charged to the
        // link (raw bytes with protocol overhead).
        assert_eq!(
            promoted.total.migration_lines_pool,
            t.migrated_pages * (PAGE_SIZE / 64)
        );
        assert_eq!(
            promoted.total.migration_lines_local,
            promoted.total.migration_lines_pool
        );
        assert!(promoted.migration_link_raw_bytes() > t.migrated_bytes);
        // The whole point: serving the hot working set locally wins despite
        // paying for the migrations.
        assert!(
            promoted.total_runtime_s < static_report.total_runtime_s * 0.95,
            "hot-promote {} vs static {}",
            promoted.total_runtime_s,
            static_report.total_runtime_s
        );
        assert!(promoted.remote_access_ratio() < static_report.remote_access_ratio());
        // Placement bookkeeping stays consistent after migrations.
        assert_eq!(
            promoted.local_pages_used + promoted.pool_pages_used,
            static_report.local_pages_used + static_report.pool_pages_used
        );
        let hot_alloc = promoted.allocation("hot").unwrap();
        assert!(hot_alloc.pages_local > 0, "hot object must end up local");
    }

    #[test]
    fn periodic_rebalance_swaps_hot_for_cold() {
        let policy = Box::new(crate::tiering::PeriodicRebalance::new(4096, 2, 64));
        let report = run_hot_cold(Some(policy), 12);
        let t = &report.tiering;
        assert_eq!(t.policy, "periodic-rebalance");
        assert!(t.promotions > 0, "{t:?}");
        assert!(t.demotions > 0, "{t:?}");
        let static_report = run_hot_cold(None, 12);
        assert!(report.total_runtime_s < static_report.total_runtime_s);
    }

    #[test]
    fn static_tiering_policy_is_bit_identical_to_default() {
        let default_report = run_hot_cold(None, 6);
        let static_report = run_hot_cold(Some(Box::new(crate::tiering::Static)), 6);
        assert_eq!(default_report, static_report);
    }

    #[test]
    fn tiering_is_bit_identical_across_pipelines() {
        let run = |batched: bool, replay: bool| {
            let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
            let mut m = Machine::new(config);
            m.set_batched_access(batched);
            m.set_replay(replay);
            m.set_tiering(hot_promote_policy());
            let cold = m.alloc("cold", "t", 40 * PAGE_SIZE);
            let hot = m.alloc("hot", "t", 32 * PAGE_SIZE);
            m.phase_start("p");
            m.touch(cold, 40 * PAGE_SIZE);
            m.touch(hot, 32 * PAGE_SIZE);
            for _ in 0..10 {
                m.read(hot, 0, 32 * PAGE_SIZE);
            }
            m.gather(cold, &[0, 4096, 128, 65_536], 8);
            m.read(cold, 0, 12 * PAGE_SIZE);
            m.phase_end();
            m.finish()
        };
        let per_line = run(false, false);
        let batched = run(true, false);
        let with_replay = run(true, true);
        assert!(per_line.tiering.promotions > 0);
        assert_eq!(batched, per_line, "batched diverged under migrations");
        assert_eq!(with_replay, per_line, "replay diverged under migrations");
    }

    #[test]
    fn recorded_run_is_bit_identical_and_captures_the_event_stream() {
        use dismem_trace::FlightRecorder;
        let run = |record: bool| {
            let config = MachineConfig::test_config().with_local_capacity(40 * PAGE_SIZE);
            let mut m = Machine::new(config);
            if record {
                m.set_recorder(Box::new(FlightRecorder::new()));
            }
            m.set_tiering(hot_promote_policy());
            let cold = m.alloc("cold", "t", 40 * PAGE_SIZE);
            let hot = m.alloc("hot", "t", 32 * PAGE_SIZE);
            m.phase_start("p");
            m.touch(cold, 40 * PAGE_SIZE);
            m.touch(hot, 32 * PAGE_SIZE);
            for _ in 0..10 {
                m.read(hot, 0, 32 * PAGE_SIZE);
            }
            m.phase_end();
            let report = m.finish();
            (report, m.take_recorder())
        };
        let (recorded, recorder) = run(true);
        let (unrecorded, no_recorder) = run(false);
        assert!(no_recorder.is_none());
        assert_eq!(recorded, unrecorded, "recording must not perturb the run");

        let recorder = recorder
            .expect("recorder comes back")
            .into_any()
            .downcast::<FlightRecorder>()
            .expect("flight recorder");
        let events = recorder.events();
        assert!(!events.is_empty());
        let count = |name: &str| events.iter().filter(|e| e.name() == name).count() as u64;
        assert_eq!(count("EpochClosed"), recorded.tiering.epochs);
        assert_eq!(count("MigrationApplied"), recorded.tiering.migrated_pages);
        let spilled: u64 = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::TierSpill { pages, .. } => Some(*pages),
                _ => None,
            })
            .sum();
        // The hot object's 32 pages land on the pool after the cold object
        // fills the local tier.
        assert_eq!(spilled, 32);
        // Timestamps are monotone within the simulator stream.
        let stamps: Vec<u64> = events.iter().map(TraceEvent::timestamp).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
        // The metrics registry folded the same totals.
        let metrics = recorder.metrics();
        assert_eq!(
            metrics.counter("sim.epochs_closed"),
            recorded.tiering.epochs
        );
        assert_eq!(
            metrics.counter("sim.migrated_pages_total"),
            recorded.tiering.migrated_pages
        );
    }

    #[test]
    fn replay_transitions_are_recorded_with_reasons() {
        use dismem_trace::FlightRecorder;
        let mut config = MachineConfig::test_config().with_local_capacity(700 * PAGE_SIZE);
        config.cache = crate::config::CacheParams::scaled_emulation();
        let mut m = Machine::new(config);
        m.set_recorder(Box::new(FlightRecorder::new()));
        let bytes = 4 << 20;
        let a = m.alloc("stream", "t", bytes);
        m.phase_start("p");
        m.touch(a, bytes);
        m.read(a, 0, bytes);
        m.read(a, 0, bytes);
        m.phase_end();
        m.finish();
        let recorder = m
            .take_recorder()
            .expect("recorder installed")
            .into_any()
            .downcast::<FlightRecorder>()
            .expect("flight recorder");
        let engaged = recorder
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::ReplayEngaged { .. }))
            .count();
        assert!(engaged > 0, "warm stream must engage replay");
        // Every exit carries a vocabulary reason.
        for event in recorder.events() {
            if let TraceEvent::ReplayExited { reason, .. } = event {
                assert!(
                    ["pattern-break", "hard-reset", "cache-reset"].contains(&reason.as_str()),
                    "unexpected exit reason {reason}"
                );
            }
        }
        assert_eq!(recorder.metrics().counter("replay.engaged"), engaged as u64);
    }

    #[test]
    fn try_free_surfaces_typed_errors() {
        let mut m = Machine::new(MachineConfig::test_config());
        let a = m.alloc("A", "t", PAGE_SIZE);
        m.touch(a, PAGE_SIZE);
        m.try_free(a).unwrap();
        assert!(matches!(
            m.try_free(a),
            Err(crate::address_space::FreeError::DoubleFree { .. })
        ));
        assert!(matches!(
            m.try_free(ObjectHandle(99)),
            Err(crate::address_space::FreeError::UnknownHandle(_))
        ));
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn engine_free_still_panics_on_double_free() {
        let mut m = Machine::new(MachineConfig::test_config());
        let a = m.alloc("A", "t", PAGE_SIZE);
        m.free(a);
        m.free(a);
    }

    #[test]
    fn force_remote_policy_places_object_on_pool() {
        let mut m = Machine::new(MachineConfig::test_config());
        let a = m.alloc_with_policy("arr", "lbench", 1 << 20, PlacementPolicy::ForceRemote);
        m.phase_start("kernel");
        m.touch(a, 1 << 20);
        m.read(a, 0, 1 << 20);
        m.phase_end();
        let report = m.finish();
        assert!(report.remote_access_ratio() > 0.99);
        assert_eq!(report.allocation("arr").unwrap().pages_local, 0);
    }
}
