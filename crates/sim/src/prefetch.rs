//! L2 hardware stream prefetcher model.
//!
//! Models the per-core streamer the paper enables/disables through MSR 0x1a4:
//! it tracks sequential access streams within 4 KiB pages and, once a stream
//! is confirmed, fetches the next few lines ahead of the demand stream. It
//! never crosses page boundaries (real hardware cannot, because it works on
//! physical addresses).

use crate::config::PrefetchParams;
use dismem_trace::{CACHE_LINE_SIZE, PAGE_SIZE};

/// Cache lines per page.
const LINES_PER_PAGE: u64 = PAGE_SIZE / CACHE_LINE_SIZE;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StreamEntry {
    pub(crate) page: u64,
    pub(crate) last_line: u64,
    /// Consecutive sequential hits observed.
    pub(crate) run: u32,
    /// LRU timestamp.
    pub(crate) stamp: u64,
    pub(crate) valid: bool,
}

/// Frozen copy of the prefetcher state taken by the replay engine at a
/// window boundary (see `crate::replay`).
#[derive(Debug, Clone)]
pub(crate) struct PrefetcherSnapshot {
    pub(crate) entries: Vec<StreamEntry>,
    pub(crate) clock: u64,
    /// Captured for the replay feedback gate; the useful counter is not
    /// frozen because replay advances it live, in closed form.
    pub(crate) feedback_useless: u64,
    pub(crate) enabled: bool,
}

/// Stream prefetcher state.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    params: PrefetchParams,
    pub(crate) entries: Vec<StreamEntry>,
    pub(crate) clock: u64,
    /// Accuracy-feedback counters (decayed periodically): prefetched lines
    /// that were eventually used vs evicted unused. Real prefetchers throttle
    /// themselves when accuracy is poor — the behaviour the paper observes in
    /// XSBench ("prefetching is automatically adapted to a low level when
    /// accuracy is low").
    pub(crate) feedback_useful: u64,
    pub(crate) feedback_useless: u64,
}

/// Minimum number of feedback samples before throttling decisions are made.
const FEEDBACK_WARMUP: u64 = 512;
/// Window size at which the feedback counters are halved (exponential decay).
const FEEDBACK_DECAY_AT: u64 = 8192;

impl StreamPrefetcher {
    /// Creates a prefetcher with the given parameters.
    pub fn new(params: PrefetchParams) -> Self {
        Self {
            params,
            entries: Vec::with_capacity(params.max_streams),
            clock: 0,
            feedback_useful: 0,
            feedback_useless: 0,
        }
    }

    /// Reports the fate of a previously prefetched line: used by a demand
    /// access (`useful = true`) or evicted without use (`useful = false`).
    pub fn feedback(&mut self, useful: bool) {
        if useful {
            self.feedback_useful += 1;
        } else {
            self.feedback_useless += 1;
        }
        if self.feedback_useful + self.feedback_useless > FEEDBACK_DECAY_AT {
            self.feedback_useful /= 2;
            self.feedback_useless /= 2;
        }
    }

    /// Observed prefetch accuracy over the recent feedback window (1.0 before
    /// enough samples have been collected).
    pub fn observed_accuracy(&self) -> f64 {
        let total = self.feedback_useful + self.feedback_useless;
        if total < FEEDBACK_WARMUP {
            return 1.0;
        }
        self.feedback_useful as f64 / total as f64
    }

    /// Prefetch degree after accuracy-based throttling.
    fn effective_degree(&self) -> u64 {
        if self.feedback_useless == 0 {
            // No useless prefetches: accuracy is 1.0 whether or not the
            // warmup threshold is reached — full degree, no division needed.
            return self.params.degree as u64;
        }
        let acc = self.observed_accuracy();
        if acc >= 0.60 {
            self.params.degree as u64
        } else if acc >= 0.30 {
            (self.params.degree as u64 / 2).max(1)
        } else {
            0
        }
    }

    /// Whether prefetching is enabled.
    pub fn enabled(&self) -> bool {
        self.params.enabled
    }

    /// Maximum number of concurrently tracked streams.
    pub fn max_streams(&self) -> usize {
        self.params.max_streams
    }

    /// Enables or disables prefetch generation (stream training continues).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.params.enabled = enabled;
    }

    /// Resets all tracked streams and the accuracy feedback.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.clock = 0;
        self.feedback_useful = 0;
        self.feedback_useless = 0;
    }

    /// Takes a frozen copy of the full prefetcher state.
    pub(crate) fn snapshot(&self) -> PrefetcherSnapshot {
        PrefetcherSnapshot {
            entries: self.entries.clone(),
            clock: self.clock,
            feedback_useless: self.feedback_useless,
            enabled: self.params.enabled,
        }
    }

    /// Restores stream entries and the clock from a snapshot, shifted forward
    /// by `page_shift` pages and `clock_shift` clock ticks — the state the
    /// prefetcher would have reached had it tracked the stream exactly.
    /// Snapshot entries flagged in `dormant` (streams the replayed traffic
    /// provably never touched) are copied verbatim instead of shifted; an
    /// empty slice means every valid entry shifts.
    ///
    /// The accuracy-feedback counters are *not* restored: they are advanced
    /// live during replay by [`StreamPrefetcher::advance_useful`].
    pub(crate) fn restore_shifted(
        &mut self,
        snap: &PrefetcherSnapshot,
        page_shift: u64,
        clock_shift: u64,
        dormant: &[bool],
    ) {
        debug_assert!(dormant.is_empty() || dormant.len() == snap.entries.len());
        self.clock = snap.clock + clock_shift;
        self.entries.clear();
        self.entries
            .extend(snap.entries.iter().enumerate().map(|(i, e)| {
                let mut e = *e;
                if e.valid && dormant.get(i) != Some(&true) {
                    e.page += page_shift;
                    e.stamp += clock_shift;
                }
                e
            }));
    }

    /// Advances the feedback state exactly as `n` consecutive
    /// [`StreamPrefetcher::feedback`]`(true)` calls would, in closed form.
    /// Only valid while `feedback_useless == 0` (the replay invariant): the
    /// decay then reduces to halving the useful counter whenever it crosses
    /// the decay threshold.
    pub(crate) fn advance_useful(&mut self, mut n: u64) {
        debug_assert!(n == 0 || self.feedback_useless == 0);
        while n > 0 {
            let to_decay = (FEEDBACK_DECAY_AT + 1).saturating_sub(self.feedback_useful);
            if n < to_decay {
                self.feedback_useful += n;
                break;
            }
            n -= to_decay;
            self.feedback_useful = FEEDBACK_DECAY_AT.div_ceil(2);
        }
    }

    /// Observes a demand access to cache line `line_addr` and appends the
    /// line addresses that should be prefetched to `out`.
    pub fn observe(&mut self, line_addr: u64, out: &mut Vec<u64>) {
        self.observe_impl(line_addr, out, None);
    }

    /// Like [`StreamPrefetcher::observe`], but keeps the index of the stream
    /// entry used in `hint` so a caller walking a contiguous line run pays
    /// the entry scan only when the page changes. Results are bit-identical
    /// to `observe`: stream entries are unique per page, so verifying that
    /// the hinted entry still tracks this page is equivalent to the scan.
    pub fn observe_hinted(&mut self, line_addr: u64, out: &mut Vec<u64>, hint: &mut usize) {
        self.observe_impl(line_addr, out, Some(hint));
    }

    fn observe_impl(&mut self, line_addr: u64, out: &mut Vec<u64>, hint: Option<&mut usize>) {
        if !self.params.enabled {
            return;
        }
        self.clock += 1;
        let page = line_addr / LINES_PER_PAGE;
        let line_in_page = line_addr % LINES_PER_PAGE;

        // Find existing stream for this page: through the caller's memoized
        // entry index when it still matches, by scanning otherwise.
        let mut found: Option<usize> = hint.as_deref().copied().filter(|&i| {
            i < self.entries.len() && self.entries[i].valid && self.entries[i].page == page
        });
        if found.is_none() {
            for (i, e) in self.entries.iter().enumerate() {
                if e.valid && e.page == page {
                    found = Some(i);
                    break;
                }
            }
        }

        let idx = match found {
            Some(i) => i,
            None => {
                // Allocate a new entry, evicting the LRU one if full.
                let fresh = StreamEntry {
                    page,
                    last_line: line_in_page,
                    run: 1,
                    stamp: self.clock,
                    valid: true,
                };
                let slot = if self.entries.len() < self.params.max_streams {
                    self.entries.push(fresh);
                    self.entries.len() - 1
                } else {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.stamp)
                        .map(|(i, _)| i)
                        .unwrap();
                    self.entries[lru] = fresh;
                    lru
                };
                if let Some(h) = hint {
                    *h = slot;
                }
                return;
            }
        };
        if let Some(h) = hint {
            *h = idx;
        }

        let entry = &mut self.entries[idx];
        entry.stamp = self.clock;
        if line_in_page == entry.last_line {
            // Same line re-accessed; no new information.
            return;
        }
        if line_in_page == entry.last_line + 1 {
            entry.run += 1;
            entry.last_line = line_in_page;
            let run = entry.run;
            let degree = self.effective_degree();
            if run >= self.params.trigger && degree > 0 {
                let first = line_in_page + 1;
                let last = (line_in_page + degree).min(LINES_PER_PAGE - 1);
                let page_base_line = page * LINES_PER_PAGE;
                for l in first..=last {
                    out.push(page_base_line + l);
                }
            }
        } else {
            // Non-sequential access: restart the stream at this line.
            entry.run = 1;
            entry.last_line = line_in_page;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetchParams {
            enabled: true,
            degree: 2,
            trigger: 2,
            max_streams: 4,
        })
    }

    #[test]
    fn sequential_stream_triggers_prefetch() {
        let mut p = pf();
        let mut out = Vec::new();
        p.observe(100, &mut out);
        assert!(out.is_empty());
        p.observe(101, &mut out);
        // run = 2 >= trigger: prefetch lines 102, 103
        assert_eq!(out, vec![102, 103]);
    }

    #[test]
    fn random_accesses_never_trigger() {
        let mut p = pf();
        let mut out = Vec::new();
        for &l in &[5u64, 200, 9, 431, 77, 1000] {
            p.observe(l, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StreamPrefetcher::new(PrefetchParams::disabled());
        let mut out = Vec::new();
        p.observe(0, &mut out);
        p.observe(1, &mut out);
        p.observe(2, &mut out);
        assert!(out.is_empty());
        assert!(!p.enabled());
    }

    #[test]
    fn prefetch_stops_at_page_boundary() {
        let mut p = pf();
        let mut out = Vec::new();
        // Last two lines of page 0 (lines 62, 63 of 64).
        p.observe(62, &mut out);
        p.observe(63, &mut out);
        // Nothing to prefetch: next lines would be in page 1.
        assert!(out.is_empty());
    }

    #[test]
    fn stream_restart_on_jump_within_page() {
        let mut p = pf();
        let mut out = Vec::new();
        p.observe(10, &mut out);
        p.observe(11, &mut out);
        out.clear();
        // Jump backwards within the same page: stream restarts, no prefetch.
        p.observe(3, &mut out);
        assert!(out.is_empty());
        p.observe(4, &mut out);
        assert_eq!(out, vec![5, 6]);
    }

    #[test]
    fn lru_eviction_limits_tracked_streams() {
        let mut p = pf();
        let mut out = Vec::new();
        // Touch 5 different pages (capacity 4): the first page's stream is evicted.
        for page in 0..5u64 {
            p.observe(page * 64, &mut out);
        }
        // Resuming page 0's stream needs re-training from scratch.
        p.observe(1, &mut out);
        assert!(
            out.is_empty(),
            "evicted stream must not remember its history"
        );
        p.observe(2, &mut out);
        assert_eq!(out, vec![3, 4]);
    }

    #[test]
    fn repeated_same_line_does_not_advance_stream() {
        let mut p = pf();
        let mut out = Vec::new();
        p.observe(20, &mut out);
        p.observe(20, &mut out);
        p.observe(20, &mut out);
        assert!(out.is_empty());
        p.observe(21, &mut out);
        assert_eq!(out, vec![22, 23]);
    }

    #[test]
    fn poor_accuracy_feedback_throttles_prefetching() {
        let mut p = pf();
        // Report overwhelmingly useless prefetches.
        for _ in 0..2000 {
            p.feedback(false);
        }
        assert!(p.observed_accuracy() < 0.1);
        let mut out = Vec::new();
        p.observe(10, &mut out);
        p.observe(11, &mut out);
        assert!(out.is_empty(), "throttled prefetcher must stay quiet");
        // Good feedback restores prefetching.
        for _ in 0..20_000 {
            p.feedback(true);
        }
        assert!(p.observed_accuracy() > 0.6);
        p.observe(12, &mut out);
        assert!(!out.is_empty());
    }

    #[test]
    fn accuracy_defaults_to_one_before_warmup() {
        let mut p = pf();
        p.feedback(false);
        assert_eq!(p.observed_accuracy(), 1.0);
        p.reset();
        assert_eq!(p.observed_accuracy(), 1.0);
    }

    #[test]
    fn advance_useful_matches_repeated_feedback() {
        for start in [0u64, 1, 100, 4095, 4096, 8191, 8192] {
            for n in [0u64, 1, 5, 4096, 8192, 8193, 20_000] {
                let mut a = pf();
                a.feedback_useful = start;
                let mut b = a.clone();
                for _ in 0..n {
                    a.feedback(true);
                }
                b.advance_useful(n);
                assert_eq!(
                    (a.feedback_useful, a.feedback_useless),
                    (b.feedback_useful, b.feedback_useless),
                    "start={start}, n={n}"
                );
            }
        }
    }

    #[test]
    fn snapshot_restore_shifted_moves_entries() {
        let mut p = pf();
        let mut out = Vec::new();
        p.observe(100, &mut out);
        p.observe(101, &mut out);
        let snap = p.snapshot();
        assert!(snap.enabled);
        let mut q = pf();
        q.restore_shifted(&snap, 10, 1000, &[]);
        // The restored entry tracks the original page shifted by 10 pages.
        let e = q.entries.iter().find(|e| e.valid).unwrap();
        assert_eq!(e.page, 100 / 64 + 10);
        assert_eq!(q.clock, snap.clock + 1000);
    }

    #[test]
    fn set_enabled_toggles_generation() {
        let mut p = pf();
        let mut out = Vec::new();
        p.set_enabled(false);
        p.observe(0, &mut out);
        p.observe(1, &mut out);
        assert!(out.is_empty());
        p.set_enabled(true);
        p.observe(2, &mut out);
        p.observe(3, &mut out);
        assert!(!out.is_empty());
    }
}
