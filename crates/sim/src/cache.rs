//! Set-associative cache hierarchy (L2 + shared LLC) with prefetch-aware
//! accounting.
//!
//! The hierarchy produces the counter set of the paper's Level-1 profiling:
//! `L2_LINES_IN`, prefetch requests, `USELESS_HWPF`, demand misses, and the
//! DRAM fill/writeback events that the [`crate::Machine`] routes to memory
//! tiers.

use crate::config::CacheParams;
use crate::counters::Counters;
use crate::prefetch::StreamPrefetcher;
use serde::{Deserialize, Serialize};

/// Level of the memory hierarchy that served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemoryLevel {
    /// Served from the L2 cache.
    L2,
    /// Served from the last-level cache.
    Llc,
    /// Served from a memory tier (DRAM, local or pool).
    Dram,
}

/// A request that reached DRAM and must be routed to a memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramEvent {
    /// Cache-line address (line index, not byte address).
    pub line_addr: u64,
    /// What kind of DRAM transaction this is.
    pub kind: DramEventKind,
}

/// Consumer of DRAM transactions produced by the batched cache walk.
///
/// The per-line reference pipeline materializes [`DramEvent`]s into a queue
/// and drains it; the batched pipeline hands each transaction to a sink the
/// moment it is produced (same order, no queue), which lets the machine
/// tally tiers and counters inline.
pub trait DramSink {
    /// Accepts one DRAM transaction.
    fn event(&mut self, line_addr: u64, kind: DramEventKind);

    /// Accepts `count` DRAM transactions of `kind` against cache lines in the
    /// page containing `line_addr` (the replay engine aggregates a window's
    /// transactions per page before handing them over). The default expands
    /// to `count` single events at `line_addr`, which is only page-exact —
    /// sinks that return `true` from [`DramSink::supports_replay`] must
    /// override this with genuinely page-granular accounting.
    fn bulk_event(&mut self, line_addr: u64, kind: DramEventKind, count: u64) {
        for _ in 0..count {
            self.event(line_addr, kind);
        }
    }

    /// Whether this sink accounts DRAM traffic at page granularity, so that
    /// [`DramSink::bulk_event`] is exactly equivalent to the individual
    /// events it aggregates. Only then may the cache engage the steady-state
    /// replay engine; the default (`false`) keeps replay off.
    fn supports_replay(&self) -> bool {
        false
    }
}

impl DramSink for Vec<DramEvent> {
    fn event(&mut self, line_addr: u64, kind: DramEventKind) {
        self.push(DramEvent { line_addr, kind });
    }
}

/// Kind of DRAM transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramEventKind {
    /// Line fill triggered by a demand miss: its latency is exposed to the
    /// core (up to the available memory-level parallelism).
    DemandFill,
    /// Line fill triggered by the hardware prefetcher: latency hidden.
    PrefetchFill,
    /// Dirty line written back on eviction.
    Writeback,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CacheLine {
    pub(crate) tag: u64,
    pub(crate) valid: bool,
    pub(crate) dirty: bool,
    pub(crate) prefetched: bool,
    pub(crate) used: bool,
    pub(crate) stamp: u64,
}

#[derive(Debug, Clone)]
pub(crate) struct SetAssocCache {
    sets: usize,
    ways: usize,
    /// `sets - 1` when `sets` is a power of two: the batched fast path masks
    /// instead of dividing (`None` falls back to the modulo used by the
    /// per-line reference path — both compute the same set index).
    set_mask: Option<usize>,
    pub(crate) lines: Vec<CacheLine>,
    pub(crate) clock: u64,
}

struct Evicted {
    tag: u64,
    dirty: bool,
    useless_prefetch: bool,
}

/// Result of [`SetAssocCache::fill_or_hit`].
enum FillOutcome {
    /// The line was already present (LRU refreshed, optionally dirtied).
    Hit,
    /// The line was inserted, evicting the carried victim if any.
    Inserted(Option<Evicted>),
}

impl SetAssocCache {
    fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache must have at least one line");
        Self {
            sets,
            ways,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            lines: vec![CacheLine::default(); sets * ways],
            clock: 0,
        }
    }

    #[inline]
    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        // Mask when the set count is a power of two (all shipped
        // configurations), modulo otherwise — same index either way.
        let set = match self.set_mask {
            Some(mask) => (line_addr as usize) & mask,
            None => (line_addr as usize) % self.sets,
        };
        let start = set * self.ways;
        start..start + self.ways
    }

    /// Combined lookup + insert-on-miss in a single set scan, used by the
    /// batched pipeline where a miss is the common case (LLC fills on a
    /// stream): the victim falls out of the same pass that proves absence.
    /// Clock/stamp evolution is exactly lookup-then-insert: one tick for the
    /// lookup, a second for the insert when it happens.
    #[inline]
    fn fill_or_hit(
        &mut self,
        line_addr: u64,
        mark_dirty_on_hit: bool,
        insert_dirty: bool,
        insert_prefetched: bool,
    ) -> FillOutcome {
        self.clock += 1;
        let lookup_clock = self.clock;
        let start = self.set_range(line_addr).start;
        let ways = self.ways;
        let mut first_invalid = None;
        let mut victim_idx = 0usize;
        let mut victim_stamp = u64::MAX;
        for i in 0..ways {
            let l = &mut self.lines[start + i];
            if l.valid {
                if l.tag == line_addr {
                    l.stamp = lookup_clock;
                    if mark_dirty_on_hit {
                        l.dirty = true;
                    }
                    return FillOutcome::Hit;
                }
                if first_invalid.is_none() && l.stamp < victim_stamp {
                    victim_stamp = l.stamp;
                    victim_idx = i;
                }
            } else if first_invalid.is_none() {
                first_invalid = Some(i);
            }
        }
        self.clock += 1;
        let insert_clock = self.clock;
        let slot = start + first_invalid.unwrap_or(victim_idx);
        let victim = self.lines[slot];
        let evicted = if victim.valid {
            Some(Evicted {
                tag: victim.tag,
                dirty: victim.dirty,
                useless_prefetch: victim.prefetched && !victim.used,
            })
        } else {
            None
        };
        self.lines[slot] = CacheLine {
            tag: line_addr,
            valid: true,
            dirty: insert_dirty,
            prefetched: insert_prefetched,
            used: !insert_prefetched,
            stamp: insert_clock,
        };
        FillOutcome::Inserted(evicted)
    }

    /// Number of sets.
    pub(crate) fn set_count(&self) -> usize {
        self.sets
    }

    /// Number of ways per set.
    pub(crate) fn way_count(&self) -> usize {
        self.ways
    }

    /// Overwrites the full cache state from a snapshot of `lines` and
    /// `clock`, with every valid line's tag shifted forward by `tag_shift`
    /// lines and every timestamp (and the clock) by `clock_shift` ticks —
    /// the state the cache would hold had it walked the shifted traffic
    /// exactly. Snapshot slots flagged in `dormant` (lines the replayed
    /// traffic provably never touched — resident foreign state in sets the
    /// period's addresses miss) are copied verbatim instead of shifted; an
    /// empty `dormant` slice means every valid line shifts. Invalid slots
    /// keep their canonical default contents.
    pub(crate) fn restore_shifted(
        &mut self,
        snap_lines: &[CacheLine],
        snap_clock: u64,
        tag_shift: u64,
        clock_shift: u64,
        dormant: &[bool],
    ) {
        debug_assert_eq!(snap_lines.len(), self.lines.len());
        debug_assert!(dormant.is_empty() || dormant.len() == snap_lines.len());
        self.clock = snap_clock + clock_shift;
        for (i, (slot, snap)) in self.lines.iter_mut().zip(snap_lines).enumerate() {
            *slot = *snap;
            if snap.valid && dormant.get(i) != Some(&true) {
                slot.tag = snap.tag + tag_shift;
                slot.stamp = snap.stamp + clock_shift;
            }
        }
    }

    /// Exports this level for the machine snapshot codec: parallel
    /// `tags`/`stamps`/`flags` arrays (flag bits 0=valid, 1=dirty,
    /// 2=prefetched, 3=used) plus the LRU clock.
    pub(crate) fn snapshot_level(&self) -> crate::snapshot::CacheLevelState {
        crate::snapshot::CacheLevelState {
            sets: self.sets as u64,
            ways: self.ways as u64,
            clock: self.clock,
            tags: self.lines.iter().map(|l| l.tag).collect(),
            stamps: self.lines.iter().map(|l| l.stamp).collect(),
            flags: self
                .lines
                .iter()
                .map(|l| {
                    u64::from(l.valid)
                        | u64::from(l.dirty) << 1
                        | u64::from(l.prefetched) << 2
                        | u64::from(l.used) << 3
                })
                .collect(),
        }
    }

    /// Rebuilds one level from snapshot state, inverting
    /// [`SetAssocCache::snapshot_level`]. The array lengths are validated
    /// against the recorded geometry by the snapshot reader; this also
    /// rejects flag bits outside the defined set.
    pub(crate) fn from_snapshot_level(
        state: &crate::snapshot::CacheLevelState,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        if state.sets == 0 || state.ways == 0 {
            return Err(SnapshotError::Corrupt(
                "cache level has zero geometry".into(),
            ));
        }
        let mut cache = Self::new(state.sets as usize, state.ways as usize);
        cache.clock = state.clock;
        for (i, slot) in cache.lines.iter_mut().enumerate() {
            let flags = state.flags[i];
            if flags & !0xf != 0 {
                return Err(SnapshotError::Corrupt(
                    "unknown cache line flag bits".into(),
                ));
            }
            *slot = CacheLine {
                tag: state.tags[i],
                valid: flags & 1 != 0,
                dirty: flags & 2 != 0,
                prefetched: flags & 4 != 0,
                used: flags & 8 != 0,
                stamp: state.stamps[i],
            };
        }
        Ok(cache)
    }

    /// Looks up a line; on hit, refreshes LRU and returns a mutable reference.
    fn lookup(&mut self, line_addr: u64) -> Option<&mut CacheLine> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line_addr);
        let lines = &mut self.lines[range];
        for line in lines.iter_mut() {
            if line.valid && line.tag == line_addr {
                line.stamp = clock;
                return Some(line);
            }
        }
        None
    }

    fn contains(&self, line_addr: u64) -> bool {
        let range = self.set_range(line_addr);
        self.lines[range]
            .iter()
            .any(|l| l.valid && l.tag == line_addr)
    }

    /// Inserts a line, returning the victim if a valid line was evicted.
    fn insert(&mut self, line_addr: u64, dirty: bool, prefetched: bool) -> Option<Evicted> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(line_addr);
        let lines = &mut self.lines[range];

        // Prefer an invalid way.
        let mut victim_idx = 0;
        let mut victim_stamp = u64::MAX;
        for (i, line) in lines.iter().enumerate() {
            if !line.valid {
                victim_idx = i;
                break;
            }
            if line.stamp < victim_stamp {
                victim_stamp = line.stamp;
                victim_idx = i;
            }
        }
        let victim = lines[victim_idx];
        let evicted = if victim.valid {
            Some(Evicted {
                tag: victim.tag,
                dirty: victim.dirty,
                useless_prefetch: victim.prefetched && !victim.used,
            })
        } else {
            None
        };
        lines[victim_idx] = CacheLine {
            tag: line_addr,
            valid: true,
            dirty,
            prefetched,
            used: !prefetched,
            stamp: clock,
        };
        evicted
    }
}

/// The simulated two-level cache hierarchy with an L2 stream prefetcher.
#[derive(Debug, Clone)]
pub struct CacheSim {
    params: CacheParams,
    pub(crate) l2: SetAssocCache,
    pub(crate) llc: SetAssocCache,
    pub(crate) prefetcher: StreamPrefetcher,
    prefetch_buf: Vec<u64>,
    /// Memoized prefetcher stream-entry index for the batched path; carried
    /// across calls (it is validated against the accessed page before use,
    /// so staleness only costs a rescan).
    pub(crate) stream_hint: usize,
    /// Steady-state page-replay engine (see `crate::replay`).
    pub(crate) replay: crate::replay::ReplayEngine,
}

impl CacheSim {
    /// Creates the hierarchy from cache and prefetch parameters.
    pub fn new(params: CacheParams, prefetcher: StreamPrefetcher) -> Self {
        let l2 = SetAssocCache::new(params.l2_sets(), params.l2_ways as usize);
        let llc = SetAssocCache::new(params.llc_sets(), params.llc_ways as usize);
        let replay =
            crate::replay::ReplayEngine::new(l2.set_count() as u64, llc.set_count() as u64);
        Self {
            l2,
            llc,
            prefetcher,
            params,
            prefetch_buf: Vec::with_capacity(8),
            stream_hint: usize::MAX,
            replay,
        }
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.params.line_bytes
    }

    /// Enables or disables the hardware prefetcher.
    pub fn set_prefetch_enabled(&mut self, enabled: bool) {
        // Prefetcher behaviour is part of the replayed fingerprint; leave
        // replay and discard detection state before changing it.
        self.replay_hard_reset();
        self.prefetcher.set_enabled(enabled);
    }

    /// Enables or disables the steady-state page-replay engine (enabled by
    /// default). Disabling mid-run first materializes any in-flight replay so
    /// the cache state stays exact.
    pub fn set_replay_enabled(&mut self, enabled: bool) {
        self.replay_hard_reset();
        self.replay.set_enabled(enabled);
    }

    /// Whether the steady-state page-replay engine is enabled.
    pub fn replay_enabled(&self) -> bool {
        self.replay.enabled
    }

    /// Total number of whole windows applied by the replay engine so far
    /// (each window covers `CacheSim::replay_window_pages` pages). Zero means
    /// replay never engaged.
    pub fn replay_windows(&self) -> u64 {
        self.replay.windows_replayed_total
    }

    /// Pages per replay window for this cache geometry.
    pub fn replay_window_pages(&self) -> u64 {
        self.replay.window_pages
    }

    /// Total number of whole passes applied by the pass-level replay engine
    /// so far (each pass covers one full repeated call over the same range).
    /// Zero means pass-level periodicity never engaged.
    pub fn replay_passes(&self) -> u64 {
        self.replay.passes_replayed_total
    }

    /// Total number of strided elements applied in closed form by the
    /// stride-aware replay engine so far. Zero means no strided sweep ever
    /// engaged.
    pub fn replay_stride_elements(&self) -> u64 {
        self.replay.stride_elems_replayed_total
    }

    /// Whether the hardware prefetcher is enabled.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetcher.enabled()
    }

    /// Performs one demand access to cache line `line_addr`.
    ///
    /// Updates `counters` and appends any DRAM transactions (fills and
    /// writebacks, including those triggered by prefetches) to `dram_events`.
    pub fn demand_access(
        &mut self,
        line_addr: u64,
        is_write: bool,
        counters: &mut Counters,
        dram_events: &mut Vec<DramEvent>,
    ) {
        // Traffic outside `demand_access_range` invalidates the replay
        // detector's view of the cache state (single cheap branch when idle).
        if self.replay.is_active() {
            self.replay_hard_reset();
        }
        if is_write {
            counters.demand_write_lines += 1;
        } else {
            counters.demand_read_lines += 1;
        }

        if let Some(line) = self.l2.lookup(line_addr) {
            let first_use_of_prefetch = line.prefetched && !line.used;
            if first_use_of_prefetch {
                line.used = true;
                counters.pf_useful += 1;
            }
            if is_write {
                line.dirty = true;
            }
            if first_use_of_prefetch {
                self.prefetcher.feedback(true);
            }
        } else {
            counters.l2_demand_misses += 1;
            counters.l2_lines_in += 1;
            self.fill_from_below(line_addr, true, counters, dram_events);
            self.insert_l2(line_addr, is_write, false, counters, dram_events);
        }

        // Train the prefetcher on the demand stream and issue prefetches.
        self.prefetch_buf.clear();
        let mut buf = std::mem::take(&mut self.prefetch_buf);
        self.prefetcher.observe(line_addr, &mut buf);
        for &pf_addr in &buf {
            if self.l2.contains(pf_addr) {
                continue;
            }
            counters.pf_issued += 1;
            counters.l2_lines_in += 1;
            self.fill_from_below(pf_addr, false, counters, dram_events);
            self.insert_l2(pf_addr, false, true, counters, dram_events);
        }
        self.prefetch_buf = buf;
    }

    /// Performs demand accesses to the contiguous run of `line_count` cache
    /// lines starting at `first_line`, in ascending order.
    ///
    /// Bit-identical to calling [`CacheSim::demand_access`] once per line,
    /// but the per-line overheads are hoisted out of the loop, and — for
    /// page-granular sinks ([`DramSink::supports_replay`]) — long sequential
    /// streams are handed to the steady-state page-replay engine, which skips
    /// the set scans entirely for whole pages whose behaviour it has proven
    /// periodic (see `crate::replay`).
    pub fn demand_access_range<S: DramSink>(
        &mut self,
        first_line: u64,
        line_count: u64,
        is_write: bool,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        if line_count == 0 {
            return;
        }
        if self.replay.enabled && sink.supports_replay() {
            self.walk_with_replay(first_line, line_count, is_write, counters, sink);
        } else {
            if self.replay.is_active() {
                self.replay_hard_reset();
            }
            self.walk_lines_exact(first_line, line_count, is_write, counters, sink);
        }
    }

    /// The exact batched line walk: one combined set scan per fill, memoized
    /// prefetcher stream entry, every DRAM transaction handed to the sink in
    /// order. This is the reference the replay engine fingerprints.
    pub(crate) fn walk_lines_exact<S: DramSink>(
        &mut self,
        first_line: u64,
        line_count: u64,
        is_write: bool,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        let mut buf = std::mem::take(&mut self.prefetch_buf);
        let mut stream_hint = self.stream_hint;
        for line_addr in first_line..first_line + line_count {
            if is_write {
                counters.demand_write_lines += 1;
            } else {
                counters.demand_read_lines += 1;
            }

            if let Some(line) = self.l2.lookup(line_addr) {
                let first_use_of_prefetch = line.prefetched && !line.used;
                if first_use_of_prefetch {
                    line.used = true;
                    counters.pf_useful += 1;
                }
                if is_write {
                    line.dirty = true;
                }
                if first_use_of_prefetch {
                    self.prefetcher.feedback(true);
                }
            } else {
                counters.l2_demand_misses += 1;
                counters.l2_lines_in += 1;
                self.llc_fill_fast(line_addr, true, sink);
                let evicted = self.l2.insert(line_addr, is_write, false);
                self.handle_l2_victim(evicted, counters, sink);
            }

            buf.clear();
            self.prefetcher
                .observe_hinted(line_addr, &mut buf, &mut stream_hint);
            for &pf_addr in &buf {
                if self.l2.contains(pf_addr) {
                    continue;
                }
                counters.pf_issued += 1;
                counters.l2_lines_in += 1;
                self.llc_fill_fast(pf_addr, false, sink);
                let evicted = self.l2.insert(pf_addr, false, true);
                self.handle_l2_victim(evicted, counters, sink);
            }
        }
        self.stream_hint = stream_hint;
        self.prefetch_buf = buf;
    }

    /// Fill from the LLC level with a single combined set scan (lookup +
    /// victim selection), emitting DRAM transactions to the sink. Identical
    /// to [`CacheSim::fill_from_below`].
    #[inline]
    fn llc_fill_fast<S: DramSink>(&mut self, line_addr: u64, demand: bool, sink: &mut S) {
        match self.llc.fill_or_hit(line_addr, false, false, !demand) {
            FillOutcome::Hit => {}
            FillOutcome::Inserted(victim) => {
                sink.event(
                    line_addr,
                    if demand {
                        DramEventKind::DemandFill
                    } else {
                        DramEventKind::PrefetchFill
                    },
                );
                if let Some(victim) = victim {
                    if victim.dirty {
                        sink.event(victim.tag, DramEventKind::Writeback);
                    }
                }
            }
        }
    }

    /// Handles the victim of an L2 insert on the batched path (useless-
    /// prefetch accounting and the dirty writeback towards LLC / DRAM).
    /// Identical to the victim handling of [`CacheSim::insert_l2`].
    #[inline]
    fn handle_l2_victim<S: DramSink>(
        &mut self,
        evicted: Option<Evicted>,
        counters: &mut Counters,
        sink: &mut S,
    ) {
        if let Some(victim) = evicted {
            if victim.useless_prefetch {
                counters.useless_hwpf += 1;
                self.prefetcher.feedback(false);
            }
            if victim.dirty {
                match self.llc.fill_or_hit(victim.tag, true, true, false) {
                    FillOutcome::Hit => {}
                    FillOutcome::Inserted(Some(llc_victim)) if llc_victim.dirty => {
                        sink.event(llc_victim.tag, DramEventKind::Writeback);
                    }
                    FillOutcome::Inserted(_) => {}
                }
            }
        }
    }

    /// Brings a line into the hierarchy from LLC or DRAM.
    fn fill_from_below(
        &mut self,
        line_addr: u64,
        demand: bool,
        _counters: &mut Counters,
        dram_events: &mut Vec<DramEvent>,
    ) {
        if self.llc.lookup(line_addr).is_some() {
            return;
        }
        dram_events.push(DramEvent {
            line_addr,
            kind: if demand {
                DramEventKind::DemandFill
            } else {
                DramEventKind::PrefetchFill
            },
        });
        if let Some(victim) = self.llc.insert(line_addr, false, !demand) {
            if victim.dirty {
                dram_events.push(DramEvent {
                    line_addr: victim.tag,
                    kind: DramEventKind::Writeback,
                });
            }
        }
    }

    /// Inserts a line into L2, handling the victim (useless-prefetch counting
    /// and dirty writeback towards the LLC / DRAM).
    fn insert_l2(
        &mut self,
        line_addr: u64,
        dirty: bool,
        prefetched: bool,
        counters: &mut Counters,
        dram_events: &mut Vec<DramEvent>,
    ) {
        if let Some(victim) = self.l2.insert(line_addr, dirty, prefetched) {
            if victim.useless_prefetch {
                counters.useless_hwpf += 1;
                self.prefetcher.feedback(false);
            }
            if victim.dirty {
                // Write the victim back into the LLC; if it has already been
                // evicted from the LLC, the writeback goes to DRAM.
                if let Some(llc_line) = self.llc.lookup(victim.tag) {
                    llc_line.dirty = true;
                } else if let Some(llc_victim) = self.llc.insert(victim.tag, true, false) {
                    if llc_victim.dirty {
                        dram_events.push(DramEvent {
                            line_addr: llc_victim.tag,
                            kind: DramEventKind::Writeback,
                        });
                    }
                }
            }
        }
    }

    /// Exports the full hierarchy state for the machine snapshot codec.
    /// Callers must hard-reset the replay engine first (the machine snapshot
    /// does): only the master switch and the lifetime totals survive a
    /// snapshot, per the replay-state capture rule.
    pub(crate) fn snapshot_state(&self) -> crate::snapshot::CacheState {
        debug_assert!(
            !self.replay.is_active(),
            "snapshot requires a hard-reset replay engine"
        );
        crate::snapshot::CacheState {
            l2: self.l2.snapshot_level(),
            llc: self.llc.snapshot_level(),
            prefetcher: crate::snapshot::PrefetcherState {
                enabled: self.prefetcher.enabled(),
                clock: self.prefetcher.clock,
                feedback_useful: self.prefetcher.feedback_useful,
                feedback_useless: self.prefetcher.feedback_useless,
                entries: self
                    .prefetcher
                    .entries
                    .iter()
                    .map(|e| crate::snapshot::StreamEntryState {
                        page: e.page,
                        last_line: e.last_line,
                        run: e.run,
                        stamp: e.stamp,
                        valid: e.valid,
                    })
                    .collect(),
            },
            replay: crate::snapshot::ReplayState {
                enabled: self.replay.enabled,
                windows_replayed_total: self.replay.windows_replayed_total,
                passes_replayed_total: self.replay.passes_replayed_total,
                stride_elems_replayed_total: self.replay.stride_elems_replayed_total,
            },
        }
    }

    /// Rebuilds the hierarchy from snapshot state, inverting
    /// [`CacheSim::snapshot_state`]. `params`/`prefetch` come from the
    /// snapshot's machine config; the recorded geometry must agree with them.
    pub(crate) fn from_snapshot_state(
        params: CacheParams,
        prefetch: crate::config::PrefetchParams,
        state: &crate::snapshot::CacheState,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let l2 = SetAssocCache::from_snapshot_level(&state.l2)?;
        let llc = SetAssocCache::from_snapshot_level(&state.llc)?;
        if l2.set_count() != params.l2_sets()
            || l2.way_count() != params.l2_ways as usize
            || llc.set_count() != params.llc_sets()
            || llc.way_count() != params.llc_ways as usize
        {
            return Err(SnapshotError::Corrupt(
                "cache geometry disagrees with the machine config".into(),
            ));
        }
        if state.prefetcher.entries.len() > prefetch.max_streams {
            return Err(SnapshotError::Corrupt(
                "more prefetcher streams than the config allows".into(),
            ));
        }
        let mut prefetcher = StreamPrefetcher::new(prefetch);
        prefetcher.set_enabled(state.prefetcher.enabled);
        prefetcher.clock = state.prefetcher.clock;
        prefetcher.feedback_useful = state.prefetcher.feedback_useful;
        prefetcher.feedback_useless = state.prefetcher.feedback_useless;
        prefetcher.entries = state
            .prefetcher
            .entries
            .iter()
            .map(|e| crate::prefetch::StreamEntry {
                page: e.page,
                last_line: e.last_line,
                run: e.run,
                stamp: e.stamp,
                valid: e.valid,
            })
            .collect();
        let mut replay =
            crate::replay::ReplayEngine::new(l2.set_count() as u64, llc.set_count() as u64);
        replay.set_enabled(state.replay.enabled);
        replay.windows_replayed_total = state.replay.windows_replayed_total;
        replay.passes_replayed_total = state.replay.passes_replayed_total;
        replay.stride_elems_replayed_total = state.replay.stride_elems_replayed_total;
        Ok(Self {
            l2,
            llc,
            prefetcher,
            params,
            prefetch_buf: Vec::with_capacity(8),
            stream_hint: usize::MAX,
            replay,
        })
    }

    /// Resets all cache contents and prefetcher state.
    pub fn reset(&mut self) {
        self.l2 = SetAssocCache::new(self.params.l2_sets(), self.params.l2_ways as usize);
        self.llc = SetAssocCache::new(self.params.llc_sets(), self.params.llc_ways as usize);
        self.prefetcher.reset();
        // The cache state replay would materialize is being discarded anyway.
        self.replay.discard_for_reset();
        self.stream_hint = usize::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetchParams;

    fn sim(prefetch: bool) -> CacheSim {
        let params = CacheParams::tiny();
        let pf = StreamPrefetcher::new(PrefetchParams {
            enabled: prefetch,
            degree: 2,
            trigger: 2,
            max_streams: 8,
        });
        CacheSim::new(params, pf)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = sim(false);
        let mut counters = Counters::default();
        let mut dram = Vec::new();
        c.demand_access(42, false, &mut counters, &mut dram);
        assert_eq!(counters.l2_demand_misses, 1);
        assert_eq!(dram.len(), 1);
        assert_eq!(dram[0].kind, DramEventKind::DemandFill);
        c.demand_access(42, false, &mut counters, &mut dram);
        assert_eq!(counters.l2_demand_misses, 1, "second access must hit");
        assert_eq!(counters.demand_read_lines, 2);
    }

    #[test]
    fn sequential_stream_generates_prefetch_fills() {
        let mut c = sim(true);
        let mut counters = Counters::default();
        let mut dram = Vec::new();
        for line in 0..16u64 {
            c.demand_access(line, false, &mut counters, &mut dram);
        }
        assert!(counters.pf_issued > 0, "stream should trigger prefetches");
        assert!(counters.pf_useful > 0, "prefetched lines should be used");
        assert!(
            counters.prefetch_coverage() > 0.3,
            "coverage too low: {}",
            counters.prefetch_coverage()
        );
        // Lines-in conservation: fills = demand misses + prefetches.
        assert_eq!(
            counters.l2_lines_in,
            counters.l2_demand_misses + counters.pf_issued
        );
    }

    #[test]
    fn random_accesses_have_no_prefetch_benefit() {
        let mut c = sim(true);
        let mut counters = Counters::default();
        let mut dram = Vec::new();
        // Stride of 3 pages defeats the within-page streamer.
        for i in 0..200u64 {
            c.demand_access(i * 192 + 7, false, &mut counters, &mut dram);
        }
        assert_eq!(counters.pf_issued, 0);
        assert_eq!(counters.prefetch_coverage(), 0.0);
    }

    #[test]
    fn dirty_eviction_produces_writeback() {
        let mut c = sim(false);
        let mut counters = Counters::default();
        let mut dram = Vec::new();
        // Write far more lines than the tiny hierarchy can hold, mapping to
        // the same sets repeatedly, to force dirty evictions all the way out.
        for i in 0..20_000u64 {
            c.demand_access(i, true, &mut counters, &mut dram);
        }
        assert!(
            dram.iter().any(|e| e.kind == DramEventKind::Writeback),
            "expected at least one writeback to DRAM"
        );
    }

    #[test]
    fn useless_prefetches_are_counted_on_eviction() {
        let mut c = sim(true);
        let mut counters = Counters::default();
        let mut dram = Vec::new();
        // Trigger a stream, then jump away so the prefetched lines are never
        // used and eventually evicted by unrelated traffic.
        for line in 0..8u64 {
            c.demand_access(line, false, &mut counters, &mut dram);
        }
        for i in 0..50_000u64 {
            c.demand_access(1_000_000 + i * 3, false, &mut counters, &mut dram);
        }
        assert!(counters.pf_issued > 0);
        assert!(
            counters.useless_hwpf > 0,
            "unused prefetched lines must be counted useless on eviction"
        );
        assert!(counters.prefetch_accuracy() < 1.0);
    }

    #[test]
    fn llc_absorbs_l2_capacity_misses() {
        let mut c = sim(false);
        let mut counters = Counters::default();
        let mut dram = Vec::new();
        // Working set larger than L2 (128 lines) but smaller than LLC (1024):
        // first sweep fills caches, second sweep should be served by LLC with
        // no additional DRAM fills.
        let lines = 512u64;
        for l in 0..lines {
            c.demand_access(l, false, &mut counters, &mut dram);
        }
        let dram_after_first = dram.len();
        for l in 0..lines {
            c.demand_access(l, false, &mut counters, &mut dram);
        }
        let new_dram = dram.len() - dram_after_first;
        assert!(
            new_dram < dram_after_first / 4,
            "second sweep should mostly hit in LLC ({new_dram} new DRAM fills)"
        );
    }

    #[test]
    fn prefetch_disabled_no_prefetch_counters() {
        let mut c = sim(false);
        assert!(!c.prefetch_enabled());
        let mut counters = Counters::default();
        let mut dram = Vec::new();
        for line in 0..64u64 {
            c.demand_access(line, false, &mut counters, &mut dram);
        }
        assert_eq!(counters.pf_issued, 0);
        assert_eq!(counters.l2_lines_in, counters.l2_demand_misses);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = sim(false);
        let mut counters = Counters::default();
        let mut dram = Vec::new();
        c.demand_access(7, false, &mut counters, &mut dram);
        c.reset();
        dram.clear();
        c.demand_access(7, false, &mut counters, &mut dram);
        assert_eq!(dram.len(), 1, "after reset the line must miss again");
    }
}
