//! # dismem-sim
//!
//! A discrete memory-system simulator that stands in for the paper's
//! dual-socket emulation platform (Section 3.3). One "machine" models a
//! compute node with:
//!
//! * a node-local memory tier (default: 73 GB/s, 111 ns — the intra-socket
//!   figures of the paper's Skylake testbed),
//! * a rack-level memory-pool tier reached over a coherent link (default:
//!   34 GB/s data bandwidth, 202 ns idle latency, 85 GB/s raw link traffic —
//!   the inter-socket/UPI figures),
//! * a set-associative L2 cache with a hardware stream prefetcher and a
//!   shared last-level cache, producing the performance-counter set used by
//!   the paper's multi-level profiler, and
//! * a page-granular address space with first-touch, forced and interleaved
//!   placement policies.
//!
//! Workloads written against [`dismem_trace::MemoryEngine`] drive a
//! [`Machine`]; the result is a [`RunReport`] holding per-phase counters,
//! runtimes, a traffic timeline, per-object placement and a page-access
//! histogram — exactly the observables the paper's three-level methodology
//! consumes.
//!
//! The invariants the simulator's three execution pipelines (per-line,
//! batched, replay) and the dynamic-tiering subsystem must preserve are
//! documented in `docs/ARCHITECTURE.md` at the repository root.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod address_space;
pub mod cache;
pub mod config;
pub mod counters;
pub mod interference;
pub mod link;
pub mod machine;
pub mod prefetch;
pub(crate) mod replay;
pub mod report;
pub mod snapshot;
pub mod tiering;
pub mod timing;

pub use address_space::{AddressSpace, FreeError, RebindError, Tier};
pub use cache::{CacheSim, MemoryLevel};
pub use config::{CacheParams, LinkParams, MachineConfig, PrefetchParams, TierParams};
pub use counters::Counters;
pub use interference::InterferenceProfile;
pub use link::LinkModel;
pub use machine::Machine;
pub use prefetch::StreamPrefetcher;
pub use report::{AllocationSummary, PhaseReport, RunReport, TieringReport, TimelineSample};
pub use snapshot::{MachineSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use tiering::{
    HotPromote, HotnessTracker, PeriodicRebalance, Static, TieringPolicy, TieringSpec,
};
pub use timing::TimingModel;
