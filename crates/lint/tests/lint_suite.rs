//! Integration suite for `dismem-lint`: each known-bad fixture must produce
//! exactly its expected findings, the workspace itself must scan clean, and
//! reverting a bulk-API fix in a real workload must make the gate fail.

use dismem_lint::{lint_workspace, scan_file_as};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn rules_of(findings: &[dismem_lint::report::Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

// ---------------------------------------------------------------------------
// One fixture per rule family: exact findings, nothing more.
// ---------------------------------------------------------------------------

#[test]
fn bulk_api_fixture_flags_only_the_two_loops() {
    let f = scan_file_as(
        "crates/workloads/src/apps/fixture.rs",
        &fixture("bulk_api_loop.rs"),
    );
    assert_eq!(rules_of(&f), ["bulk-api", "bulk-api"], "{f:?}");
    // The for-loop body and the while-loop body; not the statement-position
    // call, not `impl ... for ...`, not the test module.
    assert_eq!(f[0].line, 9);
    assert_eq!(f[1].line, 14);
}

#[test]
fn recording_fixture_flags_both_calls_but_not_the_fn_item() {
    let f = scan_file_as(
        "crates/sched/src/fixture.rs",
        &fixture("recording_outside.rs"),
    );
    assert_eq!(
        rules_of(&f),
        ["single-recording-point", "single-recording-point"],
        "{f:?}"
    );
    assert_eq!(f[0].line, 6);
    assert_eq!(f[1].line, 7);
}

#[test]
fn counters_fixture_flags_both_mutations_but_not_reads_or_flops() {
    let f = scan_file_as(
        "crates/sched/src/fixture.rs",
        &fixture("counters_mutation.rs"),
    );
    assert_eq!(
        rules_of(&f),
        ["single-recording-point", "single-recording-point"],
        "{f:?}"
    );
    assert!(f[0].message.contains("dram_lines_pool"));
    assert!(f[1].message.contains("demand_read_lines"));
}

#[test]
fn replay_reset_fixture_flags_the_unaudited_rebind() {
    let f = scan_file_as("crates/sched/src/fixture.rs", &fixture("replay_reset.rs"));
    assert_eq!(rules_of(&f), ["replay-reset"], "{f:?}");
    assert_eq!(f[0].line, 6);
}

#[test]
fn migration_apply_path_is_the_only_sanctioned_rebind_site() {
    let path = workspace_root().join("crates/sim/src/machine.rs");
    let src = std::fs::read_to_string(path).expect("read machine.rs");
    // On its audited path the migration apply's rebind is sanctioned...
    assert!(
        scan_file_as("crates/sim/src/machine.rs", &src)
            .iter()
            .all(|f| f.rule != "replay-reset"),
        "machine.rs migration path must be on the audit list"
    );
    // ...but the same code moved anywhere else trips the rule.
    let f = scan_file_as("crates/sim/src/tiering.rs", &src);
    assert!(
        f.iter().any(|f| f.rule == "replay-reset"),
        "rebind_page outside the audit list must be flagged: {f:?}"
    );
}

#[test]
fn hash_iteration_fixture_flags_escape_and_loop_but_not_sorted_uses() {
    let f = scan_file_as("crates/sim/src/fixture.rs", &fixture("hash_iteration.rs"));
    assert_eq!(rules_of(&f), ["hash-iteration", "hash-iteration"], "{f:?}");
    assert_eq!(f[0].line, 11); // keys().collect() escaping unsorted
    assert_eq!(f[1].line, 15); // for-loop over &self.heat
}

#[test]
fn hash_iteration_does_not_apply_outside_report_affecting_crates() {
    let f = scan_file_as(
        "crates/analysis/src/fixture.rs",
        &fixture("hash_iteration.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn wall_clock_fixture_flags_import_and_use_but_not_tests_or_strings() {
    let f = scan_file_as("crates/core/src/fixture.rs", &fixture("wall_clock.rs"));
    assert_eq!(rules_of(&f), ["wall-clock", "wall-clock"], "{f:?}");
    assert_eq!(f[0].line, 5);
    assert_eq!(f[1].line, 8);
}

#[test]
fn wall_clock_is_exempt_in_the_bench_crate() {
    let f = scan_file_as("crates/bench/src/fixture.rs", &fixture("wall_clock.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn unseeded_random_fixture_flags_ambient_rng_but_not_seeded() {
    let f = scan_file_as(
        "crates/workloads/src/fixture.rs",
        &fixture("unseeded_random.rs"),
    );
    assert_eq!(
        rules_of(&f),
        ["unseeded-random", "unseeded-random"],
        "{f:?}"
    );
    assert_eq!(f[0].line, 5);
    assert_eq!(f[1].line, 6);
}

#[test]
fn missing_forbid_fixture_flags_the_crate_root() {
    let f = scan_file_as("crates/demo/src/lib.rs", &fixture("missing_forbid.rs"));
    assert_eq!(rules_of(&f), ["unsafe-audit"], "{f:?}");
    assert_eq!(f[0].line, 1);
    assert!(f[0].message.contains("forbid(unsafe_code)"));
}

#[test]
fn forbid_check_only_applies_to_crate_roots() {
    let f = scan_file_as("crates/demo/src/inner.rs", &fixture("missing_forbid.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn first_party_unsafe_is_flagged_even_with_a_safety_comment() {
    let f = scan_file_as(
        "crates/sim/src/fixture.rs",
        &fixture("first_party_unsafe.rs"),
    );
    assert_eq!(rules_of(&f), ["unsafe-audit"], "{f:?}");
}

#[test]
fn vendor_unsafe_needs_a_safety_comment() {
    let f = scan_file_as("vendor/stub/src/lib.rs", &fixture("vendor_unsafe.rs"));
    assert_eq!(rules_of(&f), ["unsafe-audit"], "{f:?}");
    assert!(f[0].message.contains("SAFETY"));
    // Only the undocumented block; the documented one is sanctioned.
    assert_eq!(f[0].line, 13);
}

#[test]
fn panic_policy_fixture_flags_unwrap_and_expect_but_not_combinators() {
    let f = scan_file_as("crates/sched/src/campaign.rs", &fixture("panic_policy.rs"));
    assert_eq!(rules_of(&f), ["panic-policy", "panic-policy"], "{f:?}");
    assert_eq!(f[0].line, 6); // .unwrap()
    assert_eq!(f[1].line, 8); // .expect(...)
    assert!(f[0].message.contains("quarantine"));
}

#[test]
fn panic_policy_covers_the_journal_and_fault_modules_too() {
    for rel in ["crates/sched/src/journal.rs", "crates/sched/src/fault.rs"] {
        let f = scan_file_as(rel, &fixture("panic_policy.rs"));
        assert_eq!(
            rules_of(&f),
            ["panic-policy", "panic-policy"],
            "{rel}: {f:?}"
        );
    }
}

#[test]
fn panic_policy_does_not_apply_outside_the_campaign_modules() {
    let f = scan_file_as("crates/sched/src/tiering.rs", &fixture("panic_policy.rs"));
    assert!(f.is_empty(), "{f:?}");
    let f = scan_file_as("crates/sim/src/machine.rs", &fixture("panic_policy.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn adding_an_unwrap_to_the_real_campaign_module_fails_the_gate() {
    let path = workspace_root().join("crates/sched/src/campaign.rs");
    let src = std::fs::read_to_string(path).expect("read campaign.rs");
    // The committed quarantine path is panic-free outside tests.
    assert!(
        scan_file_as("crates/sched/src/campaign.rs", &src)
            .iter()
            .all(|f| f.rule != "panic-policy"),
        "committed campaign.rs must satisfy panic-policy"
    );
    // The way a regressing patch would: swallow the journal error.
    let regressed = src.replacen(
        "writer.append(&record)?;",
        "writer.append(&record).unwrap();",
        1,
    );
    assert_ne!(regressed, src, "revert target must exist in campaign.rs");
    let f = scan_file_as("crates/sched/src/campaign.rs", &regressed);
    assert!(
        f.iter().any(|f| f.rule == "panic-policy"),
        "unwrap on the journal append must trip panic-policy: {f:?}"
    );
}

#[test]
fn trace_hygiene_fixture_flags_both_emissions_but_not_the_fn_item() {
    let f = scan_file_as(
        "crates/profiler/src/fixture.rs",
        &fixture("trace_hygiene.rs"),
    );
    assert_eq!(rules_of(&f), ["trace-hygiene", "trace-hygiene"], "{f:?}");
    assert_eq!(f[0].line, 6); // rec.record_event(...)
    assert_eq!(f[1].line, 7); // bare emit(...)
    assert!(f[0].message.contains("sanctioned trace emission points"));
}

#[test]
fn trace_hygiene_exempts_the_sanctioned_sites_and_the_trace_crate() {
    for rel in [
        "crates/sim/src/machine.rs",
        "crates/sim/src/tiering.rs",
        "crates/sim/src/replay.rs",
        "crates/sched/src/campaign.rs",
        "crates/sched/src/journal.rs",
        "crates/trace/src/flight.rs",
    ] {
        let f = scan_file_as(rel, &fixture("trace_hygiene.rs"));
        assert!(f.iter().all(|f| f.rule != "trace-hygiene"), "{rel}: {f:?}");
    }
}

#[test]
fn moving_the_machine_emission_sites_off_the_audit_list_fails_the_gate() {
    let path = workspace_root().join("crates/sim/src/machine.rs");
    let src = std::fs::read_to_string(path).expect("read machine.rs");
    assert!(
        src.contains("record_event"),
        "machine.rs lost its emissions"
    );
    // On the audit list the chunk-close/migration emissions are sanctioned...
    assert!(
        scan_file_as("crates/sim/src/machine.rs", &src)
            .iter()
            .all(|f| f.rule != "trace-hygiene"),
        "machine.rs emission sites must be on the audit list"
    );
    // ...but the same code moved anywhere else trips the rule.
    let f = scan_file_as("crates/profiler/src/runner.rs", &src);
    assert!(
        f.iter().any(|f| f.rule == "trace-hygiene"),
        "record_event outside the audit list must be flagged: {f:?}"
    );
}

#[test]
fn snapshot_hygiene_fixture_flags_both_calls_but_not_the_fn_item() {
    let f = scan_file_as(
        "crates/profiler/src/fixture.rs",
        &fixture("snapshot_hygiene.rs"),
    );
    assert_eq!(
        rules_of(&f),
        ["snapshot-hygiene", "snapshot-hygiene"],
        "{f:?}"
    );
    assert_eq!(f[0].line, 6); // snapshot.to_snapshot_bytes(digest)
    assert_eq!(f[1].line, 7); // bare decode_value(...)
    assert!(f[0].message.contains("audited snapshot modules"));
}

#[test]
fn snapshot_hygiene_exempts_the_audited_modules_and_tests() {
    for rel in [
        "crates/sim/src/snapshot.rs",
        "crates/sched/src/snapshot_cache.rs",
        "crates/sim/tests/golden_snapshot.rs",
        "tests/properties.rs",
    ] {
        let f = scan_file_as(rel, &fixture("snapshot_hygiene.rs"));
        assert!(
            f.iter().all(|f| f.rule != "snapshot-hygiene"),
            "{rel}: {f:?}"
        );
    }
}

#[test]
fn moving_the_snapshot_cache_off_the_audit_list_fails_the_gate() {
    let path = workspace_root().join("crates/sched/src/snapshot_cache.rs");
    let src = std::fs::read_to_string(path).expect("read snapshot_cache.rs");
    assert!(
        src.contains("from_snapshot_bytes"),
        "snapshot_cache.rs lost its codec calls"
    );
    // On the audit list the cache's encode/decode calls are sanctioned...
    assert!(
        scan_file_as("crates/sched/src/snapshot_cache.rs", &src)
            .iter()
            .all(|f| f.rule != "snapshot-hygiene"),
        "snapshot_cache.rs codec sites must be on the audit list"
    );
    // ...but the same code moved anywhere else trips the rule — the way a
    // regressing patch would re-grow an unaudited snapshot reader.
    let f = scan_file_as("crates/profiler/src/runner.rs", &src);
    assert!(
        f.iter().any(|f| f.rule == "snapshot-hygiene"),
        "snapshot codec calls outside the audit list must be flagged: {f:?}"
    );
}

// ---------------------------------------------------------------------------
// The allow mechanism.
// ---------------------------------------------------------------------------

#[test]
fn justified_allows_suppress_in_a_report_affecting_crate() {
    let f = scan_file_as("crates/sim/src/fixture.rs", &fixture("allowed_clean.rs"));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn justified_allows_suppress_in_a_workload_crate() {
    let f = scan_file_as(
        "crates/workloads/src/fixture.rs",
        &fixture("allowed_clean.rs"),
    );
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn an_allow_without_a_reason_suppresses_nothing_and_is_itself_flagged() {
    let mut f = scan_file_as(
        "crates/core/src/fixture.rs",
        &fixture("allow_missing_reason.rs"),
    );
    f.sort_by(|a, b| a.rule.cmp(&b.rule));
    assert_eq!(rules_of(&f), ["allow-syntax", "wall-clock"], "{f:?}");
}

// ---------------------------------------------------------------------------
// The workspace itself is the ultimate fixture: it must be clean, and
// reverting a real bulk-API fix must break the gate.
// ---------------------------------------------------------------------------

#[test]
fn workspace_scans_clean_under_deny_all() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        report.to_json()
    );
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(report.files_scanned > 50, "{} files", report.files_scanned);
}

#[test]
fn reverting_the_bfs_bulk_api_fix_fails_the_gate() {
    let path = workspace_root().join("crates/workloads/src/apps/bfs.rs");
    let src = std::fs::read_to_string(path).expect("read bfs.rs");
    assert!(src.contains("access_range"), "bfs.rs lost its bulk calls");
    // Undo the bulk-API conversion the way a regressing patch would.
    let reverted = src.replace(".access_range(", ".access(");
    let f = scan_file_as("crates/workloads/src/apps/bfs.rs", &reverted);
    assert!(
        f.iter().any(|f| f.rule == "bulk-api"),
        "reverted bfs.rs should trip the bulk-api rule: {f:?}"
    );
    // The committed file, by contrast, is clean.
    assert!(scan_file_as("crates/workloads/src/apps/bfs.rs", &src).is_empty());
}

#[test]
fn reverting_the_lbench_bulk_api_fix_fails_the_gate() {
    let path = workspace_root().join("crates/lbench/src/kernel.rs");
    let src = std::fs::read_to_string(path).expect("read kernel.rs");
    let reverted = src.replace(".access_range(", ".access(");
    let f = scan_file_as("crates/lbench/src/kernel.rs", &reverted);
    assert!(
        f.iter().any(|f| f.rule == "bulk-api"),
        "reverted kernel.rs should trip the bulk-api rule: {f:?}"
    );
    assert!(scan_file_as("crates/lbench/src/kernel.rs", &src).is_empty());
}

// ---------------------------------------------------------------------------
// Report shape.
// ---------------------------------------------------------------------------

#[test]
fn report_json_is_machine_readable_and_sorted() {
    let report = lint_workspace(&workspace_root()).expect("workspace scan");
    let json = report.to_json();
    assert!(json.contains("\"tool\": \"dismem-lint\""));
    assert!(json.contains("\"files_scanned\""));
    assert!(json.contains("\"findings\""));
    let windows: Vec<_> = report.findings.windows(2).collect();
    for w in windows {
        assert!(
            (&w[0].file, w[0].line, &w[0].rule) <= (&w[1].file, w[1].line, &w[1].rule),
            "findings not sorted"
        );
    }
}
