// Known-bad: page rebinding outside the audited migration path.
// Expected: exactly one replay-reset finding — the `fn` item definition is
// not a call, and the directive-covered call is suppressed.

fn sneak_promotion(space: &mut AddressSpace) {
    let _ = space.rebind_page(7, Tier::Local); // BAD
}

// A local helper merely *named* like the placement mutator is not a call.
fn rebind_page(_page: u64) {}

fn audited_elsewhere(space: &mut AddressSpace) {
    // dismem-lint: allow(replay-reset) — fixture: models an audited call site
    let _ = space.rebind_page(9, Tier::Pool);
}
