// Known-bad: host-time observation outside the bench crate.
// Expected: exactly two wall-clock findings (the string literal and the
// test-module use are exempt).

use std::time::Instant;

fn measure() -> u64 {
    let t0 = Instant::now(); // BAD (second finding: the import above)
    let _label = "Instant is just a word here";
    t0.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_a_test_is_fine() {
        let _t = std::time::Instant::now();
    }
}
