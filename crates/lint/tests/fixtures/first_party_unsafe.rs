// Known-bad: `unsafe` in first-party code. Expected: exactly one
// unsafe-audit finding (a SAFETY comment does not legalise first-party
// unsafe; only vendor/ gets that escape hatch).

fn peek(p: *const u8) -> u8 {
    // SAFETY: caller promises p is valid (irrelevant: still first-party).
    unsafe { *p } // BAD
}
