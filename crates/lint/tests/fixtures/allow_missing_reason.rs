// Known-bad: an allow directive with no justification suppresses nothing
// and is itself a finding. Expected: exactly one allow-syntax finding AND
// one wall-clock finding (the suppression does not take effect).

fn now() {
    // dismem-lint: allow(wall-clock)
    let _t = Instant::now(); // still BAD: the allow above has no reason
}
