// Known-bad: snapshot codec entry points outside the audited modules.
// Expected: exactly two snapshot-hygiene findings — the `fn` item definition
// is not a call, test-module use is fine, and the justified allow holds.

fn roll_your_own_cache(snapshot: &MachineSnapshot, digest: u64) -> Vec<u8> {
    let bytes = snapshot.to_snapshot_bytes(digest); // BAD
    let _peek = decode_value(&bytes); // BAD
    bytes
}

// A local helper merely *named* like a codec entry point is not a call.
fn encode_value(_doc: u64) {}

fn audited_elsewhere(snapshot: &MachineSnapshot) -> Vec<u8> {
    // dismem-lint: allow(snapshot-hygiene) — fixture: models an audited codec site
    snapshot.to_snapshot_bytes(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn codec_use_in_tests_is_fine() {
        let bytes = encode_value(&JsonValue::Null);
        assert!(decode_value(&bytes).is_ok());
    }
}
