// Known-bad: per-element access calls inside loop bodies in a workload.
// Expected: exactly two bulk-api findings (the loop-free call is legal).

fn run(engine: &mut dyn MemoryEngine) {
    let a = engine.alloc("a", "fixture", 4096);
    engine.access(a, 0, 8, AccessKind::Read); // statement position: fine

    for i in 0..64u64 {
        engine.access(a, i * 8, 8, AccessKind::Read); // BAD
    }

    let mut off = 0u64;
    while off < 4096 {
        engine.access(a, off, 8, AccessKind::Write); // BAD
        off += 8;
    }
}

impl Workload for Fixture {
    // `for` in `impl ... for ...` is not a loop; the call below is loop-free.
    fn tail(&self, engine: &mut dyn MemoryEngine) {
        engine.access(self.buf, 0, 8, AccessKind::Read);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn loops_in_tests_are_exempt() {
        for i in 0..4u64 {
            engine.access(a, i, 1, AccessKind::Read);
        }
    }
}
