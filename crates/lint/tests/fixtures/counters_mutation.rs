// Known-bad: direct mutation of Counters traffic fields outside the
// recording core. Expected: exactly two single-recording-point findings
// (reads and `flops` mutation are legal).

fn fudge(c: &mut Counters) {
    c.dram_lines_pool += 12; // BAD
    c.demand_read_lines = 0; // BAD
    let _snapshot = c.link_raw_bytes; // read: fine
    c.flops += 99; // `flops` is shared with unrelated structs: fine
}
