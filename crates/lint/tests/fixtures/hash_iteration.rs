// Known-bad: unsorted hash iteration on a report-affecting path.
// Expected: exactly two hash-iteration findings — the method-call form and
// the for-loop form. The sorted and aggregated uses are legal.

struct Tracker {
    heat: HashMap<u64, f64>,
}

impl Tracker {
    fn leak_order(&self) -> Vec<u64> {
        self.heat.keys().copied().collect() // BAD: arbitrary order escapes
    }

    fn walk(&self) {
        for (page, _score) in &self.heat {
            // BAD: loop body observes arbitrary order
            sink(*page);
        }
    }

    fn sorted_is_fine(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self.heat.keys().copied().collect();
        pages.sort_unstable();
        pages
    }

    fn aggregation_is_fine(&self) -> usize {
        self.heat.iter().count()
    }
}
