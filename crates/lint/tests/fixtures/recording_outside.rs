// Known-bad: recording-point calls from outside the sanctioned modules.
// Expected: exactly two single-recording-point findings (the `fn` item
// definition on line 11 is not a call).

fn sneak_traffic(space: &mut AddressSpace) {
    space.record_dram_traffic(0, Tier::Local, 7, 4); // BAD
    let _tier = space.dram_access(0x1000); // BAD
}

// A local helper merely *named* like the recording entry point is not a call.
fn record_dram_traffic(_owner: u32) {}
