// Known-bad: flight-recorder emission outside the sanctioned points.
// Expected: exactly two trace-hygiene findings — the `fn` item definition is
// not a call, test-module emission is fine, and the justified allow holds.

fn leak_events(rec: &mut dyn Recorder, app_lines: u64) {
    rec.record_event(TraceEvent::TierSpill { app_lines, pages: 1 }); // BAD
    emit(app_lines); // BAD
}

// A local helper merely *named* like the emission hook is not a call.
fn record_event(_event: u64) {}

fn audited_elsewhere(rec: &mut dyn Recorder) {
    // dismem-lint: allow(trace-hygiene) — fixture: models an audited emission site
    rec.record_event(TraceEvent::ReplayEngaged { app_lines: 0, mode: ReplayMode::Window });
}

#[cfg(test)]
mod tests {
    #[test]
    fn emission_in_tests_is_fine() {
        let mut rec = FlightRecorder::new();
        rec.record_event(TraceEvent::CampaignCellStarted {
            cell_index: 0,
            cell: "BFS".into(),
            attempt: 1,
        });
    }
}
