// Known-bad: ambient randomness. Expected: exactly two unseeded-random
// findings (`thread_rng` and `rand::random`; the seeded RNG is legal).

fn jitter() -> u64 {
    let mut rng = rand::thread_rng(); // BAD
    let x: u64 = rand::random(); // BAD
    let mut seeded = StdRng::seed_from_u64(0x5EED); // fine
    rng.gen::<u64>() ^ x ^ seeded.gen::<u64>()
}
