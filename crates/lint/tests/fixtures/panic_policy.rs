//! Fixture: panics on the fleet-campaign quarantine path. Scanned as
//! `crates/sched/src/campaign.rs`; only the two non-test panicking calls on
//! lines 6 and 8 are findings.

pub fn run_cell(value: Option<f64>) -> Result<f64, String> {
    let v = value.unwrap();
    let text = std::fs::read_to_string("journal.jsonl")
        .expect("journal must exist");
    // Non-panicking combinators are the sanctioned shape.
    let fallback = value.unwrap_or(0.0);
    let wrapped = value.unwrap_or_else(|| 0.0);
    Ok(v + fallback + wrapped + text.len() as f64)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: Result<u32, ()> = Ok(2);
        assert_eq!(w.expect("ok"), 2);
    }
}
