//! Known-bad crate root: the forbid-unsafe-code attribute is absent.
//! Expected (when scanned as `crates/<x>/src/lib.rs`): exactly one
//! unsafe-audit finding on line 1.

pub fn harmless() -> u32 {
    7
}
