// Known-bad vendor file: one documented unsafe block and one undocumented.
// Expected (when scanned as `vendor/<x>/src/lib.rs`): exactly one
// unsafe-audit finding, on the undocumented block.

pub fn documented(p: *const u8) -> u8 {
    // SAFETY: callers of this stub pass pointers into a live Vec.
    unsafe { *p }
}

// (spacer so the SAFETY comment above is out of range for the next block)

pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p } // BAD: no SAFETY comment within five lines
}
