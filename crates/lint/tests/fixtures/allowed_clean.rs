// Known-good: every violation here carries a justified allow directive, so
// the scan must produce zero findings.

struct S {
    index: HashMap<u64, u64>,
}

impl S {
    fn sum_like(&self) -> u64 {
        let mut acc = 0;
        // dismem-lint: allow(hash-iteration) — integer addition commutes.
        for (_k, v) in &self.index {
            acc += v;
        }
        acc
    }
}

fn run(engine: &mut dyn MemoryEngine, a: Handle) {
    for i in 0..4u64 {
        // dismem-lint: allow(bulk-api) — fixture demonstrating suppression.
        engine.access(a, i * 8, 8, AccessKind::Read);
    }
    let _t = Instant::now(); // dismem-lint: allow(wall-clock) — same line.
}
