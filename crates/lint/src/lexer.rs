//! A minimal hand-rolled Rust lexer.
//!
//! The build container is offline, so `dismem-lint` cannot depend on `syn`;
//! the rules it enforces only need a token stream with line numbers and the
//! comment text (for `SAFETY:` audits and `dismem-lint: allow(...)`
//! directives), not a full AST. The lexer handles the parts of the Rust
//! grammar that would otherwise produce false tokens: line and (nested)
//! block comments, string/raw-string/byte-string literals, char literals vs
//! lifetimes, numeric literals and multi-character operators.

/// Kind of a significant (non-comment, non-whitespace) token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Operator or delimiter (possibly multi-character, e.g. `+=` or `::`).
    Punct,
    /// String literal of any flavour (the content is not retained).
    Str,
    /// Character literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`) or loop label (`'outer`).
    Lifetime,
}

/// One significant token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (`""` for string literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True if the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if the token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (line or block) with its 1-based start line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text including the `//` / `/*` markers.
    pub text: String,
}

/// Lexer output: the significant tokens plus all comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "..",
];

/// Tokenizes `src`. The lexer never fails: unterminated literals simply run
/// to end of input, which is good enough for lint scanning (the workspace is
/// compiled by rustc anyway, so malformed files cannot land).
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(&b[start..i]);
            out.comments.push(Comment {
                line: start_line,
                text: b[start..i].iter().collect(),
            });
            continue;
        }
        // Raw / byte / c-string prefixes and plain strings.
        if c == 'r' || c == 'b' || c == 'c' {
            if let Some(len) = raw_or_byte_string_len(&b[i..]) {
                line += count_lines(&b[i..i + len]);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                i += len;
                continue;
            }
        }
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < b.len() {
                if b[i] == '\\' {
                    i += 2;
                } else if b[i] == '"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            line += count_lines(&b[start..i.min(b.len())]);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime / loop label.
        if c == '\'' {
            // `'ident` not followed by a closing quote is a lifetime.
            let mut j = i + 1;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            let is_lifetime = j > i + 1 && (j >= b.len() || b[j] != '\'');
            if is_lifetime {
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Char literal: skip to the closing quote, honouring escapes.
            let start = i;
            i += 1;
            if i < b.len() && b[i] == '\\' {
                i += 2;
            } else if i < b.len() {
                i += 1;
            }
            while i < b.len() && b[i] != '\'' {
                i += 1;
            }
            i = (i + 1).min(b.len());
            out.toks.push(Tok {
                kind: TokKind::Char,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Identifiers and keywords (including raw identifiers).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numeric literals (loose: `0xFF`, `1_000`, `1.5e-3`, `2f64`, `0..n`
        // stops before the range operator).
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() {
                let d = b[i];
                if d.is_alphanumeric() || d == '_' {
                    i += 1;
                } else if d == '.' && i + 1 < b.len() && b[i + 1].is_ascii_digit() {
                    i += 2;
                } else if (d == '+' || d == '-')
                    && matches!(b[i - 1], 'e' | 'E')
                    && b[start..i]
                        .iter()
                        .any(|&x| x == '.' || x == 'e' || x == 'E')
                {
                    i += 1;
                } else {
                    break;
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Multi-character then single-character punctuation.
        let rest: String = b[i..(i + 3).min(b.len())].iter().collect();
        let mut matched = false;
        for p in MULTI_PUNCT {
            if rest.starts_with(p) {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*p).to_string(),
                    line,
                });
                i += p.len();
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Length of a raw/byte/c string literal starting at `b[0]` (one of the
/// prefixes `r` / `b` / `c` / `br` / `rb` / ...), or `None` if `b` does not
/// start a string literal.
fn raw_or_byte_string_len(b: &[char]) -> Option<usize> {
    let mut j = 0;
    // Consume a prefix of string-ish letters (at most 2: `br`, `cr`...).
    while j < 2 && j < b.len() && matches!(b[j], 'r' | 'b' | 'c') {
        j += 1;
    }
    if j == 0 || j >= b.len() {
        return None;
    }
    let raw = b[..j].contains(&'r');
    // Count `#`s of a raw string.
    let mut hashes = 0;
    while raw && j + hashes < b.len() && b[j + hashes] == '#' {
        hashes += 1;
    }
    if b.get(j + hashes) != Some(&'"') {
        return None;
    }
    let mut i = j + hashes + 1;
    while i < b.len() {
        if !raw && b[i] == '\\' {
            i += 2;
            continue;
        }
        if b[i] == '"' {
            if !raw {
                return Some(i + 1);
            }
            // A raw string ends at `"` followed by the right number of `#`s.
            let close = &b[i + 1..(i + 1 + hashes).min(b.len())];
            if close.len() == hashes && close.iter().all(|&h| h == '#') {
                return Some(i + 1 + hashes);
            }
        }
        i += 1;
    }
    Some(b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts() {
        let l = lex("let x = a.access(1);");
        let texts: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            ["let", "x", "=", "a", ".", "access", "(", "1", ")", ";"]
        );
    }

    #[test]
    fn comments_are_captured_not_tokenized() {
        let l = lex("x(); // trailing note\n/* block\nspanning */ y();");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert!(l.toks.iter().any(|t| t.is_ident("y")));
        // `y` is on line 3 (the block comment spans a newline).
        assert_eq!(l.toks.iter().find(|t| t.is_ident("y")).unwrap().line, 3);
    }

    #[test]
    fn strings_hide_their_content() {
        let l = lex(r#"let s = "unsafe Instant .access("; t();"#);
        assert!(!l.toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(!l.toks.iter().any(|t| t.is_ident("Instant")));
        assert!(l.toks.iter().any(|t| t.is_ident("t")));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex(r###"let s = r#"has "quotes" and unsafe"#; u();"###);
        assert!(!l.toks.iter().any(|t| t.is_ident("unsafe")));
        assert!(l.toks.iter().any(|t| t.is_ident("u")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == TokKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn compound_assignment_is_one_token() {
        let l = lex("c.dram_lines_pool += 1; a == b; m =>");
        assert!(l.toks.iter().any(|t| t.is_punct("+=")));
        assert!(l.toks.iter().any(|t| t.is_punct("==")));
        assert!(l.toks.iter().any(|t| t.is_punct("=>")));
        assert!(!l.toks.iter().any(|t| t.is_punct("=")));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let l = lex("a();\n\"two\nlines\";\nb();");
        assert_eq!(l.toks.iter().find(|t| t.is_ident("b")).unwrap().line, 4);
    }
}
