#![forbid(unsafe_code)]
//! Command-line driver for the dismem workspace lint.
//!
//! ```text
//! dismem-lint [--root DIR] [--deny-all] [--json PATH] [--quiet] [--list-rules]
//! ```
//!
//! Exit status is 0 when the scan is clean (or `--deny-all` was not given),
//! 1 when `--deny-all` is set and findings exist, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: dismem-lint [--root DIR] [--deny-all] [--json PATH] [--quiet] [--list-rules]\n\
     \n\
     --root DIR    workspace root to scan (default: current directory)\n\
     --deny-all    exit non-zero if any finding is produced (the CI gate)\n\
     --json PATH   write the findings report as JSON to PATH\n\
     --quiet       suppress per-finding stderr output\n\
     --list-rules  print the rule names and exit"
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("--root requires a directory\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--deny-all" => deny_all = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--quiet" => quiet = true,
            "--list-rules" => {
                for r in dismem_lint::scan::RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let report = match dismem_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dismem-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("dismem-lint: failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !quiet {
        for f in &report.findings {
            eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
    }
    eprintln!(
        "dismem-lint: {} files scanned, {} finding{}",
        report.files_scanned,
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" }
    );

    if deny_all && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
