//! The rule scanner: a block/loop-aware pass over the token stream of one
//! file, applying whichever rule families the file's location opts it into.
//!
//! Rules (see `docs/ARCHITECTURE.md`, "Mechanically enforced contracts"):
//!
//! * `bulk-api` — per-element `.access(` calls inside loop bodies in
//!   `crates/workloads` / `crates/lbench` (workloads must use the bulk
//!   access API so the batched and replay fast paths engage).
//! * `single-recording-point` — `record_dram_traffic` / `dram_access` calls,
//!   or direct mutation of `Counters` traffic fields, outside the sanctioned
//!   recording modules (all DRAM traffic flows through one recording point).
//! * `hash-iteration` — iteration over `HashMap` / `HashSet` in
//!   report-affecting crates without an adjacent total-order sort or an
//!   order-insensitive aggregation (`RunReport`s must be bit-identical).
//! * `wall-clock` — `std::time::{Instant, SystemTime}` outside the bench
//!   crate (report-affecting paths must not observe host time).
//! * `unseeded-random` — ambient randomness (`thread_rng`, `from_entropy`,
//!   `rand::random`) anywhere in first-party code.
//! * `unsafe-audit` — every first-party crate root carries
//!   `#![forbid(unsafe_code)]`, no first-party `unsafe`, and vendored
//!   `unsafe` blocks carry a `// SAFETY:` comment.
//! * `replay-reset` — `rebind_page` (the `AddressSpace` placement
//!   mutator) called outside the audited migration path; replayed DRAM
//!   events land on pages, so every applied rebind must pair with
//!   `CacheSim::replay_hard_reset`, which only the audited path guarantees.
//! * `panic-policy` — `.unwrap()` / `.expect()` outside `#[cfg(test)]` in
//!   the fleet-campaign modules (`crates/sched/src/{campaign,journal,fault}.rs`):
//!   the retry/quarantine path must propagate errors, not panic, or a single
//!   bad cell aborts the whole campaign.
//! * `trace-hygiene` — flight-recorder emission (`record_event`, `emit`)
//!   outside the sanctioned emission points (`crates/sim/src/{machine,tiering,
//!   replay}.rs`, `crates/sched/src/{campaign,journal}.rs`): events are part
//!   of the observability contract, so each one must come from an audited
//!   site stamped with a simulated clock, not from arbitrary code.
//! * `snapshot-hygiene` — snapshot codec entry points (`encode_value`,
//!   `decode_value`, `to_snapshot_bytes`, `from_snapshot_bytes`) called
//!   outside the audited snapshot modules (`crates/sim/src/snapshot.rs`,
//!   `crates/sched/src/snapshot_cache.rs`): snapshot bytes on disk outlive
//!   the binary that wrote them, so every producer/consumer must sit where
//!   the versioned-envelope and golden-fixture contract is enforced.
//! * `allow-syntax` — a `dismem-lint: allow(...)` directive without a
//!   justification; an allow with no reason suppresses nothing.
//!
//! Findings are suppressed by an inline directive on the same line, or on a
//! comment-only line directly above the flagged line:
//!
//! ```text
//! // dismem-lint: allow(<rule>[, <rule>...]) — <non-empty reason>
//! ```

use crate::lexer::{lex, Tok, TokKind};
use crate::report::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// Where a file sits in the workspace, which decides the rules that apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileClass {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Crate the file belongs to (`"facade"` for the root package).
    pub crate_name: String,
    /// True for files under `vendor/`.
    pub is_vendor: bool,
    /// True for files under a `tests/` directory.
    pub in_tests: bool,
    /// True for files under a `benches/` directory.
    pub in_benches: bool,
    /// True for files under an `examples/` directory.
    pub in_examples: bool,
    /// True if this is a crate root (`src/lib.rs` / `src/main.rs`).
    pub is_crate_root: bool,
}

/// Classifies a workspace-relative path (`/`-separated).
pub fn classify(rel: &str) -> FileClass {
    let is_vendor = rel.starts_with("vendor/");
    let crate_name = if is_vendor {
        rel.split('/').nth(1).unwrap_or("vendor").to_string()
    } else if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("unknown").to_string()
    } else {
        "facade".to_string()
    };
    FileClass {
        rel: rel.to_string(),
        crate_name,
        is_vendor,
        in_tests: rel.contains("/tests/") || rel.starts_with("tests/"),
        in_benches: rel.contains("/benches/") || rel.starts_with("benches/"),
        in_examples: rel.contains("/examples/") || rel.starts_with("examples/"),
        is_crate_root: !is_vendor
            && (rel == "src/lib.rs"
                || (rel.starts_with("crates/")
                    && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs")))),
    }
}

/// Modules allowed to call `record_dram_traffic` / `dram_access`: the single
/// recording point itself and the cache that produces the events.
const RECORDING_SANCTIONED: &[&str] = &[
    "crates/sim/src/address_space.rs",
    "crates/sim/src/cache.rs",
    "crates/sim/src/counters.rs",
];

/// Modules allowed to mutate `Counters` traffic fields directly: the
/// recording core plus `machine.rs`, which owns the open chunk both
/// pipelines fold their tallies into.
const COUNTER_MUTATION_SANCTIONED: &[&str] = &[
    "crates/sim/src/address_space.rs",
    "crates/sim/src/cache.rs",
    "crates/sim/src/counters.rs",
    "crates/sim/src/machine.rs",
];

/// `Counters` fields whose names are distinctive enough to detect mutation
/// through any receiver (`flops` is deliberately absent: the name is shared
/// with unrelated structs).
const COUNTER_FIELDS: &[&str] = &[
    "demand_read_lines",
    "demand_write_lines",
    "l2_demand_misses",
    "l2_lines_in",
    "pf_issued",
    "pf_useful",
    "useless_hwpf",
    "dram_lines_local",
    "dram_lines_pool",
    "demand_dram_lines_local",
    "demand_dram_lines_pool",
    "writeback_lines_local",
    "writeback_lines_pool",
    "link_raw_bytes",
    "migration_lines_local",
    "migration_lines_pool",
];

/// The replay-reset audit list: modules allowed to call `rebind_page` (the
/// `AddressSpace` placement mutator). The binding structure defines it, and
/// `machine.rs`'s migration-apply path is the single caller that pairs every
/// applied rebind with `CacheSim::replay_hard_reset` — a rebind anywhere
/// else would leave engaged replay state pointing at the wrong tier.
const REPLAY_RESET_SANCTIONED: &[&str] = &[
    "crates/sim/src/address_space.rs",
    "crates/sim/src/machine.rs",
];

/// The trace-hygiene audit list: modules allowed to emit flight-recorder
/// events. These are the sites `docs/ARCHITECTURE.md` §7 documents — chunk
/// close / migration apply / replay transitions in the simulator, and the
/// cell lifecycle / journal rejections in the fleet campaign. The `trace`
/// crate itself (where `Recorder` lives) is exempted by crate name instead.
const TRACE_EMISSION_SANCTIONED: &[&str] = &[
    "crates/sim/src/machine.rs",
    "crates/sim/src/tiering.rs",
    "crates/sim/src/replay.rs",
    "crates/sched/src/campaign.rs",
    "crates/sched/src/journal.rs",
];

/// The snapshot-hygiene audit list: modules allowed to call the snapshot
/// codec entry points. `snapshot.rs` owns the versioned envelope and
/// `snapshot_cache.rs` is the single warm-start producer/consumer; bytes
/// written anywhere else would bypass the golden-fixture compatibility
/// contract (`docs/ARCHITECTURE.md` §8). The `serde_json` binary codec
/// itself is vendored and exempt by that.
const SNAPSHOT_CODEC_SANCTIONED: &[&str] = &[
    "crates/sim/src/snapshot.rs",
    "crates/sched/src/snapshot_cache.rs",
];

/// The snapshot codec entry points the audit covers: the raw binary value
/// codec and the versioned envelope around it.
const SNAPSHOT_CODEC_CALLS: &[&str] = &[
    "encode_value",
    "decode_value",
    "to_snapshot_bytes",
    "from_snapshot_bytes",
];

/// Methods that iterate a hash container in arbitrary order.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "drain",
];

/// Method calls that make an unordered iteration harmless when they appear
/// in the same or the following statement: total-order sorts, or
/// order-insensitive integer aggregations. Only the method-call form
/// (`.name(`) counts — a bare identifier such as a local named `max` does
/// not sanitize anything.
const SANITIZER_METHODS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_by_cached_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "count",
    "len",
    "sum",
    "min",
    "max",
    "contains",
    "contains_key",
    "all",
    "any",
    "is_empty",
];

/// Collecting into an ordered container also sanitizes.
const SANITIZER_TYPES: &[&str] = &["BTreeMap", "BTreeSet", "BinaryHeap"];

const ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

/// Crates whose code feeds `RunReport`s and therefore must not iterate hash
/// containers in arbitrary order.
const REPORT_AFFECTING_CRATES: &[&str] = &["sim", "sched", "core", "trace"];

/// Files on the fleet campaign's quarantine path. A panic here aborts the
/// whole campaign instead of quarantining one cell, so `.unwrap()` /
/// `.expect()` outside `#[cfg(test)]` are findings: errors must propagate as
/// `Result`s into the retry/quarantine machinery.
const PANIC_POLICY_PATHS: &[&str] = &[
    "crates/sched/src/campaign.rs",
    "crates/sched/src/fault.rs",
    "crates/sched/src/journal.rs",
];

/// Crates that express memory behaviour through [`MemoryEngine`] and must
/// use the bulk access API.
const BULK_API_CRATES: &[&str] = &["workloads", "lbench"];

/// One parsed `dismem-lint: allow(...)` directive.
struct AllowDirective {
    line: u32,
    rules: Vec<String>,
    has_reason: bool,
}

/// Scans one file's source, applying the rules selected by `class`.
pub fn scan_source(class: &FileClass, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let mut findings = Vec::new();

    // ------------------------------------------------------------------
    // Allow directives and the comment/code line maps.
    // ------------------------------------------------------------------
    let mut directives: Vec<AllowDirective> = Vec::new();
    for c in &lexed.comments {
        if let Some(d) = parse_allow(c.line, &c.text) {
            if !d.has_reason {
                findings.push(Finding::new(
                    "allow-syntax",
                    &class.rel,
                    d.line,
                    "allow directive without a justification; write \
                     `// dismem-lint: allow(<rule>) — <reason>`",
                ));
            }
            directives.push(d);
        }
    }
    let code_lines: BTreeSet<u32> = lexed.toks.iter().map(|t| t.line).collect();
    // A directive on a comment-only line covers the next line bearing code;
    // a directive sharing a line with code covers that line.
    let mut allowed: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
    for d in &directives {
        if !d.has_reason {
            continue;
        }
        let target = if code_lines.contains(&d.line) {
            Some(d.line)
        } else {
            code_lines.range(d.line + 1..).next().copied()
        };
        if let Some(t) = target {
            allowed
                .entry(t)
                .or_default()
                .extend(d.rules.iter().map(String::as_str));
        }
    }
    let is_allowed = |rule: &str, line: u32| -> bool {
        allowed
            .get(&line)
            .is_some_and(|rules| rules.contains(&rule))
    };

    // ------------------------------------------------------------------
    // Rule applicability for this file.
    // ------------------------------------------------------------------
    let first_party = !class.is_vendor;
    let apply_bulk_api = first_party
        && BULK_API_CRATES.contains(&class.crate_name.as_str())
        && !class.in_tests
        && !class.in_benches;
    let apply_recording_calls = first_party && !RECORDING_SANCTIONED.contains(&class.rel.as_str());
    let apply_counter_mutation = first_party
        && !COUNTER_MUTATION_SANCTIONED.contains(&class.rel.as_str())
        && !class.in_tests
        && !class.in_benches;
    let apply_hash_iteration = first_party
        && REPORT_AFFECTING_CRATES.contains(&class.crate_name.as_str())
        && !class.in_tests
        && !class.in_benches;
    let apply_wall_clock = first_party && class.crate_name != "bench";
    let apply_replay_reset = first_party
        && !REPLAY_RESET_SANCTIONED.contains(&class.rel.as_str())
        && !class.in_tests
        && !class.in_benches;
    let apply_unseeded_random = first_party;
    let apply_panic_policy = first_party && PANIC_POLICY_PATHS.contains(&class.rel.as_str());
    let apply_trace_hygiene = first_party
        && class.crate_name != "trace"
        && !TRACE_EMISSION_SANCTIONED.contains(&class.rel.as_str())
        && !class.in_tests
        && !class.in_benches;
    let apply_snapshot_hygiene = first_party
        && !SNAPSHOT_CODEC_SANCTIONED.contains(&class.rel.as_str())
        && !class.in_tests
        && !class.in_benches;

    // Crate roots must forbid unsafe code (checked on raw text so the exact
    // attribute form is enforced).
    if class.is_crate_root && !src.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding::new(
            "unsafe-audit",
            &class.rel,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`",
        ));
    }

    // ------------------------------------------------------------------
    // Hash-typed variable discovery (two shapes): `name: HashMap<...>`
    // declarations (struct fields, params, typed lets) and
    // `let [mut] name = HashMap::new()`-style bindings.
    // ------------------------------------------------------------------
    let toks = &lexed.toks;
    let mut hash_vars: BTreeSet<String> = BTreeSet::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident
            && (toks[i].text == "HashMap" || toks[i].text == "HashSet"))
        {
            continue;
        }
        // `name : HashMap`
        if i >= 2 && toks[i - 1].is_punct(":") && toks[i - 2].kind == TokKind::Ident {
            hash_vars.insert(toks[i - 2].text.clone());
        }
        // `let [mut] name ... = HashMap :: ctor`
        if i + 2 < toks.len()
            && toks[i + 1].is_punct("::")
            && toks[i + 2].kind == TokKind::Ident
            && matches!(
                toks[i + 2].text.as_str(),
                "new" | "default" | "with_capacity" | "from" | "from_iter"
            )
        {
            // Walk back to the `let` of the current statement, if any.
            for j in (i.saturating_sub(16)..i).rev() {
                if toks[j].is_punct(";") || toks[j].is_punct("{") || toks[j].is_punct("}") {
                    break;
                }
                if toks[j].is_ident("let") {
                    let name = if toks[j + 1].is_ident("mut") {
                        &toks[j + 2]
                    } else {
                        &toks[j + 1]
                    };
                    if name.kind == TokKind::Ident {
                        hash_vars.insert(name.text.clone());
                    }
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Main block/loop-aware pass.
    // ------------------------------------------------------------------
    struct Frame {
        is_loop: bool,
        is_test: bool,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending_loop = false;
    let mut pending_test = false;
    // Lines already reported per rule, to deduplicate overlapping detectors.
    let mut seen: BTreeSet<(u32, &'static str)> = BTreeSet::new();
    let push = |findings: &mut Vec<Finding>,
                seen: &mut BTreeSet<(u32, &'static str)>,
                rule: &'static str,
                line: u32,
                msg: String| {
        if !is_allowed(rule, line) && seen.insert((line, rule)) {
            findings.push(Finding::new(rule, &class.rel, line, &msg));
        }
    };

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        let in_loop = stack.iter().any(|f| f.is_loop);
        let in_test = class.in_tests || stack.iter().any(|f| f.is_test);

        // Block tracking.
        if t.is_punct("{") {
            stack.push(Frame {
                is_loop: pending_loop,
                is_test: pending_test,
            });
            pending_loop = false;
            pending_test = false;
            i += 1;
            continue;
        }
        if t.is_punct("}") {
            stack.pop();
            i += 1;
            continue;
        }

        // `#[cfg(test)] ... mod name {` marks a test module.
        if t.is_punct("#")
            && matches_seq(toks, i + 1, &["[", "cfg", "(", "test", ")", "]"])
            && toks[i + 7..].iter().take(8).any(|x| x.is_ident("mod"))
        {
            pending_test = true;
        }

        // Loop headers. `for` only counts in statement position so that
        // `impl Trait for Type` is not mistaken for a loop.
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "loop" | "while" => pending_loop = true,
                "for" if for_is_loop(toks, i) => {
                    pending_loop = true;
                    // Rule: iterating a hash container with `for x in &map`.
                    if apply_hash_iteration && !in_test {
                        if let Some(line) = for_header_hash_var(toks, i, &hash_vars) {
                            push(
                                &mut findings,
                                &mut seen,
                                "hash-iteration",
                                line,
                                "for-loop over a HashMap/HashSet iterates in arbitrary \
                                 order on a report-affecting path; iterate a sorted \
                                 snapshot instead (or annotate why order cannot matter)"
                                    .to_string(),
                            );
                        }
                    }
                }
                _ => {}
            }
        }

        // Rule: bulk-api — `.access(` inside a loop body.
        if apply_bulk_api
            && !in_test
            && t.is_punct(".")
            && i + 2 < toks.len()
            && toks[i + 1].is_ident("access")
            && toks[i + 2].is_punct("(")
            && in_loop
        {
            push(
                &mut findings,
                &mut seen,
                "bulk-api",
                toks[i + 1].line,
                "per-element `access` call inside a loop; route the whole run \
                 through `access_range`/`gather_batch`/`strided_batch` so the \
                 batched and replay fast paths engage"
                    .to_string(),
            );
        }

        // Rule: single-recording-point — recording calls outside the core.
        if apply_recording_calls
            && t.kind == TokKind::Ident
            && (t.text == "record_dram_traffic" || t.text == "dram_access")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            push(
                &mut findings,
                &mut seen,
                "single-recording-point",
                t.line,
                format!(
                    "`{}` called outside the sanctioned recording modules; all \
                     DRAM traffic must flow through the single recording point \
                     both pipelines share",
                    t.text
                ),
            );
        }

        // Rule: replay-reset — placement mutation outside the audit list.
        if apply_replay_reset
            && t.kind == TokKind::Ident
            && t.text == "rebind_page"
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            push(
                &mut findings,
                &mut seen,
                "replay-reset",
                t.line,
                "`rebind_page` called outside the replay-reset audit list; \
                 rebinding a page invalidates engaged replay state, so \
                 placement may only change on the audited migration path \
                 that hard-resets the replay engine"
                    .to_string(),
            );
        }

        // Rule: trace-hygiene — recorder emission outside the audit list.
        if apply_trace_hygiene
            && !in_test
            && t.kind == TokKind::Ident
            && (t.text == "record_event" || t.text == "emit")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            push(
                &mut findings,
                &mut seen,
                "trace-hygiene",
                t.line,
                format!(
                    "`{}` called outside the sanctioned trace emission points; \
                     flight-recorder events may only be emitted at the audited \
                     chunk-close, migration, replay-transition and campaign \
                     work-queue sites",
                    t.text
                ),
            );
        }

        // Rule: snapshot-hygiene — codec entry points outside the audit list.
        if apply_snapshot_hygiene
            && !in_test
            && t.kind == TokKind::Ident
            && SNAPSHOT_CODEC_CALLS.contains(&t.text.as_str())
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
            && !(i > 0 && toks[i - 1].is_ident("fn"))
        {
            push(
                &mut findings,
                &mut seen,
                "snapshot-hygiene",
                t.line,
                format!(
                    "`{}` called outside the audited snapshot modules; snapshot \
                     bytes on disk outlive the binary, so encode/decode must \
                     flow through the versioned envelope in `snapshot.rs` / \
                     `snapshot_cache.rs` where the golden-fixture contract \
                     is enforced",
                    t.text
                ),
            );
        }

        // Rule: single-recording-point — direct Counters field mutation.
        if apply_counter_mutation
            && !in_test
            && t.is_punct(".")
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && COUNTER_FIELDS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].kind == TokKind::Punct
            && ASSIGN_OPS.contains(&toks[i + 2].text.as_str())
        {
            push(
                &mut findings,
                &mut seen,
                "single-recording-point",
                toks[i + 1].line,
                format!(
                    "direct mutation of `Counters::{}` outside the recording \
                     core; counters may only accumulate through the shared \
                     recording path",
                    toks[i + 1].text
                ),
            );
        }

        // Rule: hash-iteration — method-call form.
        if apply_hash_iteration
            && !in_test
            && t.kind == TokKind::Ident
            && hash_vars.contains(&t.text)
            && !(i >= 2 && toks[i - 1].is_punct(".") && !toks[i - 2].is_ident("self"))
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(".")
            && toks[i + 2].kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&toks[i + 2].text.as_str())
            && toks[i + 3].is_punct("(")
            && !iteration_is_sanitized(toks, i + 2)
        {
            push(
                &mut findings,
                &mut seen,
                "hash-iteration",
                t.line,
                format!(
                    "`{}.{}()` iterates a hash container in arbitrary order on a \
                     report-affecting path with no adjacent total-order sort or \
                     order-insensitive aggregation",
                    t.text,
                    toks[i + 2].text
                ),
            );
        }

        // Rule: panic-policy — unwrap/expect on the campaign quarantine path.
        if apply_panic_policy
            && !in_test
            && t.is_punct(".")
            && i + 2 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && (toks[i + 1].text == "unwrap" || toks[i + 1].text == "expect")
            && toks[i + 2].is_punct("(")
        {
            push(
                &mut findings,
                &mut seen,
                "panic-policy",
                toks[i + 1].line,
                format!(
                    "`.{}()` on the fleet-campaign quarantine path; a panic \
                     here aborts the whole campaign — propagate the error so \
                     the cell is retried and quarantined instead",
                    toks[i + 1].text
                ),
            );
        }

        // Rule: wall-clock.
        if apply_wall_clock
            && !in_test
            && t.kind == TokKind::Ident
            && (t.text == "Instant" || t.text == "SystemTime")
        {
            push(
                &mut findings,
                &mut seen,
                "wall-clock",
                t.line,
                format!(
                    "`{}` observed outside the bench crate; report-affecting \
                     paths must be deterministic",
                    t.text
                ),
            );
        }

        // Rule: unseeded-random.
        if apply_unseeded_random
            && t.kind == TokKind::Ident
            && (t.text == "thread_rng"
                || t.text == "from_entropy"
                || (t.text == "random"
                    && i >= 2
                    && toks[i - 1].is_punct("::")
                    && toks[i - 2].is_ident("rand")))
        {
            push(
                &mut findings,
                &mut seen,
                "unseeded-random",
                t.line,
                "ambient randomness; every RNG on a report-affecting path must \
                 be seeded explicitly"
                    .to_string(),
            );
        }

        // Rule: unsafe-audit.
        if t.is_ident("unsafe") {
            if class.is_vendor {
                if !safety_comment_nearby(&lexed.comments, t.line) {
                    push(
                        &mut findings,
                        &mut seen,
                        "unsafe-audit",
                        t.line,
                        "vendored `unsafe` without a `// SAFETY:` comment within \
                         the preceding five lines"
                            .to_string(),
                    );
                }
            } else {
                push(
                    &mut findings,
                    &mut seen,
                    "unsafe-audit",
                    t.line,
                    "`unsafe` in first-party code; the workspace forbids unsafe \
                     code outside vendor/"
                        .to_string(),
                );
            }
        }

        i += 1;
    }

    findings
}

/// True if `toks[start..]` begins with exactly the given punct/ident texts.
fn matches_seq(toks: &[Tok], start: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, s)| toks.get(start + k).is_some_and(|t| t.text == *s))
}

/// Heuristic: a `for` keyword starts a loop when it appears in statement
/// position (after `{`, `}`, `;`, `=>`, `else`, a loop label, or at the very
/// start), as opposed to `impl Trait for Type`.
fn for_is_loop(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = &toks[i - 1];
    if prev.is_punct("{") || prev.is_punct("}") || prev.is_punct(";") || prev.is_punct("=>") {
        return true;
    }
    if prev.is_ident("else") {
        return true;
    }
    // Labelled loop: `'outer: for ...`.
    prev.is_punct(":") && i >= 2 && toks[i - 2].kind == TokKind::Lifetime
}

/// For a `for` at `toks[i]`, returns the line of a hash-typed variable used
/// in the loop header's iterator expression (between `in` and the body `{`).
fn for_header_hash_var(toks: &[Tok], i: usize, hash_vars: &BTreeSet<String>) -> Option<u32> {
    let mut j = i + 1;
    // Find the `in` of this header (bounded: headers are short).
    while j < toks.len() && j < i + 40 && !toks[j].is_ident("in") {
        if toks[j].is_punct("{") || toks[j].is_punct(";") {
            return None;
        }
        j += 1;
    }
    if j >= toks.len() || !toks[j].is_ident("in") {
        return None;
    }
    // Scan the iterator expression for a known hash variable that is not
    // immediately iterated through a method (the method form is detected —
    // and sanitizer-checked — separately).
    for k in j + 1..toks.len().min(j + 40) {
        if toks[k].is_punct("{") || toks[k].is_punct(";") {
            return None;
        }
        if toks[k].kind == TokKind::Ident && hash_vars.contains(&toks[k].text) {
            // `x.name` is a field access on some other struct unless the
            // receiver is `self`; a shared field name must not implicate it.
            let field_of_other =
                k >= 2 && toks[k - 1].is_punct(".") && !toks[k - 2].is_ident("self");
            // `var.method(...)` is handled (and sanitizer-checked) by the
            // method-call detector.
            let called = toks.get(k + 1).is_some_and(|t| t.is_punct("."));
            if !field_of_other && !called {
                return Some(toks[k].line);
            }
        }
    }
    None
}

/// Looks ahead from an iteration method at `toks[m]` for a sanitizer: a
/// sorting or order-insensitive aggregation method call, or a collect into
/// an ordered container, within the same or the following statement.
fn iteration_is_sanitized(toks: &[Tok], m: usize) -> bool {
    let mut semis = 0;
    for k in m..toks.len().min(m + 90) {
        if toks[k].is_punct(";") {
            semis += 1;
            if semis >= 2 {
                return false;
            }
            continue;
        }
        if toks[k].kind == TokKind::Ident && SANITIZER_TYPES.contains(&toks[k].text.as_str()) {
            return true;
        }
        if toks[k].kind == TokKind::Ident
            && SANITIZER_METHODS.contains(&toks[k].text.as_str())
            && k > 0
            && toks[k - 1].is_punct(".")
            && toks
                .get(k + 1)
                .is_some_and(|t| t.is_punct("(") || t.is_punct("::"))
        {
            return true;
        }
    }
    false
}

/// True if a comment containing `SAFETY:` sits on `line` or within the five
/// lines above it.
fn safety_comment_nearby(comments: &[crate::lexer::Comment], line: u32) -> bool {
    comments
        .iter()
        .any(|c| c.text.contains("SAFETY:") && c.line <= line && line - c.line <= 5)
}

/// Parses a `dismem-lint: allow(rule, ...) — reason` directive out of one
/// comment, if present.
fn parse_allow(line: u32, text: &str) -> Option<AllowDirective> {
    let idx = text.find("dismem-lint:")?;
    let rest = &text[idx + "dismem-lint:".len()..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    // Whatever follows the closing parenthesis, minus separator punctuation,
    // is the justification; it must not be empty.
    let reason: String = rest[close + 1..]
        .trim_start_matches(|c: char| c.is_whitespace() || c == '—' || c == '-' || c == ':')
        .trim()
        .to_string();
    Some(AllowDirective {
        line,
        rules,
        has_reason: !reason.is_empty(),
    })
}

/// All rule names the scanner can emit, for `--list-rules` and docs.
pub const RULES: &[&str] = &[
    "bulk-api",
    "single-recording-point",
    "replay-reset",
    "hash-iteration",
    "wall-clock",
    "unseeded-random",
    "unsafe-audit",
    "panic-policy",
    "trace-hygiene",
    "snapshot-hygiene",
    "allow-syntax",
];
