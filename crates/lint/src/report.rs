//! Machine-readable findings report.
//!
//! The report is the contract between `dismem-lint` and CI: on a gate
//! failure the JSON artifact is uploaded so the offending sites can be read
//! without re-running the tool. Findings are sorted by `(file, line, rule)`
//! so reports diff cleanly between runs.

use serde::Serialize;

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Finding {
    /// Rule identifier (see [`crate::scan::RULES`]).
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable explanation of the violation.
    pub message: String,
}

impl Finding {
    /// Creates a finding.
    pub fn new(rule: &str, file: &str, line: u32, message: &str) -> Self {
        Self {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            message: message.to_string(),
        }
    }
}

/// Full report for one lint run over the workspace.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Tool name (always `"dismem-lint"`).
    pub tool: String,
    /// Tool version (the workspace version).
    pub version: String,
    /// Workspace root the scan ran against.
    pub root: String,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Violations found, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Assembles a report, sorting the findings into their canonical order.
    pub fn new(root: &str, files_scanned: usize, mut findings: Vec<Finding>) -> Self {
        findings.sort_by(|a, b| {
            a.file
                .cmp(&b.file)
                .then_with(|| a.line.cmp(&b.line))
                .then_with(|| a.rule.cmp(&b.rule))
        });
        Self {
            tool: "dismem-lint".to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            root: root.to_string(),
            files_scanned,
            findings,
        }
    }

    /// True if the scan found no violations.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Pretty-printed JSON form of the report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("stub serializer is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn findings_sort_canonically() {
        let r = Report::new(
            ".",
            2,
            vec![
                Finding::new("wall-clock", "b.rs", 9, "m"),
                Finding::new("bulk-api", "a.rs", 20, "m"),
                Finding::new("bulk-api", "a.rs", 3, "m"),
            ],
        );
        let order: Vec<(&str, u32)> = r
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.line))
            .collect();
        assert_eq!(order, [("a.rs", 3), ("a.rs", 20), ("b.rs", 9)]);
    }

    #[test]
    fn report_serializes_to_json() {
        let r = Report::new(".", 1, vec![Finding::new("bulk-api", "a.rs", 3, "msg")]);
        let json = r.to_json();
        assert!(json.contains("\"tool\": \"dismem-lint\""));
        assert!(json.contains("\"rule\": \"bulk-api\""));
        assert!(json.contains("\"line\": 3"));
    }
}
