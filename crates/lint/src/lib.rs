#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! `dismem-lint`: a contract-enforcing static-analysis pass for the dismem
//! workspace.
//!
//! The simulator's correctness rests on a handful of cross-cutting
//! invariants that ordinary tests exercise only incidentally: workloads must
//! speak the bulk access API, all DRAM traffic must flow through one
//! recording point, report-affecting code must be deterministic, and the
//! workspace must stay free of unsafe code. This crate turns each of those
//! contracts into a scanner rule (see [`scan`]) and a CI gate
//! (`cargo run -p dismem-lint -- --deny-all`).
//!
//! The scanner is a hand-rolled lexer plus a block-aware token pass — the
//! build container is offline, so a full AST via `syn` is not available and
//! the rules do not need one.

pub mod lexer;
pub mod report;
pub mod scan;

use report::{Finding, Report};
use scan::{classify, scan_source};
use std::path::{Path, PathBuf};

/// Scans one file's source as though it lived at `rel` in the workspace.
///
/// This is the test entry point: fixtures are scanned with synthetic paths
/// so each rule family can be exercised in isolation.
pub fn scan_file_as(rel: &str, source: &str) -> Vec<Finding> {
    scan_source(&classify(rel), source)
}

/// Directories never scanned: build output, VCS metadata, prose, and the
/// lint fixtures themselves (which are deliberately-bad code).
fn skip_dir(rel: &str) -> bool {
    matches!(rel, "target" | ".git" | ".github" | "docs" | "artifacts")
        || rel == "crates/lint/tests/fixtures"
}

/// Recursively collects the `.rs` files to scan, sorted for determinism.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if !skip_dir(&rel) {
                collect_rs_files(root, &path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root` and assembles the report.
///
/// Vendored crates are scanned only by the unsafe-audit rule (their code is
/// not ours, but unsafe blocks inside it still need `// SAFETY:` notes);
/// first-party crates get the full rule set according to their location.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path)?;
        findings.extend(scan_source(&classify(&rel), &source));
    }
    Ok(Report::new(&root.to_string_lossy(), files.len(), findings))
}
