//! Figure 8: prefetch accuracy, coverage, excessive prefetch traffic and
//! performance gain from prefetching for all tested applications.

use dismem_bench::{base_config, paper, print_table, workload, write_json, Row};
use dismem_profiler::level1::level1_profile;
use dismem_workloads::{InputScale, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Fig8Row {
    workload: String,
    accuracy: f64,
    coverage: f64,
    excess_traffic: f64,
    performance_gain: f64,
}

fn main() {
    let config = base_config();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for kind in WorkloadKind::all() {
        let w = workload(kind, InputScale::X1);
        let report = level1_profile(w.as_ref(), &config);
        let p = report.prefetch;
        let reference = paper::FIG8_PREFETCH
            .iter()
            .find(|(name, ..)| *name == kind.name())
            .unwrap();
        rows.push(Row::new(
            kind.name(),
            vec![
                format!("{:.0}%", 100.0 * p.accuracy),
                format!("{:.0}%", 100.0 * p.coverage),
                format!("{:.0}%", 100.0 * p.excess_traffic),
                format!("{:.0}%", 100.0 * p.performance_gain),
                format!(
                    "{:.0}/{:.0}/{:.0}/{:.0}%",
                    100.0 * reference.1,
                    100.0 * reference.2,
                    100.0 * reference.3,
                    100.0 * reference.4
                ),
            ],
        ));
        json.push(Fig8Row {
            workload: kind.name().to_string(),
            accuracy: p.accuracy,
            coverage: p.coverage,
            excess_traffic: p.excess_traffic,
            performance_gain: p.performance_gain,
        });
        eprintln!("  [fig08] profiled {}", kind.name());
    }
    print_table(
        "Figure 8 — prefetching suitability (measured | paper acc/cov/excess/gain)",
        &[
            "accuracy",
            "coverage",
            "excess traffic",
            "perf gain",
            "paper (a/c/e/g)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): all applications except XSBench and BFS exceed 80% accuracy; \
         Hypre and NekRS have the highest coverage; SuperLU stands out with high excess traffic \
         yet still ~31% gain; XSBench has <1% coverage and virtually no gain."
    );
    write_json("fig08_prefetch_metrics", &json);
}
