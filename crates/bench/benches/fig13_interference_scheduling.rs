//! Figure 13 (case study 2): execution-time distributions of each application
//! over 100 runs under a random co-location baseline (background LoI 0–50%)
//! and an interference-aware scheduler (0–20%).

use dismem_bench::{base_config, is_quick, paper, print_table, workload, write_json, Row};
use dismem_profiler::{pooled_config, run_workload, RunOptions};
use dismem_sched::{campaign::compare_policies, CampaignConfig};
use dismem_workloads::{InputScale, WorkloadKind};

fn main() {
    let config = base_config();
    let campaign = CampaignConfig {
        runs: if is_quick() { 20 } else { 100 },
        epochs_per_run: 8,
        seed: 0xF1613,
    };

    let mut rows = Vec::new();
    let mut comparisons = Vec::new();
    for kind in WorkloadKind::all() {
        let w = workload(kind, InputScale::X1);
        // 50% memory-pool capacity as in the paper's setup.
        let cfg = pooled_config(&config, w.as_ref(), 0.5);
        let report = run_workload(w.as_ref(), &RunOptions::new(cfg));
        let cmp = compare_policies(kind.name(), &report, &campaign);
        let reference = paper::FIG13_SPEEDUP
            .iter()
            .find(|(n, ..)| *n == kind.name())
            .unwrap();
        rows.push(Row::new(
            kind.name(),
            vec![
                format!(
                    "{:.2}/{:.2}/{:.2} ms",
                    cmp.baseline.summary.q1 * 1e3,
                    cmp.baseline.summary.median * 1e3,
                    cmp.baseline.summary.q3 * 1e3
                ),
                format!(
                    "{:.2}/{:.2}/{:.2} ms",
                    cmp.aware.summary.q1 * 1e3,
                    cmp.aware.summary.median * 1e3,
                    cmp.aware.summary.q3 * 1e3
                ),
                format!("{:+.1}%", cmp.mean_speedup_percent()),
                format!("{:+.1}%", cmp.p75_reduction_percent()),
                format!("{:.0}% / {:.0}%", reference.1, reference.2),
            ],
        ));
        comparisons.push(cmp);
        eprintln!("  [fig13] {} campaigns finished", kind.name());
    }
    print_table(
        &format!(
            "Figure 13 — execution time over {} runs: random baseline vs interference-aware",
            campaign.runs
        ),
        &[
            "baseline q1/med/q3",
            "I-aware q1/med/q3",
            "mean speedup",
            "p75 reduction",
            "paper (speedup/p75)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): interference-aware scheduling improves mean runtime and cuts \
         variability; Hypre benefits most (~4%), NekRS/SuperLU ~2%, BFS/HPL ~1%, XSBench ~0%."
    );
    write_json("fig13_interference_scheduling", &comparisons);
}
