//! Figure 13 (case study 2): execution-time distributions of each application
//! over 100 runs under a random co-location baseline (background LoI 0–50%)
//! and an interference-aware scheduler (0–20%).

use dismem_bench::{base_config, is_quick, paper, print_table, workload, write_json, Row};
use dismem_profiler::{pooled_config, run_workload, RunOptions};
use dismem_sched::{campaign::compare_policies_sequential, CampaignConfig};
use dismem_workloads::{InputScale, WorkloadKind};
use rayon::prelude::*;

fn main() {
    let config = base_config();
    let campaign = CampaignConfig {
        runs: if is_quick() { 20 } else { 100 },
        epochs_per_run: 8,
        seed: 0xF1613,
    };

    // Each workload's profiling run + campaigns are independent: execute
    // them concurrently on the thread pool. Within a worker the campaigns
    // run sequentially — the scoped-thread rayon stand-in has no shared
    // pool, so nesting the trial fan-out would oversubscribe the CPU.
    let kinds: Vec<WorkloadKind> = WorkloadKind::all().to_vec();
    let comparisons: Vec<_> = kinds
        .par_iter()
        .map(|&kind| {
            let w = workload(kind, InputScale::X1);
            // 50% memory-pool capacity as in the paper's setup.
            let cfg = pooled_config(&config, w.as_ref(), 0.5);
            let report = run_workload(w.as_ref(), &RunOptions::new(cfg));
            let cmp = compare_policies_sequential(kind.name(), &report, &campaign);
            eprintln!("  [fig13] {} campaigns finished", kind.name());
            cmp
        })
        .collect();

    let mut rows = Vec::new();
    for cmp in &comparisons {
        let reference = paper::FIG13_SPEEDUP
            .iter()
            .find(|(n, ..)| *n == cmp.workload)
            .unwrap();
        rows.push(Row::new(
            cmp.workload.clone(),
            vec![
                format!(
                    "{:.2}/{:.2}/{:.2} ms",
                    cmp.baseline.summary.q1 * 1e3,
                    cmp.baseline.summary.median * 1e3,
                    cmp.baseline.summary.q3 * 1e3
                ),
                format!(
                    "{:.2}/{:.2}/{:.2} ms",
                    cmp.aware.summary.q1 * 1e3,
                    cmp.aware.summary.median * 1e3,
                    cmp.aware.summary.q3 * 1e3
                ),
                format!("{:+.1}%", cmp.mean_speedup_percent()),
                format!("{:+.1}%", cmp.p75_reduction_percent()),
                format!("{:.0}% / {:.0}%", reference.1, reference.2),
            ],
        ));
    }
    print_table(
        &format!(
            "Figure 13 — execution time over {} runs: random baseline vs interference-aware",
            campaign.runs
        ),
        &[
            "baseline q1/med/q3",
            "I-aware q1/med/q3",
            "mean speedup",
            "p75 reduction",
            "paper (speedup/p75)",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): interference-aware scheduling improves mean runtime and cuts \
         variability; Hypre benefits most (~4%), NekRS/SuperLU ~2%, BFS/HPL ~1%, XSBench ~0%."
    );
    write_json("fig13_interference_scheduling", &comparisons);
}
