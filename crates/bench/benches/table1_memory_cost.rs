//! Table 1: memory configuration of the Top-10 supercomputers and estimated
//! DDR/HBM cost (HBM at 3–5× the DDR unit price).

use dismem_analysis::{estimate_costs, systems::DEFAULT_DDR_USD_PER_GIB, top10_systems};
use dismem_bench::{print_table, write_json, Row};

fn main() {
    let systems = top10_systems();
    let costs = estimate_costs(&systems, DEFAULT_DDR_USD_PER_GIB, 4.0);

    let rows: Vec<Row> = systems
        .iter()
        .zip(&costs)
        .map(|(s, c)| {
            Row::new(
                format!("#{} {}", s.rank, s.name),
                vec![
                    if s.ddr_per_node_gib > 0 {
                        format!("{} GB", s.ddr_per_node_gib)
                    } else {
                        "-".to_string()
                    },
                    if s.hbm_per_node_gib > 0 {
                        format!("{} GB", s.hbm_per_node_gib)
                    } else {
                        "-".to_string()
                    },
                    if s.hbm_bw_per_node_tbs > 0.0 {
                        format!("{:.1} TB/s", s.hbm_bw_per_node_tbs)
                    } else {
                        "-".to_string()
                    },
                    format!("{}", s.nodes),
                    if c.ddr_cost_musd > 0.0 {
                        format!("${:.1} M", c.ddr_cost_musd)
                    } else {
                        "-".to_string()
                    },
                    if c.hbm_cost_musd > 0.0 {
                        format!("${:.1} M", c.hbm_cost_musd)
                    } else {
                        "-".to_string()
                    },
                ],
            )
        })
        .collect();

    print_table(
        "Table 1 — Top-10 memory configuration and estimated cost (HBM = 4x DDR unit price)",
        &[
            "DDR/node",
            "HBM/node",
            "HBM BW/node",
            "nodes",
            "est. DDR cost",
            "est. HBM cost",
        ],
        &rows,
    );
    println!(
        "\nPaper reference: Frontier ≈ $34M DDR / $135M HBM; Fugaku ≈ $142M HBM. The estimates \
         above use ${DEFAULT_DDR_USD_PER_GIB}/GiB DDR and a 4x HBM multiplier."
    );
    write_json("table1_memory_cost", &costs);
}
