//! Figure 10: sensitivity of each application to memory interference on the
//! pool link (LoI = 0–50%) for three capacity configurations.

use dismem_bench::{base_config, paper, print_table, workload, write_json, Row};
use dismem_profiler::level3::{level3_profile, Level3Report, PAPER_LOI_LEVELS};
use dismem_workloads::{InputScale, WorkloadKind};

fn main() {
    let config = base_config();
    // Local capacity fractions corresponding to the paper's three panels.
    let fractions = [0.75, 0.50, 0.25];
    let mut json: Vec<Level3Report> = Vec::new();

    for &local_fraction in &fractions {
        let mut rows = Vec::new();
        for kind in WorkloadKind::all() {
            let w = workload(kind, InputScale::X1);
            let report = level3_profile(w.as_ref(), &config, local_fraction, &PAPER_LOI_LEVELS);
            let cells: Vec<String> = report
                .compute_phase_sensitivity
                .iter()
                .map(|p| format!("{:.3}", p.relative_performance))
                .collect();
            rows.push(Row::new(format!("{}-p2", kind.short_name()), cells));
            json.push(report);
            eprintln!(
                "  [fig10] {} at {:.0}% local",
                kind.name(),
                local_fraction * 100.0
            );
        }
        print_table(
            &format!(
                "Figure 10 — relative performance vs LoI, {:.0}%-{:.0}% capacity ratio",
                local_fraction * 100.0,
                (1.0 - local_fraction) * 100.0
            ),
            &["LoI=0", "LoI=10", "LoI=20", "LoI=30", "LoI=40", "LoI=50"],
            &rows,
        );
    }

    println!("\nPaper reference (50%-50% configuration, LoI=50):");
    for (name, rel) in paper::FIG10_SENSITIVITY_50_50 {
        println!("  {name:<8} relative performance ≈ {rel:.2}");
    }
    println!(
        "Expected shape: Hypre and NekRS are the most sensitive (low arithmetic intensity with \
         substantial pool traffic); HPL barely reacts despite high pool traffic (compute bound); \
         XSBench reacts little because its remote access ratio is tiny."
    );
    write_json("fig10_interference_sensitivity", &json);
}
