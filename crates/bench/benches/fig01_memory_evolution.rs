//! Figure 1: evolution of memory characteristics of leadership supercomputers
//! over the past 15 years.

use dismem_analysis::memory_evolution;
use dismem_bench::{print_table, write_json, Row};

fn main() {
    let trend = memory_evolution();
    let rows: Vec<Row> = trend
        .iter()
        .map(|p| {
            Row::new(
                format!("{} ({})", p.year, p.system),
                vec![
                    format!("{} GiB", p.capacity_per_node_gib),
                    format!("{:.0} GB/s", p.bandwidth_per_node_gbs),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 1 — memory capacity and bandwidth per node of leadership systems",
        &["capacity/node", "bandwidth/node"],
        &rows,
    );

    let first = trend.first().unwrap();
    let last = trend.last().unwrap();
    println!(
        "\nGrowth over the period: capacity x{:.0}, bandwidth x{:.0} (the paper's point: both \
         have increased dramatically, driving memory cost).",
        last.capacity_per_node_gib as f64 / first.capacity_per_node_gib as f64,
        last.bandwidth_per_node_gbs / first.bandwidth_per_node_gbs
    );
    write_json("fig01_memory_evolution", &trend);
}
