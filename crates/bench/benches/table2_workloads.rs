//! Table 2: evaluated workloads, their parallelization, the paper's input
//! problems, and the proxy inputs used by this reproduction (with their
//! ~1:2:4 footprint ratio).

use dismem_bench::{print_table, write_json, Row};
use dismem_workloads::{InputScale, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Table2Row {
    workload: &'static str,
    parallelization: &'static str,
    paper_inputs: [&'static str; 3],
    proxy_inputs: Vec<String>,
    proxy_footprints_mib: Vec<f64>,
}

fn main() {
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for kind in WorkloadKind::all() {
        let mut proxy_inputs = Vec::new();
        let mut footprints = Vec::new();
        for scale in InputScale::all() {
            let w = kind.instantiate(scale);
            proxy_inputs.push(w.input_description());
            footprints.push(w.expected_footprint_bytes() as f64 / (1 << 20) as f64);
        }
        let ratio2 = footprints[1] / footprints[0];
        let ratio4 = footprints[2] / footprints[0];
        rows.push(Row::new(
            kind.name(),
            vec![
                kind.parallelization().to_string(),
                format!("{:.0} MiB", footprints[0]),
                format!("{:.0} MiB", footprints[1]),
                format!("{:.0} MiB", footprints[2]),
                format!("1 : {ratio2:.1} : {ratio4:.1}"),
            ],
        ));
        json.push(Table2Row {
            workload: kind.name(),
            parallelization: kind.parallelization(),
            paper_inputs: kind.paper_inputs(),
            proxy_inputs,
            proxy_footprints_mib: footprints,
        });
    }
    print_table(
        "Table 2 — evaluated workloads and proxy input problems (paper: three inputs of ~1:2:4 memory usage)",
        &["parallelization", "x1 footprint", "x2 footprint", "x4 footprint", "ratio"],
        &rows,
    );
    println!("\nOriginal paper inputs:");
    for kind in WorkloadKind::all() {
        println!("  {:<8} {}", kind.name(), kind.paper_inputs().join(" | "));
    }
    write_json("table2_workloads", &json);
}
