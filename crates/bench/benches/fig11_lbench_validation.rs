//! Figure 11: LBench validation — (left) measured LoI vs configured
//! intensity, (middle) interference coefficient vs background intensity with
//! the raw-counter (PCM) saturation, (right) interference coefficient caused
//! by each application.

use dismem_bench::{base_config, paper, print_table, workload, write_json, Row};
use dismem_lbench::{app_interference_coefficient, LBenchModel};
use dismem_profiler::{pooled_config, run_workload, RunOptions};
use dismem_workloads::{InputScale, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Fig11Output {
    calibration_1_thread: Vec<dismem_lbench::CalibrationPoint>,
    calibration_2_threads: Vec<dismem_lbench::CalibrationPoint>,
    ic_vs_intensity: Vec<(u64, f64, f64)>,
    app_interference_coefficients: Vec<(String, f64)>,
}

fn main() {
    let config = base_config();
    let model = LBenchModel::from_config(&config);

    // Left panel: configured intensity vs measured LoI for 1 and 2 threads.
    let targets = [10.0, 20.0, 30.0, 40.0, 50.0];
    let cal1 = model.calibration_sweep(&targets, 1);
    let cal2 = model.calibration_sweep(&targets, 2);
    let rows: Vec<Row> = targets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            Row::new(
                format!("configured {t:.0}%"),
                vec![
                    format!(
                        "{:.1}% (NFLOP={})",
                        cal1[i].measured_loi_percent, cal1[i].flops_per_element
                    ),
                    format!(
                        "{:.1}% (NFLOP={})",
                        cal2[i].measured_loi_percent, cal2[i].flops_per_element
                    ),
                ],
            )
        })
        .collect();
    print_table(
        "Figure 11 (left) — measured LoI vs configured LBench intensity",
        &["1 thread", "2 threads"],
        &rows,
    );

    // Middle panel: IC and PCM traffic vs background workload intensity.
    let intensities = [1u64, 2, 4, 8, 16, 32, 64, 128];
    let mut rows = Vec::new();
    let mut ic_series = Vec::new();
    for &nflop in &intensities {
        let ic = model.interference_coefficient_vs_lbench(nflop, 12);
        let pcm = model.pcm_traffic(nflop, 12) / 1e9;
        rows.push(Row::new(
            format!("{nflop} flops/element"),
            vec![format!("{ic:.2}"), format!("{pcm:.1} GB/s")],
        ));
        ic_series.push((nflop, ic, pcm));
    }
    print_table(
        "Figure 11 (middle) — interference coefficient vs raw-counter (PCM) traffic",
        &["IC (LBench)", "PCM traffic"],
        &rows,
    );
    println!(
        "  Note: PCM saturates at {:.0} GB/s for low flops/element while the IC keeps rising — \
         LBench resolves contention beyond link saturation (the paper's key validation point).",
        paper::testbed::LINK_SATURATION_GBS
    );

    // Right panel: interference coefficient of each application at 50% pooling.
    let mut rows = Vec::new();
    let mut app_ics = Vec::new();
    for kind in WorkloadKind::all() {
        let w = workload(kind, InputScale::X1);
        let cfg = pooled_config(&config, w.as_ref(), 0.5);
        let report = run_workload(w.as_ref(), &RunOptions::new(cfg));
        let (whole, phases) = app_interference_coefficient(&report, &model, kind.name());
        let phase_max = phases.iter().map(|p| p.coefficient).fold(1.0f64, f64::max);
        let reference = paper::FIG11_IC
            .iter()
            .find(|(n, _)| *n == kind.name())
            .map(|(_, v)| *v)
            .unwrap_or(1.0);
        rows.push(Row::new(
            kind.name(),
            vec![
                format!("{:.2}", whole.coefficient),
                format!("{:.2}", phase_max),
                format!("{:.1} GB/s", whole.link_traffic_gbs),
                format!("{reference:.2}"),
            ],
        ));
        app_ics.push((kind.name().to_string(), whole.coefficient));
        eprintln!("  [fig11] {} IC measured", kind.name());
    }
    print_table(
        "Figure 11 (right) — interference caused by each application (50% pooling)",
        &["IC (run)", "IC (worst phase)", "link traffic", "paper IC"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): NekRS and Hypre introduce the most interference, HPL and \
         XSBench the least; the compute phase causes more interference than initialization."
    );

    write_json(
        "fig11_lbench_validation",
        &Fig11Output {
            calibration_1_thread: cal1,
            calibration_2_threads: cal2,
            ic_vs_intensity: ic_series,
            app_interference_coefficients: app_ics,
        },
    );
}
