//! Criterion micro-benchmarks of the simulator and workload kernels
//! themselves (simulation throughput, not simulated performance).

use criterion::{criterion_group, criterion_main, Criterion};
use dismem_sim::{Machine, MachineConfig};
use dismem_trace::{MemoryEngine, TraceRecorder};
use dismem_workloads::WorkloadKind;

fn bench_cache_streaming(c: &mut Criterion) {
    c.bench_function("sim/stream_4MiB_through_cache", |b| {
        b.iter(|| {
            let mut m = Machine::new(MachineConfig::scaled_testbed());
            let a = m.alloc("A", "bench", 4 << 20);
            m.phase_start("stream");
            m.touch(a, 4 << 20);
            m.read(a, 0, 4 << 20);
            m.phase_end();
            std::hint::black_box(m.finish().total_runtime_s)
        })
    });
}

fn bench_tiny_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads/tiny_on_simulator");
    for kind in WorkloadKind::all() {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                let w = kind.instantiate_tiny();
                let mut m = Machine::new(MachineConfig::test_config());
                w.run(&mut m);
                std::hint::black_box(m.finish().total.l2_lines_in)
            })
        });
    }
    group.finish();
}

fn bench_trace_recorder(c: &mut Criterion) {
    c.bench_function("trace/recorder_hypre_tiny", |b| {
        b.iter(|| {
            let w = WorkloadKind::Hypre.instantiate_tiny();
            let mut rec = TraceRecorder::new();
            w.run(&mut rec);
            std::hint::black_box(rec.stats().bytes_read)
        })
    });
}

fn bench_retime(c: &mut Criterion) {
    let w = WorkloadKind::Hypre.instantiate_tiny();
    let config = MachineConfig::test_config().with_pooling(w.expected_footprint_bytes(), 0.5);
    let mut m = Machine::new(config);
    w.run(&mut m);
    let report = m.finish();
    c.bench_function("sim/retime_under_interference", |b| {
        b.iter(|| {
            std::hint::black_box(
                report
                    .retime(&dismem_sim::InterferenceProfile::Constant(0.3))
                    .total_runtime_s,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache_streaming, bench_tiny_workloads, bench_trace_recorder, bench_retime
}
criterion_main!(benches);
