//! Simulator throughput baseline: simulated cache lines per wall-clock
//! second for the three canonical access shapes (sequential stream, strided
//! sweep, random gather) on the local and pool tiers, comparing the batched
//! line-walk fast path against the per-line reference pipeline.
//!
//! Emits `BENCH_throughput.json` so CI and later PRs can track the
//! performance trajectory. Run with `DISMEM_QUICK=1` for the smoke profile.

use dismem_bench::{base_config, is_quick, print_table, write_json, Row};
use dismem_sim::Machine;
use dismem_trace::access::lines_for;
use dismem_trace::{AccessKind, MemoryEngine, PlacementPolicy};
use serde::Serialize;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Pattern {
    Stream,
    Strided,
    Gather,
}

impl Pattern {
    fn label(self) -> &'static str {
        match self {
            Pattern::Stream => "stream",
            Pattern::Strided => "strided",
            Pattern::Gather => "gather",
        }
    }
}

/// Stride (bytes) of the strided sweep: four cache lines apart.
const STRIDE_BYTES: u64 = 256;
/// Element size (bytes) for strided and gather accesses.
const ELEM_BYTES: u64 = 8;

/// Deterministic pseudo-random 8-byte-aligned offsets covering the array.
fn gather_offsets(array_bytes: u64, count: usize) -> Vec<u64> {
    let slots = array_bytes / ELEM_BYTES;
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 11) % slots) * ELEM_BYTES
        })
        .collect()
}

/// Simulated demand cache-line references issued by one pass of a pattern.
fn lines_per_pass(pattern: Pattern, array_bytes: u64, gather_count: usize) -> u64 {
    match pattern {
        Pattern::Stream => lines_for(array_bytes),
        Pattern::Strided => array_bytes / STRIDE_BYTES,
        Pattern::Gather => gather_count as u64,
    }
}

/// Runs one measurement: returns simulated lines per wall-clock second.
fn measure(
    pattern: Pattern,
    remote: bool,
    batched: bool,
    array_bytes: u64,
    passes: u32,
    offsets: &[u64],
) -> f64 {
    let config = base_config();
    let mut m = Machine::new(config);
    m.set_batched_access(batched);
    let policy = if remote {
        PlacementPolicy::ForceRemote
    } else {
        PlacementPolicy::FirstTouch
    };
    let a = m.alloc_with_policy("arr", "throughput.rs", array_bytes, policy);
    // Bind every page before timing so the measured passes exercise the
    // steady-state pipeline, not first-touch placement.
    m.phase_start("warmup");
    m.touch(a, array_bytes);
    m.phase_end();

    m.phase_start("timed");
    let start = Instant::now();
    for _ in 0..passes {
        match pattern {
            Pattern::Stream => m.read(a, 0, array_bytes),
            Pattern::Strided => m.strided(
                a,
                0,
                array_bytes / STRIDE_BYTES,
                ELEM_BYTES,
                STRIDE_BYTES,
                AccessKind::Read,
            ),
            Pattern::Gather => m.gather(a, offsets, ELEM_BYTES),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    m.phase_end();
    let report = m.finish();
    assert!(report.total.demand_lines() > 0);

    let simulated_lines = lines_per_pass(pattern, array_bytes, offsets.len()) * passes as u64;
    simulated_lines as f64 / elapsed.max(1e-12)
}

#[derive(Serialize)]
struct ThroughputResult {
    pattern: String,
    tier: String,
    per_line_lines_per_sec: f64,
    batched_lines_per_sec: f64,
    speedup: f64,
}

fn main() {
    let quick = is_quick();
    let array_bytes: u64 = if quick { 2 << 20 } else { 8 << 20 };
    let passes: u32 = if quick { 2 } else { 4 };
    let gather_count = (array_bytes / 64) as usize;
    let offsets = gather_offsets(array_bytes, gather_count);

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for pattern in [Pattern::Stream, Pattern::Strided, Pattern::Gather] {
        for remote in [false, true] {
            let per_line = measure(pattern, remote, false, array_bytes, passes, &offsets);
            let batched = measure(pattern, remote, true, array_bytes, passes, &offsets);
            let tier = if remote { "pool" } else { "local" };
            let speedup = batched / per_line;
            rows.push(Row::new(
                format!("{}-{}", pattern.label(), tier),
                vec![
                    format!("{:.1}", per_line / 1e6),
                    format!("{:.1}", batched / 1e6),
                    format!("{speedup:.2}x"),
                ],
            ));
            results.push(ThroughputResult {
                pattern: pattern.label().to_string(),
                tier: tier.to_string(),
                per_line_lines_per_sec: per_line,
                batched_lines_per_sec: batched,
                speedup,
            });
            eprintln!(
                "  [throughput] {}-{}: {:.1} -> {:.1} Mlines/s ({speedup:.2}x)",
                pattern.label(),
                tier,
                per_line / 1e6,
                batched / 1e6,
            );
        }
    }

    print_table(
        "Simulator throughput — simulated Mlines/s, per-line vs batched",
        &["per-line", "batched", "speedup"],
        &rows,
    );
    println!(
        "\nExpected shape: the batched line-walk fast path is several times faster than the \
         per-line reference on every pattern, with the largest gains on sequential streams."
    );
    write_json("BENCH_throughput", &results);
}
