//! Simulator throughput baseline: simulated cache lines per wall-clock
//! second for the three canonical access shapes (sequential stream, strided
//! sweep, random gather) on the local and pool tiers, comparing three
//! pipelines: the per-line reference, the batched line walk with replay
//! disabled, and the batched walk with the steady-state page-replay engine
//! (the default).
//!
//! A second section sweeps the dynamic tiering policies (static /
//! hot-promote / periodic-rebalance) over the phase-shifting working-set
//! workload and reports *simulated* runtimes: the separation between static
//! interleave and hot promotion is the committed evidence that migrations
//! pay off and are charged to the pool link.
//!
//! A third section measures fleet-campaign throughput (cells per wall-clock
//! second) through the crash-consistent journal: an uninterrupted sequential
//! run, the same grid as three merged shards, and a warm resume that only
//! replays the journal — the journal/bit-identity machinery must cost
//! nothing measurable per cell, and a warm resume must be orders of
//! magnitude faster than re-simulating.
//!
//! A fourth section measures flight-recorder overhead: the same stream
//! measurement with and without a `FlightRecorder` attached. Recording is
//! expected to be free on the hot path (events only materialize at chunk
//! closes), so the ratio must stay within measurement noise.
//!
//! A fifth section measures the warm-start snapshot cache: fleet-campaign
//! cells per wall-clock second with every warm-up simulated cold vs
//! restored from one content-addressed snapshot per warm prefix, plus the
//! per-cell restore latency — asserting along the way that the warm
//! report is bit-identical to the cold one.
//!
//! Emits `BENCH_throughput.json` (an object with `throughput`, `campaign`,
//! `tiering`, `tracing` and `snapshot` sections) so CI and later PRs can
//! track the performance trajectory. Run
//! with `DISMEM_QUICK=1` for the smoke profile. With `DISMEM_BASELINE=<path
//! to a committed BENCH_throughput.json>` the bench exits non-zero if the
//! stream replay speedup (a machine-independent ratio, unlike absolute
//! lines/s) regresses more than 20% against the baseline.

// The bench harness is the one sanctioned wall-clock observer in the
// workspace: it measures real simulator throughput.
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use dismem_bench::{base_config, is_quick, print_table, write_json, Row};
use dismem_sched::{
    default_specs, merge_shard_journals, resume_campaign, run_fleet_campaign,
    sweep_tiering_policies, CampaignConfig, FaultPlan, FleetSpec, Shard, SimCellRunner,
    SnapshotCache, SnapshotStats, TieringOutcome,
};
use dismem_sim::Machine;
use dismem_trace::access::lines_for;
use dismem_trace::{AccessKind, FlightRecorder, MemoryEngine, PlacementPolicy, PAGE_SIZE};
use dismem_workloads::{InputScale, PhaseShift, PhaseShiftParams};
use serde::Serialize;
use std::time::Instant;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Pattern {
    Stream,
    Strided,
    Gather,
}

impl Pattern {
    fn label(self) -> &'static str {
        match self {
            Pattern::Stream => "stream",
            Pattern::Strided => "strided",
            Pattern::Gather => "gather",
        }
    }
}

/// Which simulator pipeline a measurement exercises.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Pipeline {
    /// Per-line reference path (`set_batched_access(false)`).
    PerLine,
    /// Batched line walk with the replay engine disabled.
    Batched,
    /// Batched line walk with steady-state page replay (the default).
    Replay,
}

/// Stride (bytes) of the strided sweep: four cache lines apart.
const STRIDE_BYTES: u64 = 256;
/// Element size (bytes) for strided and gather accesses.
const ELEM_BYTES: u64 = 8;

/// Deterministic pseudo-random 8-byte-aligned offsets covering the array.
fn gather_offsets(array_bytes: u64, count: usize) -> Vec<u64> {
    let slots = array_bytes / ELEM_BYTES;
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 11) % slots) * ELEM_BYTES
        })
        .collect()
}

/// Simulated demand cache-line references issued by one pass of a pattern.
fn lines_per_pass(pattern: Pattern, array_bytes: u64, gather_count: usize) -> u64 {
    match pattern {
        Pattern::Stream => lines_for(array_bytes),
        Pattern::Strided => array_bytes / STRIDE_BYTES,
        Pattern::Gather => gather_count as u64,
    }
}

/// One measurement's outcome: simulated lines per wall-clock second plus the
/// replay engine's engagement counters over the timed region.
struct Measurement {
    lines_per_sec: f64,
    replay_windows: u64,
    replay_passes: u64,
    replay_stride_elements: u64,
}

/// Runs one measurement of a (pattern, tier, pipeline) cell.
fn measure(
    pattern: Pattern,
    remote: bool,
    pipeline: Pipeline,
    array_bytes: u64,
    passes: u32,
    offsets: &[u64],
) -> Measurement {
    let config = base_config();
    let mut m = Machine::new(config);
    m.set_batched_access(pipeline != Pipeline::PerLine);
    m.set_replay(pipeline == Pipeline::Replay);
    let policy = if remote {
        PlacementPolicy::ForceRemote
    } else {
        PlacementPolicy::FirstTouch
    };
    let a = m.alloc_with_policy("arr", "throughput.rs", array_bytes, policy);
    // Bind every page before timing so the measured passes exercise the
    // steady-state pipeline, not first-touch placement.
    m.phase_start("warmup");
    m.touch(a, array_bytes);
    m.phase_end();
    let windows_before = m.replay_windows();
    let passes_before = m.replay_passes();
    let stride_elems_before = m.replay_stride_elements();

    m.phase_start("timed");
    let start = Instant::now();
    for _ in 0..passes {
        match pattern {
            Pattern::Stream => m.read(a, 0, array_bytes),
            Pattern::Strided => m.strided(
                a,
                0,
                array_bytes / STRIDE_BYTES,
                ELEM_BYTES,
                STRIDE_BYTES,
                AccessKind::Read,
            ),
            Pattern::Gather => m.gather(a, offsets, ELEM_BYTES),
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    m.phase_end();
    let replay_windows = m.replay_windows() - windows_before;
    let replay_passes = m.replay_passes() - passes_before;
    let replay_stride_elements = m.replay_stride_elements() - stride_elems_before;
    let report = m.finish();
    assert!(report.total.demand_lines() > 0);

    let simulated_lines = lines_per_pass(pattern, array_bytes, offsets.len()) * passes as u64;
    Measurement {
        lines_per_sec: simulated_lines as f64 / elapsed.max(1e-12),
        replay_windows,
        replay_passes,
        replay_stride_elements,
    }
}

#[derive(Serialize)]
struct ThroughputResult {
    pattern: String,
    tier: String,
    per_line_lines_per_sec: f64,
    batched_lines_per_sec: f64,
    replay_lines_per_sec: f64,
    /// Batched (replay off) over per-line.
    speedup_batched: f64,
    /// Batched with replay over per-line — the headline figure.
    speedup_replay: f64,
    /// Replay windows applied during the replay measurement (0 = the window
    /// detector never engaged on this pattern).
    replay_windows: u64,
    /// Whole passes applied by pass-level replay during the replay
    /// measurement (0 = pass periodicity never engaged). Strided passes
    /// count here too.
    replay_passes: u64,
    /// Strided elements applied in closed form during the replay
    /// measurement (0 = no strided sweep engaged).
    replay_stride_elements: u64,
}

/// The emitted JSON: the pipeline throughput table plus the fleet-campaign,
/// tiering-policy, tracing and snapshot sections. The baseline scanner below
/// is line-based and section-aware: it reads only the `throughput` section,
/// so the trailing sections cannot perturb the regression gate.
#[derive(Serialize)]
struct ThroughputReport {
    throughput: Vec<ThroughputResult>,
    campaign: CampaignBench,
    tiering: Vec<TieringOutcome>,
    tracing: TracingBench,
    snapshot: SnapshotBench,
}

/// Flight-recorder overhead on the default (replay) pipeline's stream
/// measurement.
#[derive(Serialize)]
struct TracingBench {
    /// Simulated lines/s with no recorder installed (the workspace default).
    recorder_off_lines_per_sec: f64,
    /// Simulated lines/s with a `FlightRecorder` attached.
    recorder_on_lines_per_sec: f64,
    /// off / on — 1.0 means recording was free on this run; values above
    /// 1.0 are recording overhead.
    overhead_ratio: f64,
    /// Events the recorded measurement captured.
    events_recorded: u64,
}

/// Measures the stream pattern with and without a flight recorder attached.
/// Like the replay-vs-batched gate above, each cell is one wall-clock
/// sample, so the comparison re-measures adjacent pairs when the first
/// ratio looks like scheduler noise.
fn tracing_bench(array_bytes: u64, passes: u32) -> TracingBench {
    let run = |record: bool| -> (f64, u64) {
        let mut m = Machine::new(base_config());
        if record {
            m.set_recorder(Box::new(FlightRecorder::new()));
        }
        let a = m.alloc("arr", "throughput.rs", array_bytes);
        m.phase_start("warmup");
        m.touch(a, array_bytes);
        m.phase_end();
        m.phase_start("timed");
        let start = Instant::now();
        for _ in 0..passes {
            m.read(a, 0, array_bytes);
        }
        let elapsed = start.elapsed().as_secs_f64();
        m.phase_end();
        let report = m.finish();
        assert!(report.total.demand_lines() > 0);
        let events = m
            .take_recorder()
            .map(|r| {
                r.into_any()
                    .downcast::<FlightRecorder>()
                    .expect("flight recorder comes back")
                    .events()
                    .len() as u64
            })
            .unwrap_or(0);
        let lines = lines_for(array_bytes) * passes as u64;
        (lines as f64 / elapsed.max(1e-12), events)
    };

    let (mut off, _) = run(false);
    let (mut on, events_recorded) = run(true);
    let mut ratio = off / on;
    for attempt in 0..3 {
        if ratio <= 1.10 {
            break;
        }
        eprintln!(
            "  [tracing] recorded run below unrecorded — re-measuring (attempt {})",
            attempt + 1,
        );
        let (off_retry, _) = run(false);
        let (on_retry, _) = run(true);
        if off_retry / on_retry < ratio {
            off = off_retry;
            on = on_retry;
            ratio = off / on;
        }
    }
    assert!(
        ratio <= 1.10,
        "flight recording must stay within the noise band of an unrecorded \
         run (best adjacent-pair overhead {ratio:.3}x)"
    );
    assert!(
        events_recorded > 0,
        "the recorded stream measurement must capture replay transitions"
    );
    TracingBench {
        recorder_off_lines_per_sec: off,
        recorder_on_lines_per_sec: on,
        overhead_ratio: ratio,
        events_recorded,
    }
}

/// Fleet-campaign throughput through the crash-consistent journal.
#[derive(Serialize)]
struct CampaignBench {
    /// Cells in the benchmarked grid.
    grid_cells: u64,
    /// Shards the grid was split into for the sharded measurement.
    shards: u64,
    /// Uninterrupted sequential run, journaling every cell.
    sequential_cells_per_sec: f64,
    /// Same grid as independent shard journals run back-to-back in one
    /// process, plus the merge into one total-order journal.
    sharded_cells_per_sec: f64,
    /// Warm resume over the merged journal: replay only, zero re-runs.
    resumed_warm_cells_per_sec: f64,
}

/// Measures fleet-campaign throughput: sequential vs sharded vs resumed-warm
/// over a tiny grid, asserting the bit-identity contract along the way.
fn campaign_bench(quick: bool) -> CampaignBench {
    let config = base_config();
    let spec = if quick {
        FleetSpec {
            workloads: vec!["BFS".into(), "XSBench".into()],
            capacities_permille: vec![250, 750],
            ..FleetSpec::tiny_grid(&config)
        }
    } else {
        FleetSpec::tiny_grid(&config)
    };
    let runner = SimCellRunner::quick(config);
    let cells = spec.cells().len() as u64;
    let dir = std::env::temp_dir().join(format!("dismem-bench-campaign-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create campaign bench dir");
    let journal = |name: &str| {
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    };

    let sequential_path = journal("sequential.jsonl");
    let start = Instant::now();
    let sequential = run_fleet_campaign(&spec, &runner, &sequential_path, None, &FaultPlan::none())
        .expect("sequential campaign");
    let sequential_cells_per_sec = cells as f64 / start.elapsed().as_secs_f64().max(1e-12);

    const SHARDS: u32 = 3;
    let shard_paths: Vec<std::path::PathBuf> = (0..SHARDS)
        .map(|i| journal(&format!("shard{i}.jsonl")))
        .collect();
    let merged_path = journal("merged.jsonl");
    let start = Instant::now();
    for (i, path) in shard_paths.iter().enumerate() {
        run_fleet_campaign(
            &spec,
            &runner,
            path,
            Some(Shard::new(i as u32, SHARDS)),
            &FaultPlan::none(),
        )
        .unwrap_or_else(|e| panic!("shard {i} failed: {e}"));
    }
    let merged_records = merge_shard_journals(&shard_paths, &merged_path, &spec.digest_hex())
        .expect("merge shard journals");
    let sharded_cells_per_sec = cells as f64 / start.elapsed().as_secs_f64().max(1e-12);
    assert_eq!(merged_records, cells, "merged journal must cover the grid");

    let start = Instant::now();
    let (resumed, stats) = resume_campaign(&spec, &runner, &merged_path, None, &FaultPlan::none())
        .expect("warm resume");
    let resumed_warm_cells_per_sec = cells as f64 / start.elapsed().as_secs_f64().max(1e-12);
    assert_eq!(stats.reran, 0, "warm resume must not re-run any cell");
    assert_eq!(
        serde_json::to_string(&resumed).expect("serialize resumed report"),
        serde_json::to_string(&sequential).expect("serialize sequential report"),
        "merged-shard resume must be bit-identical to the sequential run"
    );
    let _ = std::fs::remove_dir_all(&dir);

    CampaignBench {
        grid_cells: cells,
        shards: SHARDS as u64,
        sequential_cells_per_sec,
        sharded_cells_per_sec,
        resumed_warm_cells_per_sec,
    }
}

/// Warm-start snapshot-cache throughput on the fleet grid (§8 of
/// `docs/ARCHITECTURE.md`): campaign cells/s with every warm-up simulated
/// cold vs restored from one content-addressed snapshot per warm prefix.
#[derive(Serialize)]
struct SnapshotBench {
    /// Cells in the benchmarked grid.
    grid_cells: u64,
    /// Distinct warm prefixes (= snapshots taken on the warm run).
    warm_prefixes: u64,
    /// Cold campaign: no cache, every cell simulates its own warm-up.
    cold_cells_per_sec: f64,
    /// Warm campaign over a fresh cache: one miss per prefix, hits after.
    warm_cells_per_sec: f64,
    /// warm / cold — above 1.0 means restoring beats re-simulating.
    warm_speedup: f64,
    /// Mean wall-clock seconds to load + restore + finish one cached cell,
    /// measured on a second campaign over the populated cache (all hits).
    restore_latency_s: f64,
}

/// Measures warm-vs-cold fleet-campaign throughput, asserting the
/// bit-identity contract along the way: the warm report (snapshot stats
/// normalized) must serialize identically to the cold one.
fn snapshot_bench(quick: bool) -> SnapshotBench {
    let config = base_config();
    // Many seeds per warm prefix: that is the regime the cache exists for
    // (policy × seed cells of one prefix share one snapshot).
    let spec = FleetSpec {
        workloads: vec!["BFS".into(), "XSBench".into()],
        capacities_permille: vec![250, 750],
        seeds: (0..if quick { 4u64 } else { 16 })
            .map(|i| 0xD15C + i)
            .collect(),
        ..FleetSpec::tiny_grid(&config)
    };
    let cells = spec.cells().len() as u64;
    let prefixes = (spec.workloads.len()
        * spec.scales.len()
        * spec.capacities_permille.len()
        * spec.links.len()) as u64;
    let dir = std::env::temp_dir().join(format!("dismem-bench-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create snapshot bench dir");
    let journal = |name: &str| {
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    };

    let cold_runner = SimCellRunner::quick(config.clone());
    let start = Instant::now();
    let cold = run_fleet_campaign(
        &spec,
        &cold_runner,
        &journal("cold.jsonl"),
        None,
        &FaultPlan::none(),
    )
    .expect("cold campaign");
    let cold_cells_per_sec = cells as f64 / start.elapsed().as_secs_f64().max(1e-12);

    let cache_dir = dir.join("snapshots");
    let cache = SnapshotCache::new(&cache_dir).expect("create snapshot cache");
    let warm_runner = SimCellRunner::quick(config.clone()).with_snapshot_cache(cache);
    let start = Instant::now();
    let warm = run_fleet_campaign(
        &spec,
        &warm_runner,
        &journal("warm.jsonl"),
        None,
        &FaultPlan::none(),
    )
    .expect("warm campaign");
    let warm_cells_per_sec = cells as f64 / start.elapsed().as_secs_f64().max(1e-12);
    assert_eq!(
        warm.snapshot,
        SnapshotStats {
            hits: cells - prefixes,
            misses: prefixes,
            fallbacks: 0
        },
        "warm campaign must miss once per prefix and never fall back"
    );
    let mut normalized = warm.clone();
    normalized.snapshot = SnapshotStats::default();
    assert_eq!(
        serde_json::to_string(&normalized).expect("serialize warm report"),
        serde_json::to_string(&cold).expect("serialize cold report"),
        "warm campaign must be bit-identical to the cold run"
    );

    // Restore latency: a second campaign over the populated cache is all
    // hits, so its per-cell time is load + restore + finish.
    let hot_cache = SnapshotCache::new(&cache_dir).expect("reopen snapshot cache");
    let hot_runner = SimCellRunner::quick(config).with_snapshot_cache(hot_cache);
    let start = Instant::now();
    let hot = run_fleet_campaign(
        &spec,
        &hot_runner,
        &journal("hot.jsonl"),
        None,
        &FaultPlan::none(),
    )
    .expect("hot campaign");
    let restore_latency_s = start.elapsed().as_secs_f64() / cells as f64;
    assert_eq!(hot.snapshot.hits, cells, "hot campaign must be all hits");
    let _ = std::fs::remove_dir_all(&dir);

    SnapshotBench {
        grid_cells: cells,
        warm_prefixes: prefixes,
        cold_cells_per_sec,
        warm_cells_per_sec,
        warm_speedup: warm_cells_per_sec / cold_cells_per_sec,
        restore_latency_s,
    }
}

/// Sweeps the tiering policies over the phase-shifting workload on a pooled
/// configuration (local tier = the interleaved half of the arena).
fn tiering_sweep(quick: bool) -> Vec<TieringOutcome> {
    // The sweep runs the full X1 workload even in the quick profile (a
    // shorter phase dwell would not amortize the migrations, hiding the
    // separation this section exists to show); the whole sweep simulates in
    // a couple of seconds. Quick only trims the Monte Carlo campaign.
    let params = PhaseShiftParams::bench(InputScale::X1);
    let workload = PhaseShift::new(params);
    let arena_pages = params.arena_bytes / PAGE_SIZE;
    let config = base_config().with_local_capacity((arena_pages / 2 + 16) * PAGE_SIZE);
    // One hotness epoch per sweep pass; promote at half a pass's per-page
    // line count (see the dynamic_tiering example, which commits the same
    // sweep as CAMPAIGN_tiering.json).
    let specs = default_specs(65_536, 16.0);
    let campaign = CampaignConfig {
        runs: if quick { 10 } else { 50 },
        epochs_per_run: 8,
        seed: 7,
    };
    sweep_tiering_policies(&workload, &config, &specs, &campaign).outcomes
}

/// Extracts `"speedup_replay": <num>` values of stream rows from a committed
/// baseline JSON (the vendored serde_json is write-only, so this is a small
/// hand-rolled scan keyed on the known emission order).
fn baseline_stream_speedups(json: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let mut is_stream = false;
    for line in json.lines() {
        let t = line.trim();
        // Section-aware: the stream speedups live in the leading
        // `throughput` section; stop at the first trailing section so keys
        // added there (campaign, tiering) can never leak into the gate.
        if t.starts_with("\"campaign\":") || t.starts_with("\"tiering\":") {
            break;
        }
        if let Some(rest) = t.strip_prefix("\"pattern\":") {
            is_stream = rest.contains("\"stream\"");
        }
        if let Some(rest) = t.strip_prefix("\"speedup_replay\":") {
            if is_stream {
                let num: String = rest
                    .trim_start()
                    .chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                    .collect();
                if let Ok(v) = num.parse::<f64>() {
                    out.push(v);
                }
            }
        }
    }
    out
}

fn main() {
    let quick = is_quick();
    // The quick profile still uses arrays larger than the 2 MiB scaled LLC so
    // the replay engine has a steady state to find. Enough passes that
    // pass-level replay (which pays one exact logged pass before engaging)
    // dominates the measurement, as it does in a real campaign loop.
    let array_bytes: u64 = if quick { 4 << 20 } else { 8 << 20 };
    let passes: u32 = if quick { 6 } else { 12 };
    let gather_count = (array_bytes / 64) as usize;
    let offsets = gather_offsets(array_bytes, gather_count);

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for pattern in [Pattern::Stream, Pattern::Strided, Pattern::Gather] {
        for remote in [false, true] {
            let per_line = measure(
                pattern,
                remote,
                Pipeline::PerLine,
                array_bytes,
                passes,
                &offsets,
            )
            .lines_per_sec;
            let mut batched = measure(
                pattern,
                remote,
                Pipeline::Batched,
                array_bytes,
                passes,
                &offsets,
            )
            .lines_per_sec;
            let mut replay = measure(
                pattern,
                remote,
                Pipeline::Replay,
                array_bytes,
                passes,
                &offsets,
            );
            // Replay must never cost throughput relative to the plain
            // batched walk, engaged or not — the detector's bookkeeping on
            // never-periodic traffic has to be ~free. Each cell is a single
            // wall-clock sample and machine-load drift between cells is well
            // above the 5% tolerance, so the gate compares *adjacent* pairs:
            // when the first ratio falls short, re-measure batched and
            // replay back-to-back (drift hits both samples alike) and accept
            // the best pair. A persistent regression fails every pair.
            let mut ratio = replay.lines_per_sec / batched;
            for attempt in 0..3 {
                if ratio >= 0.95 {
                    break;
                }
                eprintln!(
                    "  [throughput] {}-{}: replay below batched — re-measuring (attempt {})",
                    pattern.label(),
                    if remote { "pool" } else { "local" },
                    attempt + 1,
                );
                let b = measure(
                    pattern,
                    remote,
                    Pipeline::Batched,
                    array_bytes,
                    passes,
                    &offsets,
                )
                .lines_per_sec;
                let retry = measure(
                    pattern,
                    remote,
                    Pipeline::Replay,
                    array_bytes,
                    passes,
                    &offsets,
                );
                ratio = ratio.max(retry.lines_per_sec / b);
                batched = batched.max(b);
                if retry.lines_per_sec > replay.lines_per_sec {
                    replay = retry;
                }
            }
            let tier = if remote { "pool" } else { "local" };
            let speedup_batched = batched / per_line;
            let speedup_replay = replay.lines_per_sec / per_line;
            assert!(
                ratio >= 0.95,
                "{}-{tier}: replay pipeline must not trail the batched walk by more \
                 than 5% (best adjacent-pair ratio {ratio:.3})",
                pattern.label(),
            );
            // Engagement is part of the bench contract, not just speed: the
            // multipliers above are meaningless if the engine fell back to
            // the exact walk.
            match pattern {
                Pattern::Stream => assert!(
                    replay.replay_passes > 0,
                    "stream-{tier}: pass-level replay never engaged"
                ),
                Pattern::Strided => assert!(
                    replay.replay_passes > 0 && replay.replay_stride_elements > 0,
                    "strided-{tier}: stride-aware pass replay never engaged \
                     ({} passes, {} elements)",
                    replay.replay_passes,
                    replay.replay_stride_elements,
                ),
                Pattern::Gather => {}
            }
            rows.push(Row::new(
                format!("{}-{}", pattern.label(), tier),
                vec![
                    format!("{:.1}", per_line / 1e6),
                    format!("{:.1}", batched / 1e6),
                    format!("{:.1}", replay.lines_per_sec / 1e6),
                    format!("{speedup_replay:.2}x"),
                    format!("{}", replay.replay_windows),
                    format!("{}", replay.replay_passes),
                ],
            ));
            eprintln!(
                "  [throughput] {}-{}: {:.1} -> {:.1} -> {:.1} Mlines/s \
                 (batched {speedup_batched:.2}x, replay {speedup_replay:.2}x, \
                 {} windows, {} passes, {} stride-elems)",
                pattern.label(),
                tier,
                per_line / 1e6,
                batched / 1e6,
                replay.lines_per_sec / 1e6,
                replay.replay_windows,
                replay.replay_passes,
                replay.replay_stride_elements,
            );
            results.push(ThroughputResult {
                pattern: pattern.label().to_string(),
                tier: tier.to_string(),
                per_line_lines_per_sec: per_line,
                batched_lines_per_sec: batched,
                replay_lines_per_sec: replay.lines_per_sec,
                speedup_batched,
                speedup_replay,
                replay_windows: replay.replay_windows,
                replay_passes: replay.replay_passes,
                replay_stride_elements: replay.replay_stride_elements,
            });
        }
    }

    print_table(
        "Simulator throughput — simulated Mlines/s, per-line vs batched vs replay",
        &[
            "per-line",
            "batched",
            "replay",
            "replay-speedup",
            "windows",
            "passes",
        ],
        &rows,
    );
    println!(
        "\nExpected shape: the batched line walk is faster than the per-line reference on \
         every pattern; the replay engine multiplies the gain on sequential streams \
         and strided sweeps (passes > 0 shows whole repeated passes collapsed to \
         closed form, stride elements counting the strided share)."
    );

    let campaign = campaign_bench(quick);
    print_table(
        "Fleet campaigns — journaled cells per wall-clock second",
        &["cells", "shards", "cells/s"],
        &[
            Row::new(
                "sequential".to_string(),
                vec![
                    format!("{}", campaign.grid_cells),
                    "1".to_string(),
                    format!("{:.0}", campaign.sequential_cells_per_sec),
                ],
            ),
            Row::new(
                "sharded+merge".to_string(),
                vec![
                    format!("{}", campaign.grid_cells),
                    format!("{}", campaign.shards),
                    format!("{:.0}", campaign.sharded_cells_per_sec),
                ],
            ),
            Row::new(
                "resumed-warm".to_string(),
                vec![
                    format!("{}", campaign.grid_cells),
                    "1".to_string(),
                    format!("{:.0}", campaign.resumed_warm_cells_per_sec),
                ],
            ),
        ],
    );
    println!(
        "\nExpected shape: sharded throughput tracks sequential (the journal and merge are \
         ~free per cell), and the warm resume — which replays the journal instead of \
         re-simulating — is orders of magnitude faster."
    );

    let tiering = tiering_sweep(quick);
    let tiering_rows: Vec<Row> = tiering
        .iter()
        .map(|o| {
            Row::new(
                o.policy.clone(),
                vec![
                    format!("{:.3} ms", o.runtime_s * 1e3),
                    format!("{:.2}x", o.speedup_vs_static),
                    format!("{:.2}x", o.loaded_speedup_vs_static),
                    format!("{:.1}%", o.remote_access_ratio * 100.0),
                    format!("{}", o.tiering.migrated_pages),
                    format!(
                        "{:.1}",
                        o.migration_link_raw_bytes as f64 / (1 << 20) as f64
                    ),
                ],
            )
        })
        .collect();
    print_table(
        "Dynamic tiering — PhaseShift simulated runtime per policy",
        &[
            "sim-runtime",
            "speedup",
            "loaded",
            "remote",
            "migrations",
            "link-MiB",
        ],
        &tiering_rows,
    );
    println!(
        "\nExpected shape: hot-promote and periodic-rebalance beat static interleave on the \
         phase-shifting working set, paying for it with migration traffic on the pool link."
    );
    let tracing = tracing_bench(array_bytes, passes);
    print_table(
        "Flight recorder — stream Mlines/s with and without recording",
        &["recorder-off", "recorder-on", "overhead", "events"],
        &[Row::new(
            "stream-local".to_string(),
            vec![
                format!("{:.1}", tracing.recorder_off_lines_per_sec / 1e6),
                format!("{:.1}", tracing.recorder_on_lines_per_sec / 1e6),
                format!("{:.3}x", tracing.overhead_ratio),
                format!("{}", tracing.events_recorded),
            ],
        )],
    );
    println!(
        "\nExpected shape: attaching a recorder costs nothing measurable — events only \
         materialize at chunk closes, and the unrecorded default allocates nothing."
    );
    let snapshot = snapshot_bench(quick);
    print_table(
        "Warm-start snapshots — campaign cells per wall-clock second, cold vs warm",
        &[
            "cells", "prefixes", "cold c/s", "warm c/s", "speedup", "restore",
        ],
        &[Row::new(
            "fleet-grid".to_string(),
            vec![
                format!("{}", snapshot.grid_cells),
                format!("{}", snapshot.warm_prefixes),
                format!("{:.0}", snapshot.cold_cells_per_sec),
                format!("{:.0}", snapshot.warm_cells_per_sec),
                format!("{:.2}x", snapshot.warm_speedup),
                format!("{:.2} ms", snapshot.restore_latency_s * 1e3),
            ],
        )],
    );
    println!(
        "\nExpected shape: the warm campaign restores one snapshot per prefix instead of \
         re-simulating every warm-up, so with enough cells per prefix warm cells/s beats \
         cold — bit-identically, as asserted against the cold report (the quick profile's \
         few-seed grid amortizes too little to show the win)."
    );
    let report = ThroughputReport {
        throughput: results,
        campaign,
        tiering,
        tracing,
        snapshot,
    };
    write_json("BENCH_throughput", &report);
    let results = report.throughput;

    // Regression gate against a committed baseline (CI): compare the
    // machine-independent stream replay speedups.
    if let Ok(path) = std::env::var("DISMEM_BASELINE") {
        // `cargo bench` runs with the crate directory as cwd; resolve
        // relative baseline paths against the workspace root as a fallback.
        let mut file = std::path::PathBuf::from(&path);
        if file.is_relative() && !file.exists() {
            file = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&path);
        }
        let json = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", file.display()));
        let baseline = baseline_stream_speedups(&json);
        // Guard the hand-rolled scan against format drift: exactly one
        // entry per stream tier, and every value must look like a committed
        // replay speedup (strided/gather speedups are ~1x — picking those
        // up by mistake would silently neuter the gate).
        assert_eq!(
            baseline.len(),
            2,
            "baseline {path} must hold exactly the two stream speedup_replay entries"
        );
        assert!(
            baseline.iter().all(|&v| v > 8.0),
            "baseline {path} stream speedups {baseline:?} look misparsed (expected \
             pass-replay-scale values, ≥10x)"
        );
        let current: Vec<f64> = results
            .iter()
            .filter(|r| r.pattern == "stream")
            .map(|r| r.speedup_replay)
            .collect();
        let base_avg = baseline.iter().sum::<f64>() / baseline.len() as f64;
        let mut cur_avg = current.iter().sum::<f64>() / current.len() as f64;
        eprintln!(
            "  [throughput] stream replay speedup: current {cur_avg:.2}x vs baseline {base_avg:.2}x"
        );
        if cur_avg < 0.8 * base_avg {
            // Each measurement is a single wall-clock sample; before failing
            // the build, re-measure the stream rows once — a descheduled
            // run on a noisy shared runner is far more likely than a real
            // regression that this retry would mask.
            eprintln!("  [throughput] below threshold — re-measuring stream rows once");
            let mut retry = Vec::new();
            for remote in [false, true] {
                let per_line = measure(
                    Pattern::Stream,
                    remote,
                    Pipeline::PerLine,
                    array_bytes,
                    passes,
                    &offsets,
                )
                .lines_per_sec;
                let replay = measure(
                    Pattern::Stream,
                    remote,
                    Pipeline::Replay,
                    array_bytes,
                    passes,
                    &offsets,
                )
                .lines_per_sec;
                retry.push(replay / per_line);
            }
            let retry_avg = retry.iter().sum::<f64>() / retry.len() as f64;
            eprintln!("  [throughput] retry stream replay speedup: {retry_avg:.2}x");
            cur_avg = cur_avg.max(retry_avg);
        }
        if cur_avg < 0.8 * base_avg {
            eprintln!(
                "error: stream replay speedup regressed more than 20% \
                 ({cur_avg:.2}x < 0.8 * {base_avg:.2}x)"
            );
            std::process::exit(1);
        }
    }
}
