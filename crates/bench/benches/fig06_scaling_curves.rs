//! Figure 6: memory bandwidth-capacity scaling curves — the cumulative
//! distribution of memory accesses over the footprint for each application at
//! three input scales.

use dismem_bench::{base_config, is_quick, print_table, workload, write_json, Row};
use dismem_profiler::level1::level1_profile;
use dismem_trace::histogram::ScalingPoint;
use dismem_workloads::{InputScale, WorkloadKind};
use rayon::prelude::*;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct CurveOutput {
    workload: String,
    scale: String,
    footprint_mib: f64,
    curve: Vec<ScalingPoint>,
}

fn share_at(curve: &[ScalingPoint], footprint_fraction: f64) -> f64 {
    curve
        .iter()
        .find(|p| p.footprint_fraction >= footprint_fraction)
        .map(|p| p.access_fraction)
        .unwrap_or(1.0)
}

fn main() {
    let config = base_config();
    let scales = if is_quick() {
        vec![InputScale::X1]
    } else {
        InputScale::all().to_vec()
    };

    // Every (workload, scale) pair is an independent simulated machine run:
    // profile them concurrently on the thread pool.
    let combos: Vec<(WorkloadKind, InputScale)> = WorkloadKind::all()
        .into_iter()
        .flat_map(|kind| scales.iter().map(move |&scale| (kind, scale)))
        .collect();
    let outputs: Vec<CurveOutput> = combos
        .par_iter()
        .map(|&(kind, scale)| {
            let w = workload(kind, scale);
            let report = level1_profile(w.as_ref(), &config);
            eprintln!("  [fig06] profiled {} {}", kind.name(), scale.label());
            CurveOutput {
                workload: kind.name().to_string(),
                scale: scale.label().to_string(),
                footprint_mib: report.footprint_bytes as f64 / (1 << 20) as f64,
                curve: report.scaling_curve,
            }
        })
        .collect();
    let mut per_workload: BTreeMap<&str, Vec<(String, Vec<ScalingPoint>)>> = BTreeMap::new();
    for output in &outputs {
        per_workload
            .entry(output.workload.as_str())
            .or_default()
            .push((output.scale.clone(), output.curve.clone()));
    }

    // Print, per workload and scale, the access share captured by the hottest
    // 10/25/50/75% of the footprint — a compact rendering of the CDFs.
    let mut rows = Vec::new();
    for (name, curves) in &per_workload {
        for (scale, curve) in curves {
            rows.push(Row::new(
                format!("{name}-{scale}"),
                vec![
                    format!("{:.0}%", 100.0 * share_at(curve, 0.10)),
                    format!("{:.0}%", 100.0 * share_at(curve, 0.25)),
                    format!("{:.0}%", 100.0 * share_at(curve, 0.50)),
                    format!("{:.0}%", 100.0 * share_at(curve, 0.75)),
                ],
            ));
        }
    }
    print_table(
        "Figure 6 — share of memory accesses captured by the hottest X% of the footprint",
        &["10% fp", "25% fp", "50% fp", "75% fp"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): HPL and Hypre are close to the diagonal (uniform access); \
         BFS and XSBench are strongly skewed (a small part of the footprint gets most accesses); \
         curves of different input scales overlap for NekRS/HPL/Hypre/XSBench, shift for BFS and \
         SuperLU."
    );
    write_json("fig06_scaling_curves", &outputs);
}
