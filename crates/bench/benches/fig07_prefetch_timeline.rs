//! Figure 7: memory traffic (L2 cache-line fills) over time with and without
//! hardware prefetching, for NekRS, HPL and XSBench.

use dismem_bench::{base_config, print_table, workload, write_json, Row};
use dismem_profiler::level1::level1_profile;
use dismem_workloads::{InputScale, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct TimelineOutput {
    workload: String,
    bucket_s: f64,
    with_prefetch: Vec<u64>,
    without_prefetch: Vec<u64>,
    total_with: u64,
    total_without: u64,
}

fn sparkline(values: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(1).max(1);
    values
        .iter()
        .map(|&v| GLYPHS[((v as f64 / max as f64) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let config = base_config();
    let kinds = [
        WorkloadKind::NekRs,
        WorkloadKind::Hpl,
        WorkloadKind::XsBench,
    ];

    let mut rows = Vec::new();
    let mut outputs = Vec::new();
    for kind in kinds {
        let w = workload(kind, InputScale::X1);
        let report = level1_profile(w.as_ref(), &config);
        let t = &report.timeline;
        let total_with: u64 = t.with_prefetch.iter().sum();
        let total_without: u64 = t.without_prefetch.iter().sum();
        println!(
            "\n{} — L2 lines fetched per time bucket ({:.2} ms buckets):",
            kind.name(),
            t.bucket_s * 1e3
        );
        println!("  with prefetch    {}", sparkline(&t.with_prefetch));
        println!("  without prefetch {}", sparkline(&t.without_prefetch));
        rows.push(Row::new(
            kind.name(),
            vec![
                format!("{:.2e}", total_with as f64),
                format!("{:.2e}", total_without as f64),
                format!(
                    "{:+.1}%",
                    100.0 * (total_with as f64 / total_without as f64 - 1.0)
                ),
                format!("{:.0}%", 100.0 * report.prefetch.coverage),
                format!("{:+.0}%", 100.0 * report.prefetch.performance_gain),
            ],
        ));
        outputs.push(TimelineOutput {
            workload: kind.name().to_string(),
            bucket_s: t.bucket_s,
            with_prefetch: t.with_prefetch.clone(),
            without_prefetch: t.without_prefetch.clone(),
            total_with,
            total_without,
        });
    }
    print_table(
        "Figure 7 — total L2 line fills with/without prefetching",
        &[
            "lines (pf on)",
            "lines (pf off)",
            "extra traffic",
            "coverage",
            "perf gain",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): prefetching contributes a large share of the fetched lines \
         for NekRS and HPL (with only a few % extra total traffic) and nearly nothing for \
         XSBench; the performance gain is large for NekRS (~57%) and negligible for XSBench."
    );
    write_json("fig07_prefetch_timeline", &outputs);
}
