//! Figure 12 (case study 1): optimizing BFS data placement — runtime, remote
//! memory traffic and interference sensitivity of the baseline and the two
//! optimized variants at 50% and 75% pooling.

use dismem_bench::{base_config, is_quick, paper, print_table, write_json, Row};
use dismem_core::bfs_placement_study;
use dismem_profiler::level3::PAPER_LOI_LEVELS;
use dismem_workloads::{BfsParams, InputScale};

fn main() {
    let config = base_config();
    let params = if is_quick() {
        BfsParams::tiny()
    } else {
        BfsParams::bench(InputScale::X1)
    };
    let pooled_fractions = [0.5, 0.75];

    eprintln!("  [fig12] running 3 variants x 2 pooling configurations ...");
    let study = bfs_placement_study(params, &config, &pooled_fractions, &PAPER_LOI_LEVELS);

    let mut rows = Vec::new();
    for v in &study.variants {
        rows.push(Row::new(
            format!(
                "{:.0}% pooled, {}",
                v.pooled_fraction * 100.0,
                v.optimization
            ),
            vec![
                format!("{:.1} ms", v.runtime_s * 1e3),
                format!("{:.1}%", 100.0 * v.remote_access_ratio),
                format!("{:.1}%", 100.0 * v.parents_remote_ratio),
                format!("{:.2e} B", v.remote_bytes as f64),
                format!(
                    "{:.3}",
                    v.sensitivity
                        .last()
                        .map(|p| p.relative_performance)
                        .unwrap_or(1.0)
                ),
            ],
        ));
    }
    print_table(
        "Figure 12 — BFS data-placement case study",
        &[
            "runtime",
            "remote access",
            "Parents remote",
            "remote bytes",
            "rel. perf @LoI=50",
        ],
        &rows,
    );

    for &pooled in &pooled_fractions {
        println!(
            "\nAt {:.0}% pooled: remote-access reduction {:.0} percentage points \
             (paper: {:.0}% -> {:.0}% -> {:.0}%), speedup of the fully optimized variant \
             {:.1}% (paper: ~{:.0}% at 75% pooled).",
            pooled * 100.0,
            study.remote_access_reduction(pooled).unwrap_or(0.0),
            100.0 * paper::FIG12.baseline_remote,
            100.0 * paper::FIG12.reorder_remote,
            100.0 * paper::FIG12.optimized_remote,
            study.speedup_percent(pooled).unwrap_or(0.0),
            paper::FIG12.speedup_75_percent,
        );
    }
    println!(
        "\nExpected shape (paper): reordering allocations moves the hot Parents array to local \
         memory; freeing the construction temporary lets dynamic frontier allocations stay local \
         too; remote accesses, runtime and interference sensitivity all drop."
    );
    write_json("fig12_bfs_optimization", &study);
}
