//! Figure 9: ratio of memory accesses served by the second (pool) tier for
//! every application phase on three two-tier configurations (75%, 50% and
//! 25% of the footprint fitting in node-local memory), compared with the
//! capacity-ratio and bandwidth-ratio reference points.

use dismem_bench::{base_config, paper, print_table, workload, write_json, Row};
use dismem_profiler::level2::level2_profile;
use dismem_workloads::{InputScale, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Fig9Row {
    workload: String,
    local_fraction: f64,
    remote_capacity_ratio: f64,
    remote_bandwidth_ratio: f64,
    phase_remote_access: Vec<(String, f64)>,
}

fn main() {
    let config = base_config();
    let fractions = [0.75, 0.50, 0.25];
    let mut json = Vec::new();

    for &local_fraction in &fractions {
        let mut rows = Vec::new();
        let mut xs_remote: f64 = 0.0;
        for kind in WorkloadKind::all() {
            let w = workload(kind, InputScale::X1);
            let report = level2_profile(w.as_ref(), &config, local_fraction);
            if kind == WorkloadKind::XsBench {
                xs_remote = report.remote_access_ratio;
            }
            for phase in &report.phases {
                rows.push(Row::new(
                    format!(
                        "{}-{}",
                        kind.short_name(),
                        &phase.label[phase.label.rfind('p').unwrap_or(0)..]
                    ),
                    vec![
                        format!("{:.1}%", 100.0 * phase.remote_access_ratio),
                        format!("{:.1}%", 100.0 * report.remote_capacity_ratio),
                        format!("{:.1}%", 100.0 * report.remote_bandwidth_ratio),
                        if phase.remote_access_ratio > report.remote_bandwidth_ratio {
                            "above BW ref".to_string()
                        } else if phase.remote_access_ratio > report.remote_capacity_ratio {
                            "between refs".to_string()
                        } else {
                            "below cap ref".to_string()
                        },
                    ],
                ));
            }
            json.push(Fig9Row {
                workload: kind.name().to_string(),
                local_fraction,
                remote_capacity_ratio: report.remote_capacity_ratio,
                remote_bandwidth_ratio: report.remote_bandwidth_ratio,
                phase_remote_access: report
                    .phases
                    .iter()
                    .map(|p| (p.label.clone(), p.remote_access_ratio))
                    .collect(),
            });
            eprintln!(
                "  [fig09] {} at {:.0}% local",
                kind.name(),
                local_fraction * 100.0
            );
        }
        print_table(
            &format!(
                "Figure 9 — remote access ratio per phase, {:.0}%-{:.0}% capacity ratio",
                local_fraction * 100.0,
                (1.0 - local_fraction) * 100.0
            ),
            &["remote access", "capacity ref", "bandwidth ref", "position"],
            &rows,
        );
        println!(
            "  XSBench whole-run remote access ratio: {:.1}% (paper: stays below {:.0}% in all \
             configurations)",
            100.0 * xs_remote,
            100.0 * paper::XSBENCH_MAX_REMOTE_ACCESS
        );
    }
    println!(
        "\nExpected shape (paper): at 75% local the access ratios sit close to the reference \
         lines (little tuning headroom); at 25% local many compute phases sit far above both \
         references; XSBench's remote access stays very low everywhere."
    );
    write_json("fig09_remote_access", &json);
}
