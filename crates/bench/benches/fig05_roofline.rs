//! Figure 5: roofline model of the test platform with the measured arithmetic
//! intensity and throughput of every application phase, plus the dashed
//! multi-tier extension.

use dismem_analysis::{MultiTierRoofline, Roofline, RooflinePoint};
use dismem_bench::{base_config, print_table, workload, write_json, Row};
use dismem_profiler::level1::level1_profile;
use dismem_workloads::{InputScale, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Fig5Output {
    ridge_point: f64,
    peak_gflops: f64,
    local_bw_gbs: f64,
    aggregate_bw_gbs: f64,
    points: Vec<RooflinePoint>,
}

fn main() {
    let config = base_config();
    let roofline = Roofline::new(config.peak_flops, config.local.bandwidth_bps);
    let multi = MultiTierRoofline::new(
        config.peak_flops,
        config.local.bandwidth_bps,
        config.pool.bandwidth_bps,
    );

    println!(
        "Platform roofline: peak {:.0} Gflop/s, local memory {:.0} GB/s (ridge at {:.1} flop/B); \
         adding the pool tier raises the aggregate bandwidth ceiling to {:.0} GB/s.",
        config.peak_flops / 1e9,
        config.local.bandwidth_bps / 1e9,
        roofline.ridge_point(),
        multi.aggregate().peak_bandwidth / 1e9,
    );

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for kind in WorkloadKind::all() {
        let w = workload(kind, InputScale::X1);
        let report = level1_profile(w.as_ref(), &config);
        for phase in &report.phases {
            let point = RooflinePoint {
                label: phase.label.clone(),
                arithmetic_intensity: phase.arithmetic_intensity,
                achieved_flops: phase.gflops * 1e9,
            };
            let bound = if roofline.is_memory_bound(point.arithmetic_intensity) {
                "memory-bound"
            } else {
                "compute-bound"
            };
            rows.push(Row::new(
                phase.label.clone(),
                vec![
                    format!("{:.3}", phase.arithmetic_intensity),
                    format!("{:.2}", phase.gflops),
                    format!("{:.1}", phase.bandwidth_gbs),
                    format!("{:.0}%", 100.0 * point.efficiency(&roofline)),
                    bound.to_string(),
                ],
            ));
            points.push(point);
        }
    }
    print_table(
        "Figure 5 — per-phase roofline points (x1 inputs, node-local memory only)",
        &["AI (flop/B)", "Gflop/s", "GB/s", "roofline eff.", "regime"],
        &rows,
    );
    println!(
        "\nExpected shape (paper): phases span the memory-bound to compute-bound spectrum; \
         HPL-p2 sits far right (high AI), Hypre/NekRS/BFS/XSBench compute phases sit left of the \
         ridge point."
    );
    write_json(
        "fig05_roofline",
        &Fig5Output {
            ridge_point: roofline.ridge_point(),
            peak_gflops: config.peak_flops / 1e9,
            local_bw_gbs: config.local.bandwidth_bps / 1e9,
            aggregate_bw_gbs: multi.aggregate().peak_bandwidth / 1e9,
            points,
        },
    );
}
