//! Reference values reported in the paper, used to print paper-vs-measured
//! comparisons. Values are approximate readings of the paper's figures; the
//! goal of the reproduction is to match the *shape* (ordering, rough
//! magnitudes, crossovers), not the absolute numbers, because the substrate
//! is a scaled-down simulator rather than the authors' dual-socket testbed.

/// Prefetch metrics per workload from Figure 8 (approximate fractions).
/// Order: (workload, accuracy, coverage, excess traffic, performance gain).
pub const FIG8_PREFETCH: [(&str, f64, f64, f64, f64); 6] = [
    ("NekRS", 0.95, 0.70, 0.03, 0.57),
    ("Hypre", 0.90, 0.70, 0.04, 0.45),
    ("SuperLU", 0.85, 0.45, 0.37, 0.31),
    ("HPL", 0.90, 0.55, 0.02, 0.35),
    ("BFS", 0.55, 0.15, 0.05, 0.10),
    ("XSBench", 0.35, 0.01, 0.03, 0.02),
];

/// Interference sensitivity at LoI = 50 on the 50%-50% configuration
/// (Figure 10b): relative performance of the compute phase.
pub const FIG10_SENSITIVITY_50_50: [(&str, f64); 6] = [
    ("Hypre", 0.85),
    ("NekRS", 0.87),
    ("SuperLU", 0.93),
    ("BFS", 0.94),
    ("XSBench", 0.97),
    ("HPL", 0.96),
];

/// Interference coefficients (Figure 11, right panel), approximate upper
/// bounds of each workload's spread on the 50% pooling setup.
pub const FIG11_IC: [(&str, f64); 6] = [
    ("Hypre", 1.5),
    ("NekRS", 1.45),
    ("BFS", 1.3),
    ("SuperLU", 1.25),
    ("HPL", 1.1),
    ("XSBench", 1.05),
];

/// BFS case study (Figure 12): remote access ratio at 75% pooling for the
/// baseline, allocation-reordered and reorder+free variants, and the speedup
/// of the final variant over the baseline.
pub struct Fig12Reference {
    /// Remote access ratio of the baseline at 75% pooling.
    pub baseline_remote: f64,
    /// Remote access ratio after reordering allocations.
    pub reorder_remote: f64,
    /// Remote access ratio after additionally freeing the temporary.
    pub optimized_remote: f64,
    /// Speedup of the optimized variant at 75% pooling, percent.
    pub speedup_75_percent: f64,
    /// Speedup of the reorder-only variant, percent.
    pub speedup_reorder_percent: f64,
}

/// Figure 12 reference values.
pub const FIG12: Fig12Reference = Fig12Reference {
    baseline_remote: 0.99,
    reorder_remote: 0.80,
    optimized_remote: 0.50,
    speedup_75_percent: 13.0,
    speedup_reorder_percent: 6.0,
};

/// Scheduling study (Figure 13): average speedup and 75th-percentile runtime
/// reduction of interference-aware scheduling, percent.
pub const FIG13_SPEEDUP: [(&str, f64, f64); 6] = [
    ("Hypre", 4.0, 5.0),
    ("NekRS", 2.0, 3.0),
    ("SuperLU", 2.0, 3.0),
    ("BFS", 1.0, 2.0),
    ("HPL", 1.0, 1.0),
    ("XSBench", 0.0, 1.0),
];

/// Remote access ratio of XSBench never exceeds this in any configuration
/// (Section 5.1).
pub const XSBENCH_MAX_REMOTE_ACCESS: f64 = 0.06;

/// Paper testbed characteristics quoted in Section 3.3.
pub mod testbed {
    /// Intra-socket (local) bandwidth, GB/s.
    pub const LOCAL_BW_GBS: f64 = 73.0;
    /// Inter-socket (pool) bandwidth, GB/s.
    pub const POOL_BW_GBS: f64 = 34.0;
    /// Local latency, ns.
    pub const LOCAL_LAT_NS: f64 = 111.0;
    /// Pool latency, ns.
    pub const POOL_LAT_NS: f64 = 202.0;
    /// Raw link saturation, GB/s.
    pub const LINK_SATURATION_GBS: f64 = 85.0;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tables_cover_all_six_workloads() {
        assert_eq!(FIG8_PREFETCH.len(), 6);
        assert_eq!(FIG10_SENSITIVITY_50_50.len(), 6);
        assert_eq!(FIG11_IC.len(), 6);
        assert_eq!(FIG13_SPEEDUP.len(), 6);
    }

    #[test]
    fn reference_orderings_match_paper_narrative() {
        // Hypre and NekRS are the most interference sensitive...
        let get = |name: &str| {
            FIG10_SENSITIVITY_50_50
                .iter()
                .find(|(n, _)| *n == name)
                .unwrap()
                .1
        };
        assert!(get("Hypre") < get("HPL"));
        assert!(get("NekRS") < get("XSBench"));
        // ...and cause the most interference.
        let ic = |name: &str| FIG11_IC.iter().find(|(n, _)| *n == name).unwrap().1;
        assert!(ic("Hypre") > ic("HPL"));
    }

    // BFS case study numbers are internally consistent; the comparisons are
    // between constants, so let the compiler check them.
    const _: () = {
        assert!(FIG12.baseline_remote > FIG12.reorder_remote);
        assert!(FIG12.reorder_remote > FIG12.optimized_remote);
        assert!(FIG12.speedup_75_percent > FIG12.speedup_reorder_percent);
    };
}
