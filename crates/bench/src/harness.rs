//! Experiment-harness utilities: profiles, configuration, table printing and
//! JSON result output.

use dismem_sim::MachineConfig;
use dismem_workloads::{InputScale, Workload, WorkloadKind};
use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Whether the quick (smoke-test) profile is active (`DISMEM_QUICK=1`).
pub fn is_quick() -> bool {
    std::env::var("DISMEM_QUICK").map(|v| v == "1" || v.eq_ignore_ascii_case("true")) == Ok(true)
}

/// The machine configuration used for all experiments: the paper's testbed
/// figures with caches scaled to the proxy workloads' footprints.
pub fn base_config() -> MachineConfig {
    MachineConfig::scaled_testbed()
}

/// Instantiates a workload for an experiment, honouring the quick profile.
pub fn workload(kind: WorkloadKind, scale: InputScale) -> Box<dyn Workload> {
    if is_quick() {
        kind.instantiate_tiny()
    } else {
        kind.instantiate(scale)
    }
}

/// Directory where JSON result copies are written.
///
/// Anchored at the cargo target directory rather than the process working
/// directory: `cargo bench` runs bench binaries with the crate directory as
/// cwd, which would otherwise scatter `crates/bench/target/`. Resolution
/// order:
///
/// 1. `DISMEM_RESULTS_DIR` — explicit override, used verbatim;
/// 2. `CARGO_TARGET_DIR` — honored at runtime, so redirected target
///    directories receive the results;
/// 3. the workspace `target/` next to this crate (compile-time fallback).
pub fn results_dir() -> PathBuf {
    let dir = if let Ok(dir) = std::env::var("DISMEM_RESULTS_DIR") {
        PathBuf::from(dir)
    } else if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
        PathBuf::from(target).join("dismem-results")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/dismem-results")
    };
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Writes a serializable result next to the printed table.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("  [results written to {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// A row of a printed table: a label plus formatted cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label.
    pub label: String,
    /// Cell values, already formatted.
    pub cells: Vec<String>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, cells: Vec<String>) -> Self {
        Self {
            label: label.into(),
            cells,
        }
    }
}

/// Prints a titled, column-aligned table with a header row.
pub fn print_table(title: &str, columns: &[&str], rows: &[Row]) {
    println!();
    println!("=== {title} ===");
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    let mut label_width = 0usize;
    for row in rows {
        label_width = label_width.max(row.label.len());
        for (i, cell) in row.cells.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header: Vec<String> = columns
        .iter()
        .enumerate()
        .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
        .collect();
    println!("{:<label_width$}  {}", "", header.join("  "));
    for row in rows {
        let cells: Vec<String> = row
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{:<label_width$}  {}", row.label, cells.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Environment variables are process-global and the test harness runs
    // tests concurrently; every test that mutates the environment must hold
    // this lock (concurrent setenv/getenv is a data race on glibc).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn quick_profile_detection_and_workload_instantiation() {
        let _env = ENV_LOCK.lock().unwrap();
        // Not set in the test environment by default.
        std::env::remove_var("DISMEM_QUICK");
        assert!(!is_quick());
        std::env::set_var("DISMEM_QUICK", "1");
        assert!(is_quick());
        let quick = workload(WorkloadKind::Hypre, InputScale::X4);
        std::env::remove_var("DISMEM_QUICK");
        let full = workload(WorkloadKind::Hypre, InputScale::X4);
        assert!(quick.expected_footprint_bytes() < full.expected_footprint_bytes());
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            &["a", "b"],
            &[
                Row::new("row1", vec!["1".into(), "2".into()]),
                Row::new("longer-row", vec!["3".into()]),
            ],
        );
    }

    #[test]
    fn results_dir_resolution_order() {
        let _env = ENV_LOCK.lock().unwrap();
        let tmp = std::env::temp_dir();

        // CARGO_TARGET_DIR is honored at runtime when no explicit override
        // is set.
        std::env::remove_var("DISMEM_RESULTS_DIR");
        std::env::set_var("CARGO_TARGET_DIR", tmp.join("dismem-target"));
        assert_eq!(
            results_dir(),
            tmp.join("dismem-target").join("dismem-results")
        );

        // DISMEM_RESULTS_DIR wins over CARGO_TARGET_DIR.
        std::env::set_var("DISMEM_RESULTS_DIR", tmp.join("dismem-explicit"));
        assert_eq!(results_dir(), tmp.join("dismem-explicit"));

        // Without either, the compile-time workspace target is used.
        std::env::remove_var("DISMEM_RESULTS_DIR");
        std::env::remove_var("CARGO_TARGET_DIR");
        let fallback = results_dir();
        assert!(fallback.ends_with("target/dismem-results"));

        let _ = std::fs::remove_dir_all(tmp.join("dismem-target"));
        let _ = std::fs::remove_dir_all(tmp.join("dismem-explicit"));
    }

    #[test]
    fn json_writing_creates_file() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var(
            "DISMEM_RESULTS_DIR",
            std::env::temp_dir().join("dismem-test-results"),
        );
        write_json("harness-selftest", &vec![1, 2, 3]);
        let path = results_dir().join("harness-selftest.json");
        assert!(path.exists());
        let _ = std::fs::remove_file(path);
        std::env::remove_var("DISMEM_RESULTS_DIR");
    }
}
