//! # dismem-bench
//!
//! Shared infrastructure for the experiment harnesses that regenerate every
//! table and figure of the paper. Each harness lives in `benches/` as a
//! `harness = false` bench target, so `cargo bench` reruns the whole
//! evaluation and prints paper-vs-measured rows.
//!
//! Environment variables:
//!
//! * `DISMEM_QUICK=1` — run the experiments on tiny inputs (seconds instead of
//!   minutes); useful for smoke-testing the harnesses.
//! * `DISMEM_RESULTS_DIR` — where to write the JSON copies of the results
//!   (defaults to `target/dismem-results`).

#![forbid(unsafe_code)]

pub mod harness;
pub mod paper;

pub use harness::{base_config, is_quick, print_table, results_dir, workload, write_json, Row};
