//! Deterministic fault injection for campaign robustness tests.
//!
//! A [`FaultPlan`] lets tests (and the CI smoke example) exercise the three
//! failure modes the crash-consistency contract defends against, without any
//! real crashing or wall-clock machinery:
//!
//! * **kill-after-cell-k** — the driver stops with
//!   [`CampaignError::Interrupted`] once the journal holds `k` records,
//!   simulating a process kill between appends;
//! * **torn final record** — on that injected kill, the journal's last line
//!   is truncated mid-record, simulating filesystem-level loss of the final
//!   (non-atomic) write;
//! * **poisoned cells** — named cells panic for their first `n` attempts,
//!   driving the retry/quarantine path (`n = u32::MAX` never heals);
//! * **tampered snapshots** ([`SnapshotTamper`]) — warm-start snapshot files
//!   are damaged byte-level (truncation, foreign key digest, version bump) to
//!   drive the cache's cold-run fallback path, whose reports must stay
//!   bit-identical to an uncached campaign's.
//!
//! [`CampaignError::Interrupted`]: crate::campaign::CampaignError::Interrupted

use crate::journal::JournalError;
use std::collections::BTreeMap;
use std::path::Path;

/// Byte-level damage to a warm-start snapshot file, each targeting one typed
/// error of the snapshot envelope (see `dismem_sim::SnapshotError`): the
/// cache must answer every one of them with a counted cold-run fallback,
/// never an abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotTamper {
    /// Drop the second half of the file (`SnapshotError::Truncated`).
    Truncate,
    /// Flip a byte of the key-digest field at offset 8, simulating a
    /// snapshot written for a different warm prefix
    /// (`SnapshotError::ForeignDigest`).
    ForeignDigest,
    /// Bump the version field at offset 4, simulating a snapshot from an
    /// incompatible codec revision (`SnapshotError::VersionMismatch`).
    VersionMismatch,
}

impl SnapshotTamper {
    /// Applies the damage to `bytes` in place. Returns `false` when the file
    /// is too short to carry the targeted field (nothing is changed then —
    /// such a stub already fails envelope validation as `Truncated`).
    pub fn apply(self, bytes: &mut Vec<u8>) -> bool {
        match self {
            SnapshotTamper::Truncate => {
                if bytes.is_empty() {
                    return false;
                }
                bytes.truncate(bytes.len() / 2);
                true
            }
            SnapshotTamper::ForeignDigest => {
                if bytes.len() <= 8 {
                    return false;
                }
                bytes[8] ^= 0xff;
                true
            }
            SnapshotTamper::VersionMismatch => {
                if bytes.len() <= 4 {
                    return false;
                }
                bytes[4] = bytes[4].wrapping_add(1);
                true
            }
        }
    }
}

/// A deterministic fault-injection plan. [`FaultPlan::none`] (also `Default`)
/// injects nothing and is what production campaigns run with.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Stop the campaign once this many records are durable in the journal.
    pub kill_after_cells: Option<u64>,
    /// On the injected kill, truncate the journal's final line mid-record.
    pub truncate_final_record: bool,
    /// Cell id → number of attempts that panic before the cell heals
    /// (`u32::MAX` = poisoned forever, ends in quarantine).
    pub poison: BTreeMap<String, u32>,
    /// Damage to apply to warm-start snapshot files via
    /// [`FaultPlan::tamper_snapshots`].
    pub snapshot_tamper: Option<SnapshotTamper>,
}

impl FaultPlan {
    /// No faults.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Kill the campaign after `cells` journal records.
    pub fn kill_after(cells: u64) -> FaultPlan {
        FaultPlan {
            kill_after_cells: Some(cells),
            ..FaultPlan::default()
        }
    }

    /// Additionally truncate the final journal record on the injected kill.
    pub fn with_torn_final_record(mut self) -> FaultPlan {
        self.truncate_final_record = true;
        self
    }

    /// Poison the cell with this id so its first `attempts` attempts panic.
    pub fn with_poison(mut self, cell_id: &str, attempts: u32) -> FaultPlan {
        self.poison.insert(cell_id.to_string(), attempts);
        self
    }

    /// Poison the cell with this id permanently (every attempt panics; the
    /// driver quarantines it after `max_attempts`).
    pub fn with_poison_forever(self, cell_id: &str) -> FaultPlan {
        self.with_poison(cell_id, u32::MAX)
    }

    /// Damage warm-start snapshot files with this tamper when
    /// [`FaultPlan::tamper_snapshots`] is invoked.
    pub fn with_snapshot_tamper(mut self, tamper: SnapshotTamper) -> FaultPlan {
        self.snapshot_tamper = Some(tamper);
        self
    }

    /// Applies the plan's [`SnapshotTamper`] to every `.snap` file in
    /// `cache_dir`, in path order. Returns the number of files damaged; a
    /// plan without a snapshot tamper (or an absent directory) damages
    /// nothing. Tests call this between a cache-warming campaign and the
    /// campaign whose fallback behaviour is under test.
    pub fn tamper_snapshots(&self, cache_dir: &Path) -> Result<u64, JournalError> {
        let Some(tamper) = self.snapshot_tamper else {
            return Ok(0);
        };
        let io = |e: std::io::Error| JournalError::Io(format!("{}: {e}", cache_dir.display()));
        if !cache_dir.exists() {
            return Ok(0);
        }
        let mut paths: Vec<_> = std::fs::read_dir(cache_dir)
            .map_err(io)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "snap"))
            .collect();
        paths.sort();
        let mut damaged = 0;
        for path in paths {
            let mut bytes = std::fs::read(&path)
                .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;
            if tamper.apply(&mut bytes) {
                std::fs::write(&path, &bytes)
                    .map_err(|e| JournalError::Io(format!("{}: {e}", path.display())))?;
                damaged += 1;
            }
        }
        Ok(damaged)
    }

    /// Test hook called by the driver inside its `catch_unwind` scope before
    /// a cell attempt runs: panics if the plan poisons this attempt.
    pub fn poison_check(&self, cell_id: &str, attempt: u32) {
        if let Some(&poisoned_attempts) = self.poison.get(cell_id) {
            if attempt <= poisoned_attempts {
                panic!("fault injection: poisoned cell {cell_id} (attempt {attempt})");
            }
        }
    }

    /// True when the injected kill threshold has been reached.
    pub fn should_kill(&self, journaled_cells: u64) -> bool {
        self.kill_after_cells.is_some_and(|k| journaled_cells >= k)
    }

    /// Applies the torn-final-record corruption to a journal file: the last
    /// line loses its trailing half, exactly the damage a non-atomic final
    /// write would leave behind.
    pub fn apply_truncation(&self, journal_path: &Path) -> Result<(), JournalError> {
        if !self.truncate_final_record {
            return Ok(());
        }
        let content = std::fs::read_to_string(journal_path)
            .map_err(|e| JournalError::Io(format!("{}: {e}", journal_path.display())))?;
        let trimmed = content.trim_end_matches('\n');
        let last_start = trimmed.rfind('\n').map_or(0, |i| i + 1);
        let last_len = trimmed.len() - last_start;
        if last_len == 0 {
            return Ok(());
        }
        // Keep roughly half the record — enough bytes to be visibly a torn
        // JSON prefix, never a valid line.
        let keep = last_start + last_len / 2;
        let torn = &trimmed[..floor_char_boundary(trimmed, keep)];
        std::fs::write(journal_path, torn)
            .map_err(|e| JournalError::Io(format!("{}: {e}", journal_path.display())))
    }
}

fn floor_char_boundary(s: &str, mut index: usize) -> usize {
    while index > 0 && !s.is_char_boundary(index) {
        index -= 1;
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poison_check_panics_only_while_poisoned() {
        let plan = FaultPlan::none().with_poison("cell-a", 2);
        let hit = std::panic::catch_unwind(|| plan.poison_check("cell-a", 1));
        assert!(hit.is_err());
        let hit = std::panic::catch_unwind(|| plan.poison_check("cell-a", 2));
        assert!(hit.is_err());
        // Third attempt heals; unrelated cells never panic.
        plan.poison_check("cell-a", 3);
        plan.poison_check("cell-b", 1);
    }

    #[test]
    fn kill_threshold() {
        let plan = FaultPlan::kill_after(3);
        assert!(!plan.should_kill(2));
        assert!(plan.should_kill(3));
        assert!(plan.should_kill(4));
        assert!(!FaultPlan::none().should_kill(1_000_000));
    }
}
