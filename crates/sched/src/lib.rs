//! # dismem-sched
//!
//! The interference-aware job-scheduling case study (Section 7.2, Figure 13).
//!
//! The experiment co-locates each workload with a mix of other jobs sharing
//! the same memory pool. The co-runners are represented by a background level
//! of interference on the pool link that is re-drawn at fixed epochs
//! (every 60 s in the paper). Two policies are compared:
//!
//! * **Random baseline** — the scheduler ignores interference, so the
//!   background LoI is drawn uniformly from 0–50 %.
//! * **Interference-aware** — the scheduler avoids co-locating
//!   interference-heavy jobs, cutting off the top of the distribution: the
//!   background LoI is drawn uniformly from 0–20 %.
//!
//! Each workload is run many times under both policies; the runtime
//! distributions (five-number summaries) reproduce Figure 13.

//! A second campaign axis, dynamic tiering, lives in [`tiering`]: the same
//! workloads are re-simulated under page promotion/demotion policies
//! (static / hot-promote / periodic-rebalance) and each placement is then
//! priced under the interference campaigns above.
//!
//! Fleet-scale parameter campaigns are driven by the fault-tolerant
//! work-queue in [`campaign`] (see [`campaign::run_fleet_campaign`] and
//! [`campaign::resume_campaign`]): cells are journaled crash-consistently
//! ([`journal`]), panicking cells are retried and quarantined, shards run as
//! independent processes, and the whole contract is proven by the
//! fault-injection harness in [`fault`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod campaign;
pub mod fault;
pub mod journal;
pub mod policy;
pub mod snapshot_cache;
pub mod tiering;

pub use campaign::compare_policies_checked;
pub use campaign::{
    resume_campaign, resume_campaign_traced, run_campaign, run_fleet_campaign,
    run_fleet_campaign_traced, CampaignConfig, CampaignError, CampaignReport, CampaignResult,
    CellRunner, CompletedCell, FailedCell, FleetSpec, PolicyComparison, ResumeStats, Shard,
    SimCellRunner,
};
pub use fault::{FaultPlan, SnapshotTamper};
pub use journal::{
    load_journal, merge_shard_journals, CellMetrics, JournalError, JournalRecord, JournalWriter,
    LoadedJournal,
};
pub use policy::SchedulingPolicy;
pub use snapshot_cache::{warm_key_digest, SnapshotCache, SnapshotStats};
pub use tiering::{
    default_specs, run_with_tiering, run_with_tiering_checked, sweep_tiering_matrix,
    sweep_tiering_policies, CapacityTieringSweep, PolicyFailure, TieringOutcome, TieringSweep,
    WorkloadTieringStudy,
};
