//! Dynamic-tiering policy campaigns.
//!
//! Unlike the interference campaigns (which re-time a fixed profiled run),
//! tiering policies change page placement itself, so each policy needs a full
//! re-simulation. A sweep runs one simulation per [`TieringSpec`] — in
//! parallel on the thread pool — and then reuses the Monte Carlo machinery to
//! price every policy's run under randomly drawn pool interference, so the
//! comparison covers both the idle-pool runtime and behaviour on a busy
//! rack: migration traffic competes with the interferers for the same link,
//! which is exactly the trade-off an operator deciding on a tiering daemon
//! cares about.

use crate::campaign::{run_campaign_sequential, CampaignConfig};
use crate::policy::SchedulingPolicy;
use dismem_sim::tiering::{HotPromote, PeriodicRebalance};
use dismem_sim::{Machine, MachineConfig, RunReport, TieringSpec};
use dismem_workloads::Workload;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Result of one tiering policy in a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TieringOutcome {
    /// Policy label (`static`, `hot-promote`, `periodic-rebalance`).
    pub policy: String,
    /// Full policy configuration.
    pub spec: TieringSpec,
    /// Idle-pool simulated runtime.
    pub runtime_s: f64,
    /// Idle-pool speedup over the sweep's `static` policy (1.0 when this is
    /// the static run, or when no static run is part of the sweep).
    pub speedup_vs_static: f64,
    /// Mean runtime under the random-baseline interference campaign.
    pub mean_loaded_runtime_s: f64,
    /// Speedup of the campaign mean over the static policy's campaign mean.
    pub loaded_speedup_vs_static: f64,
    /// Remote access ratio of the run (application traffic only).
    pub remote_access_ratio: f64,
    /// Hotness epochs completed.
    pub epochs: u64,
    /// Pages promoted pool → local.
    pub promotions: u64,
    /// Pages demoted local → pool.
    pub demotions: u64,
    /// Payload bytes moved by migrations.
    pub migrated_bytes: u64,
    /// Migrations suppressed by the ping-pong damper.
    pub ping_pongs_damped: u64,
    /// Raw link bytes spent on migrations (payload × protocol overhead).
    pub migration_link_raw_bytes: u64,
    /// Total raw link bytes of the run (application + migrations).
    pub link_raw_bytes: u64,
}

/// A full policy sweep for one workload on one machine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TieringSweep {
    /// Workload name.
    pub workload: String,
    /// Input description.
    pub input: String,
    /// One outcome per requested policy, in request order.
    pub outcomes: Vec<TieringOutcome>,
}

impl TieringSweep {
    /// The outcome of the `static` reference policy, if it was swept.
    pub fn static_outcome(&self) -> Option<&TieringOutcome> {
        self.outcomes.iter().find(|o| o.policy == "static")
    }

    /// The best (lowest idle runtime) outcome.
    pub fn best(&self) -> Option<&TieringOutcome> {
        self.outcomes
            .iter()
            .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
    }
}

/// The canonical three-policy sweep: the static reference, TPP-style hot
/// promotion and AutoNUMA-style periodic rebalancing, sharing one epoch
/// length and heat scale.
pub fn default_specs(epoch_lines: u64, promote_heat: f64) -> Vec<TieringSpec> {
    vec![
        TieringSpec::Static,
        TieringSpec::HotPromote(HotPromote {
            demote_heat: promote_heat / 4.0,
            ..HotPromote::new(epoch_lines, promote_heat)
        }),
        TieringSpec::PeriodicRebalance(PeriodicRebalance::new(epoch_lines, 2, 4096)),
    ]
}

/// Simulates `workload` once under `spec`.
pub fn run_with_tiering(
    workload: &dyn Workload,
    config: &MachineConfig,
    spec: &TieringSpec,
) -> RunReport {
    let mut machine = Machine::new(config.clone());
    machine.set_tiering_spec(spec);
    workload.run(&mut machine);
    machine.finish()
}

/// Sweeps `specs` for one workload: one full simulation per policy (in
/// parallel), followed by a sequential interference campaign per run. The
/// result is deterministic for a given `(config, specs, campaign)` input.
pub fn sweep_tiering_policies(
    workload: &dyn Workload,
    config: &MachineConfig,
    specs: &[TieringSpec],
    campaign: &CampaignConfig,
) -> TieringSweep {
    let reports: Vec<RunReport> = specs
        .par_iter()
        .map(|spec| run_with_tiering(workload, config, spec))
        .collect();
    let means: Vec<f64> = reports
        .par_iter()
        .map(|report| {
            run_campaign_sequential(
                workload.name(),
                report,
                SchedulingPolicy::RandomBaseline,
                campaign,
            )
            .mean_s
        })
        .collect();

    // Without a static run in the sweep there is no reference to compare
    // against, and the speedup fields stay at their documented 1.0.
    let static_idx = specs.iter().position(|s| matches!(s, TieringSpec::Static));
    let static_runtime = static_idx.map(|i| reports[i].total_runtime_s);
    let static_mean = static_idx.map(|i| means[i]);

    let outcomes = specs
        .iter()
        .zip(&reports)
        .zip(&means)
        .map(|((spec, report), &mean_loaded)| {
            let t = &report.tiering;
            TieringOutcome {
                policy: t.policy.clone(),
                spec: *spec,
                runtime_s: report.total_runtime_s,
                speedup_vs_static: match static_runtime {
                    Some(s) if report.total_runtime_s > 0.0 => s / report.total_runtime_s,
                    _ => 1.0,
                },
                mean_loaded_runtime_s: mean_loaded,
                loaded_speedup_vs_static: match static_mean {
                    Some(s) if mean_loaded > 0.0 => s / mean_loaded,
                    _ => 1.0,
                },
                remote_access_ratio: report.remote_access_ratio(),
                epochs: t.epochs,
                promotions: t.promotions,
                demotions: t.demotions,
                migrated_bytes: t.migrated_bytes,
                ping_pongs_damped: t.ping_pongs_damped,
                migration_link_raw_bytes: report.migration_link_raw_bytes(),
                link_raw_bytes: report.total.link_raw_bytes,
            }
        })
        .collect();
    TieringSweep {
        workload: workload.name().to_string(),
        input: workload.input_description(),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_workloads::{PhaseShift, PhaseShiftParams};

    const PAGE_SIZE: u64 = 4096;

    fn sweep_setup() -> (PhaseShift, MachineConfig) {
        let workload = PhaseShift::new(PhaseShiftParams::tiny());
        // Local tier fits half the interleaved arena plus the accumulator.
        let arena_pages = workload.params().arena_bytes / PAGE_SIZE;
        let config =
            MachineConfig::test_config().with_local_capacity((arena_pages / 2 + 2) * PAGE_SIZE);
        (workload, config)
    }

    fn small_campaign() -> CampaignConfig {
        CampaignConfig {
            runs: 12,
            epochs_per_run: 4,
            seed: 7,
        }
    }

    #[test]
    fn sweep_shows_hot_promote_beating_static_on_phaseshift() {
        let (workload, config) = sweep_setup();
        let specs = default_specs(2048, 12.0);
        let sweep = sweep_tiering_policies(&workload, &config, &specs, &small_campaign());
        assert_eq!(sweep.outcomes.len(), 3);
        let st = sweep.static_outcome().expect("static swept");
        assert_eq!(st.promotions + st.demotions, 0);
        assert!((st.speedup_vs_static - 1.0).abs() < 1e-12);

        let hot = sweep
            .outcomes
            .iter()
            .find(|o| o.policy == "hot-promote")
            .unwrap();
        assert!(hot.promotions > 0, "hot-promote must migrate: {hot:?}");
        assert!(hot.migrated_bytes > 0);
        assert!(hot.migration_link_raw_bytes > hot.migrated_bytes);
        assert!(
            hot.speedup_vs_static > 1.02,
            "hot-promote should beat static: {}",
            hot.speedup_vs_static
        );
        assert!(hot.remote_access_ratio < st.remote_access_ratio);
        // The interference campaign prices both runs; migrating away from
        // the pool should not make the loaded mean worse.
        assert!(hot.loaded_speedup_vs_static > 1.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let (workload, config) = sweep_setup();
        let specs = default_specs(2048, 12.0);
        let a = sweep_tiering_policies(&workload, &config, &specs, &small_campaign());
        let b = sweep_tiering_policies(&workload, &config, &specs, &small_campaign());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.runtime_s, y.runtime_s);
            assert_eq!(x.mean_loaded_runtime_s, y.mean_loaded_runtime_s);
            assert_eq!(x.promotions, y.promotions);
            assert_eq!(x.demotions, y.demotions);
        }
    }

    #[test]
    fn best_outcome_lookup() {
        let (workload, config) = sweep_setup();
        let specs = default_specs(2048, 12.0);
        let sweep = sweep_tiering_policies(&workload, &config, &specs, &small_campaign());
        let best = sweep.best().unwrap();
        assert!(sweep.outcomes.iter().all(|o| o.runtime_s >= best.runtime_s));
    }
}
