//! Dynamic-tiering policy campaigns.
//!
//! Unlike the interference campaigns (which re-time a fixed profiled run),
//! tiering policies change page placement itself, so each policy needs a full
//! re-simulation. A sweep runs one simulation per [`TieringSpec`] — in
//! parallel on the thread pool — and then reuses the Monte Carlo machinery to
//! price every policy's run under randomly drawn pool interference, so the
//! comparison covers both the idle-pool runtime and behaviour on a busy
//! rack: migration traffic competes with the interferers for the same link,
//! which is exactly the trade-off an operator deciding on a tiering daemon
//! cares about.

use crate::campaign::{panic_message, run_campaign_sequential, CampaignConfig};
use crate::policy::SchedulingPolicy;
use dismem_profiler::pooled_config;
use dismem_sim::tiering::{HotPromote, PeriodicRebalance};
use dismem_sim::{Machine, MachineConfig, RunReport, TieringReport, TieringSpec};
use dismem_workloads::Workload;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::panic::AssertUnwindSafe;

/// Result of one tiering policy in a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TieringOutcome {
    /// Policy label (`static`, `hot-promote`, `periodic-rebalance`).
    pub policy: String,
    /// Full policy configuration.
    pub spec: TieringSpec,
    /// Idle-pool simulated runtime.
    pub runtime_s: f64,
    /// Idle-pool speedup over the sweep's `static` policy (1.0 when this is
    /// the static run, or when no static run is part of the sweep).
    pub speedup_vs_static: f64,
    /// Mean runtime under the random-baseline interference campaign.
    pub mean_loaded_runtime_s: f64,
    /// Speedup of the campaign mean over the static policy's campaign mean.
    pub loaded_speedup_vs_static: f64,
    /// Remote access ratio of the run (application traffic only).
    pub remote_access_ratio: f64,
    /// Full tiering activity of the run: epochs, promotions/demotions,
    /// migrated bytes, damper statistics and the measured phase-dwell
    /// counters (`hot_set_shifts`, `dwell_epochs_total`, ...).
    pub tiering: TieringReport,
    /// Mean phase-dwell length in epochs ([`TieringReport::mean_dwell_epochs`]
    /// of `tiering`, denormalized for tables and committed JSON).
    pub mean_dwell_epochs: f64,
    /// Raw link bytes spent on migrations (payload × protocol overhead).
    pub migration_link_raw_bytes: u64,
    /// Total raw link bytes of the run (application + migrations).
    pub link_raw_bytes: u64,
}

/// A policy whose simulation or pricing campaign panicked or failed. The
/// sweep reports the gap here instead of unwinding and losing the rest of
/// the matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyFailure {
    /// Label of the failed spec (`static`, `hot-promote`,
    /// `periodic-rebalance`).
    pub policy: String,
    /// Panic or error message of the failed cell.
    pub error: String,
}

/// A full policy sweep for one workload on one machine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TieringSweep {
    /// Workload name.
    pub workload: String,
    /// Input description.
    pub input: String,
    /// One outcome per *successful* policy, in request order.
    pub outcomes: Vec<TieringOutcome>,
    /// Policies whose cell panicked or failed, in request order. Empty on a
    /// healthy sweep.
    pub failed_policies: Vec<PolicyFailure>,
}

impl TieringSweep {
    /// The outcome of the `static` reference policy, if it was swept.
    pub fn static_outcome(&self) -> Option<&TieringOutcome> {
        self.outcomes.iter().find(|o| o.policy == "static")
    }

    /// The best (lowest idle runtime) outcome.
    pub fn best(&self) -> Option<&TieringOutcome> {
        self.outcomes
            .iter()
            .min_by(|a, b| a.runtime_s.total_cmp(&b.runtime_s))
    }

    /// The first outcome that actually measured hotness epochs (and with
    /// them the phase-dwell counters) — the run to derive dwell-based
    /// guidance from. `None` when only static policies were swept.
    pub fn measured(&self) -> Option<&TieringOutcome> {
        self.outcomes.iter().find(|o| o.tiering.epochs > 0)
    }
}

/// One local-capacity point of a workload's tiering study: the policy sweep
/// under a `pooled_config` whose local tier holds `local_fraction` of the
/// workload's expected footprint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityTieringSweep {
    /// Fraction of the expected footprint that fits in the local tier.
    pub local_fraction: f64,
    /// The resulting local-tier capacity in bytes.
    pub local_capacity_bytes: u64,
    /// The policy sweep at this capacity.
    pub sweep: TieringSweep,
}

/// A full dynamic-tiering study of one workload: policy sweeps across a set
/// of local-capacity fractions (the paper's `setup_waste` points), produced
/// by [`sweep_tiering_matrix`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadTieringStudy {
    /// Workload name.
    pub workload: String,
    /// Input description.
    pub input: String,
    /// Expected peak footprint the capacities were derived from.
    pub footprint_bytes: u64,
    /// One policy sweep per local-capacity fraction, in request order.
    pub cells: Vec<CapacityTieringSweep>,
}

impl WorkloadTieringStudy {
    /// The cell closest to `local_fraction`.
    pub fn cell_at(&self, local_fraction: f64) -> Option<&CapacityTieringSweep> {
        self.cells.iter().min_by(|a, b| {
            (a.local_fraction - local_fraction)
                .abs()
                .total_cmp(&(b.local_fraction - local_fraction).abs())
        })
    }

    /// The dwell-measuring outcome ([`TieringSweep::measured`]) of the cell
    /// closest to `local_fraction` — the measurement the migrate-vs-interleave
    /// guidance rule is derived from.
    pub fn measured_at(&self, local_fraction: f64) -> Option<&TieringOutcome> {
        self.cell_at(local_fraction)
            .and_then(|c| c.sweep.measured())
    }

    /// Best idle-pool speedup over static any dynamic policy achieved in any
    /// cell (1.0 when nothing beats static anywhere).
    pub fn best_speedup_vs_static(&self) -> f64 {
        self.cells
            .iter()
            .flat_map(|c| c.sweep.outcomes.iter())
            .map(|o| o.speedup_vs_static)
            .fold(1.0, f64::max)
    }
}

/// Runs the full per-policy × per-local-capacity campaign for one workload:
/// for every fraction in `local_fractions`, the machine is derived with
/// [`dismem_profiler::pooled_config`] (local tier = fraction × expected
/// footprint, the paper's `setup_waste` step) and every spec in `specs` is
/// re-simulated and priced under the Monte Carlo interference campaign.
///
/// Cells run sequentially; within a cell the policy simulations fan out on
/// the thread pool ([`sweep_tiering_policies`]), which keeps the CPU busy
/// without nesting scoped-thread fan-outs. The result is deterministic for a
/// given `(workload, base, local_fractions, specs, campaign)` input.
pub fn sweep_tiering_matrix(
    workload: &dyn Workload,
    base: &MachineConfig,
    local_fractions: &[f64],
    specs: &[TieringSpec],
    campaign: &CampaignConfig,
) -> WorkloadTieringStudy {
    let cells = local_fractions
        .iter()
        .map(|&local_fraction| {
            // Deriving the cell's machine config can itself panic (degenerate
            // fractions); report the whole capacity point as failed policies
            // rather than losing the matrix.
            let config = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pooled_config(base, workload, local_fraction)
            }))
            .map_err(panic_message);
            match config {
                Ok(config) => {
                    let local_capacity_bytes = config.local.capacity_bytes.unwrap_or(0);
                    CapacityTieringSweep {
                        local_fraction,
                        local_capacity_bytes,
                        sweep: sweep_tiering_policies(workload, &config, specs, campaign),
                    }
                }
                Err(error) => CapacityTieringSweep {
                    local_fraction,
                    local_capacity_bytes: 0,
                    sweep: TieringSweep {
                        workload: workload.name().to_string(),
                        input: workload.input_description(),
                        outcomes: Vec::new(),
                        failed_policies: specs
                            .iter()
                            .map(|spec| PolicyFailure {
                                policy: spec.label().to_string(),
                                error: error.clone(),
                            })
                            .collect(),
                    },
                },
            }
        })
        .collect();
    WorkloadTieringStudy {
        workload: workload.name().to_string(),
        input: workload.input_description(),
        footprint_bytes: workload.expected_footprint_bytes(),
        cells,
    }
}

/// The canonical three-policy sweep: the static reference, TPP-style hot
/// promotion and AutoNUMA-style periodic rebalancing, sharing one epoch
/// length and heat scale.
pub fn default_specs(epoch_lines: u64, promote_heat: f64) -> Vec<TieringSpec> {
    vec![
        TieringSpec::Static,
        TieringSpec::HotPromote(HotPromote {
            demote_heat: promote_heat / 4.0,
            ..HotPromote::new(epoch_lines, promote_heat)
        }),
        TieringSpec::PeriodicRebalance(PeriodicRebalance::new(epoch_lines, 2, 4096)),
    ]
}

/// Simulates `workload` once under `spec`.
pub fn run_with_tiering(
    workload: &dyn Workload,
    config: &MachineConfig,
    spec: &TieringSpec,
) -> RunReport {
    let mut machine = Machine::new(config.clone());
    machine.set_tiering_spec(spec);
    workload.run(&mut machine);
    machine.finish()
}

/// [`run_with_tiering`] with panic isolation: a panicking simulation returns
/// its panic message instead of unwinding into the sweep.
pub fn run_with_tiering_checked(
    workload: &dyn Workload,
    config: &MachineConfig,
    spec: &TieringSpec,
) -> Result<RunReport, String> {
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_with_tiering(workload, config, spec)
    }))
    .map_err(panic_message)
}

/// Sweeps `specs` for one workload: one full simulation per policy (in
/// parallel), followed by a sequential interference campaign per run. The
/// result is deterministic for a given `(config, specs, campaign)` input.
///
/// ```
/// use dismem_sched::{default_specs, sweep_tiering_policies, CampaignConfig};
/// use dismem_sim::MachineConfig;
/// use dismem_workloads::{PhaseShift, PhaseShiftParams};
///
/// let workload = PhaseShift::new(PhaseShiftParams::tiny());
/// // Local tier holds half the arena: static placement is the 1:1 interleave.
/// let config = MachineConfig::test_config()
///     .with_local_capacity(workload.params().arena_bytes / 2 + 8192);
/// let campaign = CampaignConfig { runs: 8, epochs_per_run: 4, seed: 7 };
/// let sweep = sweep_tiering_policies(
///     &workload,
///     &config,
///     &default_specs(2048, 12.0),
///     &campaign,
/// );
/// assert_eq!(sweep.outcomes.len(), 3); // static, hot-promote, periodic-rebalance
/// assert!(sweep.failed_policies.is_empty());
/// let hot = sweep.measured().expect("dynamic policies measure dwell");
/// assert!(hot.tiering.epochs > 0 && hot.mean_dwell_epochs > 0.0);
/// ```
pub fn sweep_tiering_policies(
    workload: &dyn Workload,
    config: &MachineConfig,
    specs: &[TieringSpec],
    campaign: &CampaignConfig,
) -> TieringSweep {
    // Each policy cell — simulation plus pricing campaign — runs isolated:
    // a panic becomes that cell's Err and the rest of the sweep completes.
    let results: Vec<Result<(RunReport, f64), String>> = specs
        .par_iter()
        .map(|spec| {
            std::panic::catch_unwind(AssertUnwindSafe(|| {
                let report = run_with_tiering(workload, config, spec);
                let mean = run_campaign_sequential(
                    workload.name(),
                    &report,
                    SchedulingPolicy::RandomBaseline,
                    campaign,
                )
                .mean_s;
                (report, mean)
            }))
            .map_err(panic_message)
        })
        .collect();

    // Without a *successful* static run in the sweep there is no reference
    // to compare against, and the speedup fields stay at their documented 1.0.
    let static_result = specs
        .iter()
        .zip(&results)
        .find(|(spec, _)| matches!(spec, TieringSpec::Static))
        .and_then(|(_, result)| result.as_ref().ok());
    let static_runtime = static_result.map(|(report, _)| report.total_runtime_s);
    let static_mean = static_result.map(|&(_, mean)| mean);

    let mut outcomes = Vec::new();
    let mut failed_policies = Vec::new();
    for (spec, result) in specs.iter().zip(&results) {
        match result {
            Ok((report, mean_loaded)) => outcomes.push(TieringOutcome {
                policy: report.tiering.policy.clone(),
                spec: *spec,
                runtime_s: report.total_runtime_s,
                speedup_vs_static: match static_runtime {
                    Some(s) if report.total_runtime_s > 0.0 => s / report.total_runtime_s,
                    _ => 1.0,
                },
                mean_loaded_runtime_s: *mean_loaded,
                loaded_speedup_vs_static: match static_mean {
                    Some(s) if *mean_loaded > 0.0 => s / mean_loaded,
                    _ => 1.0,
                },
                remote_access_ratio: report.remote_access_ratio(),
                mean_dwell_epochs: report.tiering.mean_dwell_epochs(),
                tiering: report.tiering.clone(),
                migration_link_raw_bytes: report.migration_link_raw_bytes(),
                link_raw_bytes: report.total.link_raw_bytes,
            }),
            Err(error) => failed_policies.push(PolicyFailure {
                policy: spec.label().to_string(),
                error: error.clone(),
            }),
        }
    }
    TieringSweep {
        workload: workload.name().to_string(),
        input: workload.input_description(),
        outcomes,
        failed_policies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dismem_workloads::{PhaseShift, PhaseShiftParams};

    const PAGE_SIZE: u64 = 4096;

    fn sweep_setup() -> (PhaseShift, MachineConfig) {
        let workload = PhaseShift::new(PhaseShiftParams::tiny());
        // Local tier fits half the interleaved arena plus the accumulator.
        let arena_pages = workload.params().arena_bytes / PAGE_SIZE;
        let config =
            MachineConfig::test_config().with_local_capacity((arena_pages / 2 + 2) * PAGE_SIZE);
        (workload, config)
    }

    fn small_campaign() -> CampaignConfig {
        CampaignConfig {
            runs: 12,
            epochs_per_run: 4,
            seed: 7,
        }
    }

    #[test]
    fn sweep_shows_hot_promote_beating_static_on_phaseshift() {
        let (workload, config) = sweep_setup();
        let specs = default_specs(2048, 12.0);
        let sweep = sweep_tiering_policies(&workload, &config, &specs, &small_campaign());
        assert_eq!(sweep.outcomes.len(), 3);
        let st = sweep.static_outcome().expect("static swept");
        assert_eq!(st.tiering.promotions + st.tiering.demotions, 0);
        assert_eq!(st.mean_dwell_epochs, 0.0, "static runs measure no dwell");
        assert!((st.speedup_vs_static - 1.0).abs() < 1e-12);

        let hot = sweep
            .outcomes
            .iter()
            .find(|o| o.policy == "hot-promote")
            .unwrap();
        assert!(
            hot.tiering.promotions > 0,
            "hot-promote must migrate: {hot:?}"
        );
        assert!(hot.tiering.migrated_bytes > 0);
        assert!(hot.migration_link_raw_bytes > hot.tiering.migrated_bytes);
        // The phase-shifting workload's hot set moves: the dwell counters
        // must see the shifts and the sweep's measured() lookup finds them.
        assert!(hot.tiering.hot_set_shifts > 0, "hot set must move: {hot:?}");
        assert!(hot.mean_dwell_epochs > 0.0);
        assert_eq!(
            sweep.measured().unwrap().policy,
            "hot-promote",
            "first measuring outcome is the first dynamic policy"
        );
        assert!(
            hot.speedup_vs_static > 1.02,
            "hot-promote should beat static: {}",
            hot.speedup_vs_static
        );
        assert!(hot.remote_access_ratio < st.remote_access_ratio);
        // The interference campaign prices both runs; migrating away from
        // the pool should not make the loaded mean worse.
        assert!(hot.loaded_speedup_vs_static > 1.0);
    }

    #[test]
    fn sweep_is_deterministic() {
        let (workload, config) = sweep_setup();
        let specs = default_specs(2048, 12.0);
        let a = sweep_tiering_policies(&workload, &config, &specs, &small_campaign());
        let b = sweep_tiering_policies(&workload, &config, &specs, &small_campaign());
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.runtime_s, y.runtime_s);
            assert_eq!(x.mean_loaded_runtime_s, y.mean_loaded_runtime_s);
            assert_eq!(x.tiering, y.tiering);
        }
    }

    #[test]
    fn matrix_sweeps_every_capacity_point() {
        let workload = PhaseShift::new(PhaseShiftParams::tiny());
        let base = MachineConfig::test_config();
        let specs = default_specs(2048, 12.0);
        let study = sweep_tiering_matrix(
            &workload,
            &base,
            &[0.75, 0.5, 0.25],
            &specs,
            &small_campaign(),
        );
        assert_eq!(study.workload, "PhaseShift");
        assert_eq!(study.cells.len(), 3);
        for cell in &study.cells {
            assert_eq!(cell.sweep.outcomes.len(), 3);
            assert!(cell.local_capacity_bytes > 0);
            assert!(cell.local_capacity_bytes < study.footprint_bytes);
        }
        // Capacities shrink with the fraction.
        assert!(study.cells[0].local_capacity_bytes > study.cells[2].local_capacity_bytes);
        // Tighter local capacity pushes the static remote ratio up.
        let remote = |i: usize| {
            study.cells[i]
                .sweep
                .static_outcome()
                .unwrap()
                .remote_access_ratio
        };
        assert!(remote(2) > remote(0));
        // Lookup helpers find the right cell and a dwell-measuring outcome.
        let mid = study.cell_at(0.5).unwrap();
        assert!((mid.local_fraction - 0.5).abs() < 1e-12);
        let measured = study.measured_at(0.5).unwrap();
        assert!(measured.tiering.epochs > 0);
        assert!(study.best_speedup_vs_static() >= 1.0);
    }

    #[test]
    fn best_outcome_lookup() {
        let (workload, config) = sweep_setup();
        let specs = default_specs(2048, 12.0);
        let sweep = sweep_tiering_policies(&workload, &config, &specs, &small_campaign());
        let best = sweep.best().unwrap();
        assert!(sweep.outcomes.iter().all(|o| o.runtime_s >= best.runtime_s));
        assert!(sweep.failed_policies.is_empty());
    }

    /// A workload whose simulation always panics, for exercising the
    /// quarantine path of the sweeps.
    struct PoisonedWorkload;

    impl dismem_workloads::Workload for PoisonedWorkload {
        fn name(&self) -> &'static str {
            "Poisoned"
        }
        fn description(&self) -> &'static str {
            "always panics"
        }
        fn input_description(&self) -> String {
            "poison".to_string()
        }
        fn expected_footprint_bytes(&self) -> u64 {
            1 << 20
        }
        fn run(&self, _engine: &mut dyn dismem_trace::MemoryEngine) {
            panic!("poisoned workload cell");
        }
    }

    #[test]
    fn panicking_policy_cell_becomes_a_reported_gap() {
        let specs = default_specs(2048, 12.0);
        let config = MachineConfig::test_config().with_local_capacity(1 << 19);
        let sweep = sweep_tiering_policies(&PoisonedWorkload, &config, &specs, &small_campaign());
        assert!(sweep.outcomes.is_empty());
        assert_eq!(sweep.failed_policies.len(), 3, "{sweep:?}");
        assert_eq!(sweep.failed_policies[0].policy, "static");
        assert!(sweep.failed_policies[0]
            .error
            .contains("poisoned workload cell"));
        // Lookup helpers degrade to None instead of panicking on the gap.
        assert!(sweep.static_outcome().is_none());
        assert!(sweep.best().is_none());
        assert!(sweep.measured().is_none());
    }

    #[test]
    fn matrix_survives_a_poisoned_workload() {
        let specs = default_specs(2048, 12.0);
        let study = sweep_tiering_matrix(
            &PoisonedWorkload,
            &MachineConfig::test_config(),
            &[0.75, 0.25],
            &specs,
            &small_campaign(),
        );
        assert_eq!(study.cells.len(), 2);
        for cell in &study.cells {
            assert_eq!(cell.sweep.failed_policies.len(), 3);
            assert!(cell.sweep.outcomes.is_empty());
        }
        assert_eq!(study.best_speedup_vs_static(), 1.0);
    }

    #[test]
    fn checked_single_run_reports_the_panic() {
        let config = MachineConfig::test_config().with_local_capacity(1 << 19);
        let err = run_with_tiering_checked(&PoisonedWorkload, &config, &TieringSpec::Static)
            .expect_err("poisoned workload must fail");
        assert!(err.contains("poisoned workload cell"), "{err}");
        let (workload, config) = sweep_setup();
        let ok = run_with_tiering_checked(&workload, &config, &TieringSpec::Static);
        assert!(ok.is_ok());
    }
}
